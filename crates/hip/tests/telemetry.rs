//! Integration tests for the unified telemetry layer: collector capture,
//! deterministic timeline merging, and Chrome trace-event export.

use ifsim_hip::{EnvConfig, FaultKind, FaultPlan, GcdId, HipSim, MemcpyKind};
use ifsim_telemetry::{json, Collector, EventKind, MetricKey};

const MIB: u64 = 1 << 20;

/// Drive two streams on different devices plus a mid-flight link fault, the
/// whole run observed by an installed collector.
fn faulted_two_stream_run() -> ifsim_telemetry::CollectedTelemetry {
    let collector = Collector::install();
    {
        let mut hip = HipSim::new(EnvConfig::default());
        assert!(
            hip.telemetry_enabled(),
            "runtime must self-observe under an installed collector"
        );
        hip.enable_all_peer_access().unwrap();
        hip.set_fault_plan(FaultPlan::new().at(
            ifsim_des::Time::ZERO + ifsim_des::Dur::from_ms(5.0),
            FaultKind::LinkDown {
                a: GcdId(0),
                b: GcdId(2),
            },
        ))
        .unwrap();
        // Stream A: a 1 GiB peer copy whose route dies mid-flight (reroute
        // + retry). Stream B: an independent host<->device copy.
        hip.set_device(0).unwrap();
        let src = hip.malloc(1 << 30).unwrap();
        let host = hip.host_malloc(16 * MIB, Default::default()).unwrap();
        hip.set_device(2).unwrap();
        let dst = hip.malloc(1 << 30).unwrap();
        hip.memcpy_peer(dst, 2, src, 0, 1 << 30).unwrap();
        hip.set_device(0).unwrap();
        let dev = hip.malloc(16 * MIB).unwrap();
        hip.memcpy(dev, 0, host, 0, 16 * MIB, MemcpyKind::HostToDevice)
            .unwrap();
        hip.device_synchronize().unwrap();
        // `hip` dropped here: Drop flushes the snapshot to the collector.
    }
    collector.take()
}

#[test]
fn collector_captures_ops_flows_and_fault_markers() {
    let t = faulted_two_stream_run();
    assert!(!t.is_empty());
    let events = t.events();
    assert!(
        events.iter().any(|e| e.cat == "hip_op"),
        "hip ops on the timeline"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "fault" && e.name.contains("link down")),
        "fault marker on the timeline"
    );
    assert!(
        events.iter().any(|e| e.cat == "fabric_flow"),
        "fabric flow spans on the timeline"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "fabric_flow" && e.name.starts_with("reroute:")),
        "the fault's retry surfaces as a reroute instant"
    );
    // Metrics: per-link byte counters and op-duration histograms with tails.
    let m = t.metrics();
    assert!(
        m.counters()
            .any(|(k, v)| k.name() == "fabric_link_wire_bytes" && v > 0.0),
        "per-link byte counters present"
    );
    let hist = m
        .histogram(
            &MetricKey::new("hip_op_duration_ns")
                .with("op", "memcpy_peer")
                .with("dev", "2"),
        )
        .expect("memcpy_peer duration histogram");
    assert!(hist.count() >= 1);
    assert!(hist.p95() >= hist.p50());
    assert!(hist.p99() <= hist.max());
    assert!(m.counter(&MetricKey::new("fault_events_applied")) >= 1.0);
}

#[test]
fn merged_timeline_interleaves_streams_deterministically() {
    // Two identical runs must produce identical merged timelines: same
    // event order, names, lanes, timestamps.
    let a = faulted_two_stream_run();
    let b = faulted_two_stream_run();
    let key = |t: &ifsim_telemetry::CollectedTelemetry| {
        t.events()
            .iter()
            .map(|e| (e.name.clone(), e.cat.clone(), e.pid, e.tid, e.ts_ns))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b));
    // The merge is genuinely time-ordered across sources...
    let evs = a.events();
    assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    // ...and genuinely interleaved: a fault marker sits between hip ops.
    let cats: Vec<&str> = evs.iter().map(|e| e.cat.as_str()).collect();
    let first_fault = cats.iter().position(|c| *c == "fault").unwrap();
    assert!(
        cats[..first_fault].contains(&"fabric_flow") || cats[..first_fault].contains(&"hip_op"),
        "work precedes the fault: {cats:?}"
    );
    assert!(
        cats[first_fault..].contains(&"hip_op"),
        "work follows the fault: {cats:?}"
    );
}

#[test]
fn chrome_export_round_trips_with_required_fields() {
    let t = faulted_two_stream_run();
    let text = t.chrome_trace_string();
    let v = json::from_str(&text).expect("exported trace is valid JSON");
    let events = v
        .get("traceEvents")
        .expect("traceEvents array")
        .as_array()
        .unwrap();
    assert!(!events.is_empty());
    let mut saw_span = false;
    let mut saw_instant = false;
    let mut saw_counter = false;
    for ev in events {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(field).is_some(), "missing {field}: {ev:?}");
        }
        match ev.get("ph").unwrap().as_str().unwrap() {
            "X" => {
                saw_span = true;
                assert!(ev.get("dur").is_some(), "complete spans carry dur: {ev:?}");
            }
            "i" => saw_instant = true,
            "M" => assert!(
                ev.get("args").unwrap().get("name").is_some(),
                "metadata records name lanes"
            ),
            "C" => {
                saw_counter = true;
                assert!(
                    ev.get("args")
                        .unwrap()
                        .get("value")
                        .and_then(|v| v.as_f64())
                        .is_some(),
                    "counter tracks carry a numeric value: {ev:?}"
                );
                assert!(
                    ev.get("name")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .starts_with("fabric util "),
                    "counter tracks are the flight recorder's: {ev:?}"
                );
            }
            ph => panic!("unexpected phase {ph}"),
        }
    }
    assert!(saw_span && saw_instant);
    assert!(
        saw_counter,
        "flight recorder counter tracks present in the export"
    );
    // Timestamps are microseconds: the run lasts ~tens of ms, so the last
    // op must sit past 1000 µs but before 10^9 (which would mean ns).
    let max_ts = events
        .iter()
        .filter_map(|e| e.get("ts").and_then(|t| t.as_f64()))
        .fold(0.0f64, f64::max);
    assert!(
        (1_000.0..1e9).contains(&max_ts),
        "ts in µs, got max {max_ts}"
    );
}

#[test]
fn without_a_collector_telemetry_stays_off() {
    let mut hip = HipSim::new(EnvConfig::default());
    assert!(!hip.telemetry_enabled());
    hip.set_device(0).unwrap();
    let a = hip.malloc(MIB).unwrap();
    let b = hip.malloc(MIB).unwrap();
    hip.memcpy(b, 0, a, 0, MIB, MemcpyKind::DeviceToDevice)
        .unwrap();
    assert!(hip.trace().events().is_empty());
    assert!(hip.fabric().flow_log().events().is_empty());
    assert!(hip.metrics().is_empty());
}

#[test]
fn nested_collectors_both_observe() {
    let outer = Collector::install();
    {
        let inner = Collector::install();
        {
            let mut hip = HipSim::new(EnvConfig::default());
            hip.set_device(0).unwrap();
            let a = hip.malloc(MIB).unwrap();
            let b = hip.malloc(MIB).unwrap();
            hip.memcpy(b, 0, a, 0, MIB, MemcpyKind::DeviceToDevice)
                .unwrap();
        }
        let t = inner.take();
        assert_eq!(t.sims(), 1);
        assert!(t.events().iter().any(|e| e.cat == "hip_op"));
    }
    let t = outer.take();
    assert_eq!(t.sims(), 1, "outer collector observed the same runtime");
    assert!(!t.is_empty());
}

#[test]
fn manual_snapshot_matches_flush_semantics() {
    let collector = Collector::install();
    let mut hip = HipSim::new(EnvConfig::default());
    hip.set_device(0).unwrap();
    let a = hip.malloc(MIB).unwrap();
    let b = hip.malloc(MIB).unwrap();
    hip.memcpy(b, 0, a, 0, MIB, MemcpyKind::DeviceToDevice)
        .unwrap();
    hip.flush_telemetry();
    drop(hip); // Drop must not double-contribute after an explicit flush.
    let t = collector.take();
    assert_eq!(t.sims(), 1);
    let spans = t
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }))
        .count();
    assert!(spans >= 1);
}
