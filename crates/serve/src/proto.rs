//! The serve wire protocol: newline-delimited JSON request/response pairs.
//!
//! Every message is one JSON object on one line. Requests carry an `op`
//! field (`ping`, `stats`, `shutdown`, `run`); responses carry `status`
//! plus an HTTP-flavoured numeric `code` so scripted clients can branch
//! without string matching. The only structured pair is
//! [`RunRequest`] / [`RunResponse`]; `ping`/`stats`/`shutdown` responses
//! are free-form JSON documented in `docs/SERVING.md`.
//!
//! Two encoding rules keep the protocol exact under the vendored
//! f64-backed JSON shim:
//!
//! - `seed` travels as a **decimal string**, not a JSON number, so the
//!   full `u64` range survives the round-trip;
//! - responses contain no timestamps or timing fields, so a cached
//!   response is byte-identical to the fresh compute it replays (only the
//!   `cached` flag and the per-request `trace_id` differ).
//!
//! **Tracing:** any request may carry a top-level `trace_id` string; the
//! server echoes it (or a generated one) on every non-ping response, so a
//! client can correlate a slow answer with the server's request span and
//! the latency-histogram exemplars in `/metrics`.
//!
//! **Structured errors:** every malformed-payload rejection is a
//! [`FieldError`] naming the offending field as a dotted path
//! (`overrides.calib.eff_sdma_xgmi`, `scenario.workload.records[3].bytes`);
//! error responses carry the path under the wire key `field` alongside
//! the human-readable `error` text. Scenario-parse errors reuse the
//! scenario crate's error type directly, so both planes speak one shape.

use ifsim_core::BenchConfig;
pub use ifsim_scenario::FieldError;
use serde_json::{Map, Value};

/// Shorthand for building a [`FieldError`].
fn ferr(field: impl Into<String>, message: impl Into<String>) -> FieldError {
    FieldError {
        field: field.into(),
        message: message.into(),
    }
}

/// Any request a client can send.
// One short-lived value per wire line, destructured immediately after
// parsing — the Run variant's size (inline scenario payload) never
// accumulates anywhere, so boxing would be pure indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server statistics snapshot (`ifsim-serve-stats-v2`).
    Stats,
    /// Ask the server to drain and exit.
    Shutdown,
    /// Run (or replay from cache) one experiment.
    Run(RunRequest),
}

/// Overrides applied on top of the server's resident default
/// configuration. All fields are optional; `calib` entries are
/// **multiplicative factors** on named calibration constants (the same
/// names `ifsim-drift --list-fields` prints), so `1.0` is the identity.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ConfigOverrides {
    /// Start from `BenchConfig::quick()` instead of the full default.
    pub quick: bool,
    /// Jitter seed override.
    pub seed: Option<u64>,
    /// Measured repetitions override.
    pub reps: Option<usize>,
    /// Warmup repetitions override.
    pub warmup: Option<usize>,
    /// `(field, factor)` multiplicative calibration perturbations.
    pub calib: Vec<(String, f64)>,
}

impl ConfigOverrides {
    /// Materialize the overrides into a runnable configuration.
    /// Unknown calibration field names are a client error naming the
    /// offending `overrides.calib.<field>` path.
    pub fn resolve(&self) -> Result<BenchConfig, FieldError> {
        let mut cfg = if self.quick {
            BenchConfig::quick()
        } else {
            BenchConfig::default()
        };
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        if let Some(r) = self.reps {
            cfg.reps = r;
        }
        if let Some(w) = self.warmup {
            cfg.warmup = w;
        }
        for (field, factor) in &self.calib {
            let slot = cfg.calib.f64_field_mut(field).ok_or_else(|| {
                ferr(
                    format!("overrides.calib.{field}"),
                    format!("unknown calibration field '{field}'"),
                )
            })?;
            *slot *= factor;
        }
        Ok(cfg)
    }

    /// Whether every field is at its default (serialized as `{}`).
    pub fn is_default(&self) -> bool {
        *self == ConfigOverrides::default()
    }
}

/// One experiment request.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// Registry id (`fig6a`, `table1`, ...). May be empty when an inline
    /// `scenario` is supplied; the server then echoes the compiled
    /// scenario's id (`scenario:<name>`).
    pub experiment_id: String,
    /// Inline scenario document (schema `ifsim-scenario-v1`), compiled
    /// server-side instead of a registry lookup. The scenario's content
    /// digest folds into the configuration digest, so caching and
    /// single-flight key on scenario *content* — field order and the
    /// client-chosen `experiment_id` label don't matter.
    pub scenario: Option<Value>,
    /// Configuration overrides (empty = server defaults).
    pub overrides: ConfigOverrides,
    /// CSV artifact names to return; empty returns all of them.
    pub artifacts: Vec<String>,
    /// Optional deadline, measured from request arrival. Work that is
    /// already expired at dequeue is shed, and a computation that
    /// overruns it is cooperatively cancelled; either way the client
    /// gets an explicit `DeadlineExceeded` (504) instead of a late
    /// answer. `None` means the request may take as long as it takes.
    pub deadline_ms: Option<u64>,
    /// Client-chosen trace id echoed on the response; `None` lets the
    /// server generate one. Not part of the cache key.
    pub trace_id: Option<String>,
    /// Run with causal DAG capture and return the critical-path report
    /// (`ifsim-critpath-v1`) alongside the ordinary payload. Analyzed
    /// results cache under a derived key, so plain requests for the same
    /// configuration still replay their original bytes.
    pub analyze: bool,
}

impl RunRequest {
    /// A request for `experiment_id` under default overrides.
    pub fn new(experiment_id: impl Into<String>) -> RunRequest {
        RunRequest {
            experiment_id: experiment_id.into(),
            scenario: None,
            overrides: ConfigOverrides::default(),
            artifacts: Vec::new(),
            deadline_ms: None,
            trace_id: None,
            analyze: false,
        }
    }

    /// Encode as a wire JSON value (`{"op":"run",...}`).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("op", Value::from("run"));
        m.insert("experiment_id", Value::from(self.experiment_id.clone()));
        if let Some(s) = &self.scenario {
            m.insert("scenario", s.clone());
        }
        let mut o = Map::new();
        if self.overrides.quick {
            o.insert("quick", Value::from(true));
        }
        if let Some(s) = self.overrides.seed {
            o.insert("seed", Value::from(s.to_string()));
        }
        if let Some(r) = self.overrides.reps {
            o.insert("reps", Value::from(r));
        }
        if let Some(w) = self.overrides.warmup {
            o.insert("warmup", Value::from(w));
        }
        if !self.overrides.calib.is_empty() {
            let mut c = Map::new();
            for (field, factor) in &self.overrides.calib {
                c.insert(field.clone(), Value::from(*factor));
            }
            o.insert("calib", Value::Object(c));
        }
        m.insert("overrides", Value::Object(o));
        if let Some(d) = self.deadline_ms {
            m.insert("deadline_ms", Value::from(d));
        }
        if let Some(t) = &self.trace_id {
            m.insert("trace_id", Value::from(t.clone()));
        }
        if self.analyze {
            m.insert("analyze", Value::from(true));
        }
        if !self.artifacts.is_empty() {
            m.insert(
                "artifacts",
                Value::Array(
                    self.artifacts
                        .iter()
                        .map(|a| Value::from(a.clone()))
                        .collect(),
                ),
            );
        }
        Value::Object(m)
    }

    /// Decode the wire value produced by [`RunRequest::to_json`]. Every
    /// rejection names the offending field as a dotted path.
    pub fn from_json(v: &Value) -> Result<RunRequest, FieldError> {
        let obj = v
            .as_object()
            .ok_or_else(|| ferr("", "run request must be a JSON object"))?;
        let scenario = match obj.get("scenario") {
            Some(s) => {
                if s.as_object().is_none() {
                    return Err(ferr("scenario", "must be a JSON object"));
                }
                Some(s.clone())
            }
            None => None,
        };
        let experiment_id = match obj.get("experiment_id") {
            Some(id) => id
                .as_str()
                .ok_or_else(|| ferr("experiment_id", "must be a string"))?
                .to_string(),
            // An inline scenario names itself; a registry run must say
            // which experiment it wants.
            None if scenario.is_some() => String::new(),
            None => return Err(ferr("experiment_id", "run request needs a string id")),
        };
        let mut overrides = ConfigOverrides::default();
        if let Some(o) = obj.get("overrides") {
            let o = o
                .as_object()
                .ok_or_else(|| ferr("overrides", "must be an object"))?;
            if let Some(q) = o.get("quick") {
                overrides.quick = q
                    .as_bool()
                    .ok_or_else(|| ferr("overrides.quick", "must be a boolean"))?;
            }
            if let Some(s) = o.get("seed") {
                let text = s
                    .as_str()
                    .ok_or_else(|| ferr("overrides.seed", "must be a decimal string"))?;
                overrides.seed = Some(
                    text.parse()
                        .map_err(|e| ferr("overrides.seed", format!("bad seed '{text}': {e}")))?,
                );
            }
            if let Some(r) = o.get("reps") {
                overrides.reps = Some(parse_count(r, "overrides.reps")?);
            }
            if let Some(w) = o.get("warmup") {
                overrides.warmup = Some(parse_count(w, "overrides.warmup")?);
            }
            if let Some(c) = o.get("calib") {
                let c = c
                    .as_object()
                    .ok_or_else(|| ferr("overrides.calib", "must be an object"))?;
                for (field, factor) in c.iter() {
                    let factor = factor.as_f64().ok_or_else(|| {
                        ferr(
                            format!("overrides.calib.{field}"),
                            "factor must be a number",
                        )
                    })?;
                    overrides.calib.push((field.clone(), factor));
                }
            }
        }
        let mut deadline_ms = None;
        if let Some(d) = obj.get("deadline_ms") {
            deadline_ms = Some(
                d.as_u64()
                    .ok_or_else(|| ferr("deadline_ms", "must be a non-negative integer"))?,
            );
        }
        let mut artifacts = Vec::new();
        if let Some(a) = obj.get("artifacts") {
            let names = a
                .as_array()
                .ok_or_else(|| ferr("artifacts", "must be an array"))?;
            for (i, name) in names.iter().enumerate() {
                artifacts.push(
                    name.as_str()
                        .ok_or_else(|| ferr(format!("artifacts[{i}]"), "must be a string"))?
                        .to_string(),
                );
            }
        }
        Ok(RunRequest {
            experiment_id,
            scenario,
            overrides,
            artifacts,
            deadline_ms,
            trace_id: envelope_trace_id(v).map(str::to_string),
            analyze: obj.get("analyze").and_then(Value::as_bool).unwrap_or(false),
        })
    }
}

fn parse_count(v: &Value, field: &str) -> Result<usize, FieldError> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| ferr(field, "must be a non-negative integer"))
}

/// Response status taxonomy, with HTTP-flavoured numeric codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The request was served (`200`).
    Ok,
    /// The request itself is invalid — unknown experiment, bad override,
    /// unparseable line (`400`).
    BadRequest,
    /// Admission control rejected the request: every worker is busy and
    /// the queue is full. Retry later (`429`).
    Overloaded,
    /// The experiment panicked or the server failed internally (`500`).
    Internal,
    /// The request's `deadline_ms` expired before a result was ready —
    /// shed at dequeue, cancelled mid-compute, or timed out while
    /// coalesced behind another computation (`504`).
    DeadlineExceeded,
}

impl Status {
    /// The numeric code.
    pub fn code(self) -> u64 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::Overloaded => 429,
            Status::Internal => 500,
            Status::DeadlineExceeded => 504,
        }
    }

    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::BadRequest => "bad-request",
            Status::Overloaded => "overloaded",
            Status::Internal => "internal-error",
            Status::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Parse the wire string.
    pub fn parse(s: &str) -> Result<Status, String> {
        match s {
            "ok" => Ok(Status::Ok),
            "bad-request" => Ok(Status::BadRequest),
            "overloaded" => Ok(Status::Overloaded),
            "internal-error" => Ok(Status::Internal),
            "deadline-exceeded" => Ok(Status::DeadlineExceeded),
            other => Err(format!("unknown status '{other}'")),
        }
    }
}

/// The response to a [`RunRequest`]. Carries no timestamps: a cache hit
/// re-serializes to exactly the bytes the original compute produced,
/// `cached` flag and per-request `trace_id` aside.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResponse {
    /// Trace id echoed from (or generated for) the request; empty means
    /// "not yet assigned" and is omitted on the wire.
    pub trace_id: String,
    /// Outcome class.
    pub status: Status,
    /// Echo of the requested experiment id.
    pub experiment_id: String,
    /// Content digest of the resolved configuration (cache key); empty
    /// when the request never reached digesting (parse/validation error).
    pub digest: String,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Error detail for non-`Ok` statuses.
    pub error: Option<String>,
    /// Dotted path of the request field a `BadRequest` rejection is
    /// about (wire key `field`); `None` when no single field applies.
    pub error_field: Option<String>,
    /// The rendered report, for `Ok`.
    pub report: Option<String>,
    /// `(file name, contents)` CSV artifacts, filtered per the request.
    pub csv: Vec<(String, String)>,
    /// Paper-shape checks passed.
    pub checks_passed: usize,
    /// Paper-shape checks total.
    pub checks_total: usize,
    /// Critical-path report (`ifsim-critpath-v1`) when the request asked
    /// for analysis; omitted from the wire otherwise.
    pub critpath: Option<Value>,
}

impl RunResponse {
    /// An error response (no payload).
    pub fn error(status: Status, experiment_id: impl Into<String>, msg: String) -> RunResponse {
        RunResponse {
            trace_id: String::new(),
            status,
            experiment_id: experiment_id.into(),
            digest: String::new(),
            cached: false,
            error: Some(msg),
            error_field: None,
            report: None,
            csv: Vec::new(),
            checks_passed: 0,
            checks_total: 0,
            critpath: None,
        }
    }

    /// A field-annotated error response: `error` carries the full
    /// human-readable rendering (`field 'x': ...`), `field` the bare
    /// dotted path for machine consumption.
    pub fn field_error(
        status: Status,
        experiment_id: impl Into<String>,
        err: FieldError,
    ) -> RunResponse {
        let mut resp = RunResponse::error(status, experiment_id, err.to_string());
        if !err.field.is_empty() {
            resp.error_field = Some(err.field);
        }
        resp
    }

    /// Encode as a wire JSON value.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("op", Value::from("run-response"));
        if !self.trace_id.is_empty() {
            m.insert("trace_id", Value::from(self.trace_id.clone()));
        }
        m.insert("status", Value::from(self.status.as_str()));
        m.insert("code", Value::from(self.status.code()));
        m.insert("experiment_id", Value::from(self.experiment_id.clone()));
        m.insert("digest", Value::from(self.digest.clone()));
        m.insert("cached", Value::from(self.cached));
        if let Some(e) = &self.error {
            m.insert("error", Value::from(e.clone()));
        }
        if let Some(f) = &self.error_field {
            m.insert("field", Value::from(f.clone()));
        }
        if let Some(r) = &self.report {
            m.insert("report", Value::from(r.clone()));
        }
        m.insert(
            "csv",
            Value::Array(
                self.csv
                    .iter()
                    .map(|(name, contents)| {
                        let mut f = Map::new();
                        f.insert("name", Value::from(name.clone()));
                        f.insert("contents", Value::from(contents.clone()));
                        Value::Object(f)
                    })
                    .collect(),
            ),
        );
        m.insert("checks_passed", Value::from(self.checks_passed));
        m.insert("checks_total", Value::from(self.checks_total));
        if let Some(c) = &self.critpath {
            m.insert("critpath", c.clone());
        }
        Value::Object(m)
    }

    /// Decode the wire value produced by [`RunResponse::to_json`].
    pub fn from_json(v: &Value) -> Result<RunResponse, String> {
        let obj = v.as_object().ok_or("run response must be a JSON object")?;
        let status = Status::parse(
            obj.get("status")
                .and_then(Value::as_str)
                .ok_or("response needs a string 'status'")?,
        )?;
        let mut csv = Vec::new();
        if let Some(files) = obj.get("csv") {
            for f in files.as_array().ok_or("'csv' must be an array")? {
                let name = f
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("csv entries need a string 'name'")?;
                let contents = f
                    .get("contents")
                    .and_then(Value::as_str)
                    .ok_or("csv entries need string 'contents'")?;
                csv.push((name.to_string(), contents.to_string()));
            }
        }
        Ok(RunResponse {
            trace_id: obj
                .get("trace_id")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            status,
            experiment_id: obj
                .get("experiment_id")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            digest: obj
                .get("digest")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            cached: obj.get("cached").and_then(Value::as_bool).unwrap_or(false),
            error: obj.get("error").and_then(Value::as_str).map(str::to_string),
            error_field: obj.get("field").and_then(Value::as_str).map(str::to_string),
            report: obj
                .get("report")
                .and_then(Value::as_str)
                .map(str::to_string),
            csv,
            checks_passed: obj
                .get("checks_passed")
                .and_then(Value::as_u64)
                .unwrap_or(0) as usize,
            checks_total: obj.get("checks_total").and_then(Value::as_u64).unwrap_or(0) as usize,
            critpath: obj.get("critpath").cloned(),
        })
    }
}

/// Parse one request line. `Err` maps to a `400` response naming the
/// offending field when one applies.
pub fn parse_request(line: &str) -> Result<Request, FieldError> {
    let v = serde_json::from_str(line.trim()).map_err(|e| ferr("", format!("bad JSON: {e}")))?;
    parse_request_value(&v)
}

/// Parse an already-decoded request value — the server decodes each line
/// once, peels the [`envelope_trace_id`], then dispatches here.
pub fn parse_request_value(v: &Value) -> Result<Request, FieldError> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ferr("op", "request needs a string 'op' field"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "run" => Ok(Request::Run(RunRequest::from_json(v)?)),
        other => Err(ferr(
            "op",
            format!("unknown op '{other}' (expected ping|stats|shutdown|run)"),
        )),
    }
}

/// The top-level `trace_id` of any request envelope, when present.
pub fn envelope_trace_id(v: &Value) -> Option<&str> {
    v.get("trace_id").and_then(Value::as_str)
}

/// Encode a request as its wire JSON value.
pub fn request_to_json(req: &Request) -> Value {
    let op = match req {
        Request::Ping => "ping",
        Request::Stats => "stats",
        Request::Shutdown => "shutdown",
        Request::Run(r) => return r.to_json(),
    };
    let mut m = Map::new();
    m.insert("op", Value::from(op));
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips_with_full_seed_precision() {
        let mut scenario = Map::new();
        scenario.insert("schema", Value::from("ifsim-scenario-v1"));
        scenario.insert("name", Value::from("wire-demo"));
        let req = RunRequest {
            experiment_id: "fig6a".into(),
            scenario: Some(Value::Object(scenario)),
            overrides: ConfigOverrides {
                quick: true,
                // Deliberately above 2^53: a JSON number would lose it.
                seed: Some(u64::MAX - 12345),
                reps: Some(3),
                warmup: Some(1),
                calib: vec![("eff_sdma_xgmi".into(), 1.1)],
            },
            artifacts: vec!["fig6a_hops.csv".into()],
            deadline_ms: Some(2500),
            trace_id: Some("cafe0123deadbeef".into()),
            analyze: true,
        };
        let line = serde_json::to_string(&req.to_json());
        let back = RunRequest::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn trace_id_rides_the_envelope_both_ways() {
        // Absent on request and response alike: omitted, not null.
        let req = RunRequest::new("fig1");
        assert!(req.to_json().get("trace_id").is_none());
        let mut resp = RunResponse::error(Status::Ok, "fig1", String::new());
        resp.error = None;
        assert!(resp.to_json().get("trace_id").is_none());
        // Present: round-trips verbatim and is visible to the envelope
        // helper regardless of op.
        resp.trace_id = "t-123".into();
        let back = RunResponse::from_json(&resp.to_json()).unwrap();
        assert_eq!(back.trace_id, "t-123");
        let v = serde_json::from_str(r#"{"op":"stats","trace_id":"abc"}"#).unwrap();
        assert_eq!(envelope_trace_id(&v), Some("abc"));
        assert_eq!(parse_request_value(&v).unwrap(), Request::Stats);
    }

    #[test]
    fn deadline_status_round_trips() {
        let resp = RunResponse::error(Status::DeadlineExceeded, "fig1", "too slow".into());
        let line = serde_json::to_string(&resp.to_json());
        let back = RunResponse::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(back.status, Status::DeadlineExceeded);
        assert_eq!(back.status.code(), 504);
        assert_eq!(
            Status::parse("deadline-exceeded"),
            Ok(Status::DeadlineExceeded)
        );
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert!(parse_request(r#"{"op":"fly"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"no_op":1}"#).is_err());
    }

    #[test]
    fn overrides_resolve_against_defaults() {
        let o = ConfigOverrides {
            quick: true,
            seed: Some(7),
            reps: None,
            warmup: None,
            calib: vec![("eff_sdma_xgmi".into(), 2.0)],
        };
        let cfg = o.resolve().unwrap();
        let quick = BenchConfig::quick();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.reps, quick.reps);
        assert_eq!(cfg.warmup, quick.warmup);
        assert!((cfg.calib.eff_sdma_xgmi - quick.calib.eff_sdma_xgmi * 2.0).abs() < 1e-12);
        let bad = ConfigOverrides {
            calib: vec![("no_such_knob".into(), 1.0)],
            ..Default::default()
        };
        let err = bad.resolve().unwrap_err();
        assert_eq!(err.field, "overrides.calib.no_such_knob");
    }

    #[test]
    fn malformed_payloads_name_the_offending_field() {
        let cases = [
            (r#"{"op":"run"}"#, "experiment_id"),
            (r#"{"op":"run","experiment_id":7}"#, "experiment_id"),
            (
                r#"{"op":"run","experiment_id":"fig1","overrides":{"seed":12}}"#,
                "overrides.seed",
            ),
            (
                r#"{"op":"run","experiment_id":"fig1","overrides":{"reps":"x"}}"#,
                "overrides.reps",
            ),
            (
                r#"{"op":"run","experiment_id":"fig1","overrides":{"calib":{"k":"y"}}}"#,
                "overrides.calib.k",
            ),
            (
                r#"{"op":"run","experiment_id":"fig1","artifacts":[3]}"#,
                "artifacts[0]",
            ),
            (
                r#"{"op":"run","experiment_id":"fig1","scenario":[]}"#,
                "scenario",
            ),
            (r#"{"op":"warp"}"#, "op"),
        ];
        for (line, field) in cases {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.field, field, "for {line}");
        }
        // An inline scenario may omit the experiment id entirely.
        let req = parse_request(r#"{"op":"run","scenario":{"name":"x"}}"#).unwrap();
        let Request::Run(req) = req else {
            panic!("expected a run request")
        };
        assert!(req.experiment_id.is_empty());
        assert!(req.scenario.is_some());
    }

    #[test]
    fn field_error_response_round_trips() {
        let resp = RunResponse::field_error(
            Status::BadRequest,
            "scenario:demo",
            FieldError {
                field: "scenario.workload.ranks".into(),
                message: "must be between 2 and 8".into(),
            },
        );
        assert_eq!(resp.error_field.as_deref(), Some("scenario.workload.ranks"));
        assert!(resp
            .error
            .as_deref()
            .unwrap()
            .contains("scenario.workload.ranks"));
        let line = serde_json::to_string(&resp.to_json());
        let back = RunResponse::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn error_response_round_trips() {
        let resp = RunResponse::error(Status::Overloaded, "fig7", "queue full".into());
        let line = serde_json::to_string(&resp.to_json());
        let back = RunResponse::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(resp, back);
        assert_eq!(back.status.code(), 429);
    }
}
