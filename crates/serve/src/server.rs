//! The resident server: request handling, admission control, and the
//! socket host.
//!
//! [`ServerCore`] is the transport-independent heart — one JSON line in,
//! one JSON line out — so unit tests exercise caching, admission, and
//! error paths without sockets. [`Server`] wraps a core with a Unix or
//! TCP listener, one handler thread per connection, SIGTERM-triggered
//! graceful drain, and optional telemetry artifacts written at exit.

use crate::cache::{CachedRun, ResultCache};
use crate::proto::{self, Request, RunRequest, RunResponse, Status};
use ifsim_core::registry;
use ifsim_core::telemetry::{
    CollectedTelemetry, MetricKey, MetricsRegistry, SimTelemetry, TimelineEvent,
};
use serde_json::{Map, Value};
use std::io::{Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use threadpool::ThreadPool;

/// Stats/metrics schema tag, validated by `telemetry-lint --serve`.
pub const STATS_SCHEMA: &str = "ifsim-serve-stats-v1";

/// Server sizing knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads computing experiments concurrently.
    pub workers: usize,
    /// Requests allowed to wait beyond the busy workers; the admission
    /// capacity is `workers + queue_depth`, and anything past it is
    /// answered `Overloaded` instead of queued.
    pub queue_depth: usize,
    /// Result-cache capacity (entries).
    pub cache_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_depth: 16,
            cache_cap: 256,
        }
    }
}

/// The transport-independent server: resident registry + cache +
/// bounded compute pool + self-observation.
pub struct ServerCore {
    opts: ServeOptions,
    cache: ResultCache,
    pool: ThreadPool,
    /// Requests admitted (queued or running) right now.
    in_flight: AtomicUsize,
    draining: AtomicBool,
    started: Instant,
    metrics: Mutex<MetricsRegistry>,
    events: Mutex<Vec<TimelineEvent>>,
}

impl ServerCore {
    /// Build a core with `opts` (worker count clamped to ≥ 1).
    pub fn new(opts: ServeOptions) -> ServerCore {
        let workers = opts.workers.max(1);
        ServerCore {
            cache: ResultCache::new(opts.cache_cap),
            pool: ThreadPool::new(workers),
            in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            metrics: Mutex::new(MetricsRegistry::new()),
            events: Mutex::new(Vec::new()),
            opts: ServeOptions { workers, ..opts },
        }
    }

    /// Admission capacity: busy workers plus the bounded queue.
    pub fn capacity(&self) -> usize {
        self.opts.workers + self.opts.queue_depth
    }

    /// Try to claim one admission slot. `false` means the server is at
    /// capacity and the caller must answer `Overloaded`. Public so tests
    /// can pin the server at capacity deterministically.
    pub fn try_admit(&self) -> bool {
        let cap = self.capacity();
        self.in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                if n < cap {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Release one admission slot claimed by [`ServerCore::try_admit`].
    pub fn finish_admitted(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Requests admitted (queued or running) right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Whether a shutdown request or signal has started the drain.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begin draining: the socket host stops accepting, in-flight work
    /// completes, then the process exits.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// The result cache (hit/miss counters for tests and stats).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Handle one request line, returning the response line (no trailing
    /// newline). Never panics outward: every failure maps to a status.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        let (op, value) = match proto::parse_request(line) {
            Err(e) => {
                let mut m = Map::new();
                m.insert("op", Value::from("error"));
                m.insert("status", Value::from(Status::BadRequest.as_str()));
                m.insert("code", Value::from(Status::BadRequest.code()));
                m.insert("error", Value::from(e));
                ("parse", Value::Object(m))
            }
            Ok(Request::Ping) => {
                let mut m = Map::new();
                m.insert("op", Value::from("pong"));
                m.insert("status", Value::from(Status::Ok.as_str()));
                m.insert("code", Value::from(Status::Ok.code()));
                ("ping", Value::Object(m))
            }
            Ok(Request::Stats) => ("stats", self.stats_json()),
            Ok(Request::Shutdown) => {
                self.start_drain();
                let mut m = Map::new();
                m.insert("op", Value::from("shutdown-response"));
                m.insert("status", Value::from(Status::Ok.as_str()));
                m.insert("code", Value::from(Status::Ok.code()));
                m.insert("draining", Value::from(true));
                ("shutdown", Value::Object(m))
            }
            Ok(Request::Run(req)) => ("run", self.handle_run(&req).to_json()),
        };
        self.observe_request(op, &value, t0);
        serde_json::to_string(&value)
    }

    /// Serve one run request: validate → digest → cache → admit → compute.
    fn handle_run(&self, req: &RunRequest) -> RunResponse {
        let Some(exp) = registry::by_id(&req.experiment_id) else {
            return RunResponse::error(
                Status::BadRequest,
                req.experiment_id.clone(),
                format!("unknown experiment '{}'", req.experiment_id),
            );
        };
        let cfg = match req.overrides.resolve() {
            Ok(cfg) => cfg,
            Err(e) => return RunResponse::error(Status::BadRequest, req.experiment_id.clone(), e),
        };
        let digest = exp.config_digest(&cfg);

        if let Some(hit) = self.cache.get(&digest) {
            self.bump_counter("serve_cache_hits");
            return self.respond_from(req, &hit, true);
        }
        self.bump_counter("serve_cache_misses");

        if !self.try_admit() {
            self.bump_counter("serve_overloaded_total");
            let mut resp = RunResponse::error(
                Status::Overloaded,
                req.experiment_id.clone(),
                format!(
                    "server at capacity ({} in flight); retry later",
                    self.capacity()
                ),
            );
            resp.digest = digest;
            return resp;
        }
        self.set_gauge("serve_queue_depth", self.in_flight() as f64);

        // The worker sends the computed run back over a channel; if the
        // experiment panics, the sender drops without sending, the pool
        // respawns the worker, and the client gets a 500 instead of a
        // wedged connection.
        let (tx, rx) = mpsc::channel::<CachedRun>();
        {
            let cfg = cfg.clone();
            let digest = digest.clone();
            self.pool.execute(move || {
                let result = exp.run(&cfg);
                let _ = tx.send(CachedRun {
                    digest,
                    report: result.report(),
                    checks_passed: result.checks.iter().filter(|c| c.passed).count(),
                    checks_total: result.checks.len(),
                    csv: result.csv,
                });
            });
        }
        let outcome = rx.recv();
        self.finish_admitted();
        self.set_gauge("serve_queue_depth", self.in_flight() as f64);
        match outcome {
            Ok(run) => {
                let run = Arc::new(run);
                self.cache.insert(Arc::clone(&run));
                self.respond_from(req, &run, false)
            }
            Err(_) => {
                self.bump_counter("serve_panicked_jobs");
                let mut resp = RunResponse::error(
                    Status::Internal,
                    req.experiment_id.clone(),
                    "experiment panicked; see server log".into(),
                );
                resp.digest = digest;
                resp
            }
        }
    }

    /// Build the OK response, applying the request's artifact filter.
    fn respond_from(&self, req: &RunRequest, run: &CachedRun, cached: bool) -> RunResponse {
        let csv = if req.artifacts.is_empty() {
            run.csv.clone()
        } else {
            run.csv
                .iter()
                .filter(|(name, _)| req.artifacts.iter().any(|a| a == name))
                .cloned()
                .collect()
        };
        RunResponse {
            status: Status::Ok,
            experiment_id: req.experiment_id.clone(),
            digest: run.digest.clone(),
            cached,
            error: None,
            report: Some(run.report.clone()),
            csv,
            checks_passed: run.checks_passed,
            checks_total: run.checks_total,
        }
    }

    /// The `stats` response (`ifsim-serve-stats-v1`).
    pub fn stats_json(&self) -> Value {
        let mut cache = Map::new();
        cache.insert("entries", Value::from(self.cache.entries()));
        cache.insert("capacity", Value::from(self.cache.capacity()));
        cache.insert("hits", Value::from(self.cache.hits()));
        cache.insert("misses", Value::from(self.cache.misses()));
        cache.insert("hit_rate", Value::from(self.cache.hit_rate()));
        let mut queue = Map::new();
        queue.insert("in_flight", Value::from(self.in_flight()));
        queue.insert("capacity", Value::from(self.capacity()));
        queue.insert("workers", Value::from(self.opts.workers));
        queue.insert("queue_depth", Value::from(self.opts.queue_depth));
        let mut pool = Map::new();
        pool.insert("panicked_jobs", Value::from(self.pool.panicked_jobs()));
        let mut m = Map::new();
        m.insert("op", Value::from("stats-response"));
        m.insert("status", Value::from(Status::Ok.as_str()));
        m.insert("code", Value::from(Status::Ok.code()));
        m.insert("schema", Value::from(STATS_SCHEMA));
        m.insert(
            "uptime_ns",
            Value::from(self.started.elapsed().as_nanos() as f64),
        );
        m.insert("draining", Value::from(self.draining()));
        m.insert("cache", Value::Object(cache));
        m.insert("queue", Value::Object(queue));
        m.insert("pool", Value::Object(pool));
        m.insert("metrics", self.metrics.lock().unwrap().to_json());
        Value::Object(m)
    }

    /// Account one handled request into metrics and the trace timeline.
    fn observe_request(&self, op: &str, response: &Value, t0: Instant) {
        let latency_ns = t0.elapsed().as_nanos() as f64;
        let start_ns = (t0 - self.started).as_nanos() as f64;
        let code = response.get("code").and_then(Value::as_u64).unwrap_or(0);
        {
            let mut metrics = self.metrics.lock().unwrap();
            metrics.counter_add(
                MetricKey::new("serve_requests_total")
                    .with("op", op)
                    .with("code", code.to_string()),
                1.0,
            );
            metrics.observe(
                MetricKey::new("serve_request_latency_ns").with("op", op),
                latency_ns,
            );
        }
        let start = ifsim_core::des::Time::from_ns(start_ns);
        let end = ifsim_core::des::Time::from_ns(start_ns + latency_ns);
        let mut ev = TimelineEvent::span(start, end, format!("req {op}"), "serve_request")
            .with_arg("code", code.to_string());
        if let Some(cached) = response.get("cached").and_then(Value::as_bool) {
            ev = ev.with_arg("cached", cached.to_string());
        }
        if let Some(id) = response.get("experiment_id").and_then(Value::as_str) {
            ev = ev.with_arg("experiment_id", id);
        }
        self.events.lock().unwrap().push(ev);
    }

    fn bump_counter(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap()
            .counter_add(MetricKey::new(name), 1.0);
    }

    fn set_gauge(&self, name: &str, v: f64) {
        self.metrics
            .lock()
            .unwrap()
            .gauge_set(MetricKey::new(name), v);
    }

    /// Wait for every admitted request to complete.
    pub fn drain(&self) {
        self.pool.join();
    }

    /// A snapshot of the server's own telemetry (request spans + metrics)
    /// as one collected process, for `--trace-out`/`--metrics-out`.
    pub fn collected_telemetry(&self) -> CollectedTelemetry {
        let mut collected = CollectedTelemetry::new();
        collected.ingest(SimTelemetry {
            process_name: "ifsim-serve".into(),
            events: self.events.lock().unwrap().clone(),
            threads: vec![(0, "requests".into())],
            metrics: self.metrics.lock().unwrap().clone(),
        });
        collected
    }
}

/// Where the server listens.
#[derive(Clone, Debug)]
pub enum ServeAddr {
    /// A Unix domain socket path (removed on graceful exit).
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP `host:port` bind address.
    Tcp(String),
}

enum ListenerKind {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

trait Stream: Read + Write + Send {}
impl<T: Read + Write + Send> Stream for T {}

/// SIGTERM flag, set from the signal handler and polled by the accept
/// loop (async-signal-safe: a relaxed atomic store only).
static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_term(_sig: i32) {
        SIGTERM.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM_NO: i32 = 15;
    unsafe {
        signal(SIGTERM_NO, on_term);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// A [`ServerCore`] bound to a socket, serving until drained.
pub struct Server {
    core: Arc<ServerCore>,
    listener: ListenerKind,
    addr: ServeAddr,
    /// Chrome trace of request lifecycles, written at exit.
    pub trace_out: Option<PathBuf>,
    /// Metrics snapshot (stats schema), written at exit.
    pub metrics_out: Option<PathBuf>,
}

impl Server {
    /// Bind `addr` and build the resident core.
    pub fn bind(addr: ServeAddr, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = match &addr {
            #[cfg(unix)]
            ServeAddr::Unix(path) => {
                // A stale socket file from a killed predecessor blocks
                // bind; remove it (connect-refused files only).
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                ListenerKind::Unix(l)
            }
            ServeAddr::Tcp(host) => {
                let l = TcpListener::bind(host.as_str())?;
                l.set_nonblocking(true)?;
                ListenerKind::Tcp(l)
            }
        };
        Ok(Server {
            core: Arc::new(ServerCore::new(opts)),
            listener,
            addr,
            trace_out: None,
            metrics_out: None,
        })
    }

    /// The shared core (for in-process tests and stats).
    pub fn core(&self) -> Arc<ServerCore> {
        Arc::clone(&self.core)
    }

    /// For TCP binds, the actual local address (port 0 resolves here).
    pub fn local_tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            ListenerKind::Unix(_) => None,
        }
    }

    fn accept(&self) -> std::io::Result<Option<Box<dyn Stream>>> {
        match &self.listener {
            #[cfg(unix)]
            ListenerKind::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            ListenerKind::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    /// Serve until a shutdown request or SIGTERM, then drain in-flight
    /// work, write any configured telemetry artifacts, and clean up the
    /// socket. Each connection gets one handler thread reading request
    /// lines until the client disconnects.
    pub fn run(self) -> std::io::Result<()> {
        install_sigterm_handler();
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if SIGTERM.load(Ordering::Relaxed) {
                self.core.start_drain();
            }
            if self.core.draining() {
                break;
            }
            match self.accept()? {
                Some(stream) => {
                    let core = Arc::clone(&self.core);
                    handlers.push(std::thread::spawn(move || handle_connection(core, stream)));
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Graceful drain: stop accepting (done — we left the loop), let
        // admitted work finish, then reap connection threads (their
        // clients see the shutdown response and disconnect).
        self.core.drain();
        for h in handlers {
            let _ = h.join();
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, self.core.collected_telemetry().chrome_trace_string())?;
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, serde_json::to_string_pretty(&self.core.stats_json()))?;
        }
        #[cfg(unix)]
        if let ServeAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// One connection: read request lines, answer each, until EOF.
fn handle_connection(core: Arc<ServerCore>, stream: Box<dyn Stream>) {
    // The box serves both directions; split borrows via a raw reader on
    // a clone is not available for `dyn`, so buffer reads manually.
    let mut stream = stream;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Read until newline or EOF.
        let line_end = loop {
            if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                break Some(pos);
            }
            match stream.read(&mut chunk) {
                Ok(0) => break None,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break None,
            }
        };
        let Some(pos) = line_end else {
            return;
        };
        let line: Vec<u8> = buf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..pos]).into_owned();
        if line.trim().is_empty() {
            continue;
        }
        let mut response = core.handle_line(&line);
        response.push('\n');
        if stream.write_all(response.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
    }
}
