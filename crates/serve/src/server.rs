//! The resident server: request handling, admission control, and the
//! socket host.
//!
//! [`ServerCore`] is the transport-independent heart — one JSON line in,
//! one JSON line out — so unit tests exercise caching, coalescing,
//! deadlines, admission, and error paths without sockets. [`Server`]
//! wraps a core with a Unix or TCP listener, one handler thread per
//! connection, signal-triggered graceful drain (SIGTERM or SIGINT; a
//! second signal forces immediate exit), and optional telemetry
//! artifacts written at exit.
//!
//! Robustness machinery layered onto the PR 5 core:
//!
//! - **persistent cache** — with `cache_dir` set, results survive
//!   restarts via the crash-safe [`DiskStore`](crate::store::DiskStore);
//! - **single-flight coalescing** — N concurrent requests for one digest
//!   attach to a single computation; one leader computes, every follower
//!   receives the same result (or the same error);
//! - **deadlines** — a request's `deadline_ms` is checked before
//!   admission, again at dequeue inside the worker (already-expired work
//!   is shed), and cooperatively at the microbench repetition
//!   checkpoints via a [`CancelToken`] threaded through
//!   `Experiment::run_cancellable`; an overrun answers `504` and the
//!   wedged computation unwinds at its next checkpoint instead of
//!   holding a worker forever.

use crate::cache::{CachedRun, ResultCache};
use crate::proto::{self, Request, RunRequest, RunResponse, Status};
use crate::store::{DiskStore, ScanReport};
use ifsim_core::des::cancel::{CancelToken, Cancelled};
use ifsim_core::registry;
use ifsim_core::telemetry::{
    critpath, CollectedTelemetry, EventKind, MetricKey, MetricsRegistry, SimTelemetry,
    TimelineEvent,
};
use ifsim_core::{BenchConfig, Experiment};
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use std::time::{SystemTime, UNIX_EPOCH};
use threadpool::ThreadPool;

/// Stats/metrics schema tag, validated by `telemetry-lint --serve`.
/// v2 adds the persistent-cache, single-flight, and deadline accounting.
pub const STATS_SCHEMA: &str = "ifsim-serve-stats-v2";

/// Server sizing knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads computing experiments concurrently.
    pub workers: usize,
    /// Requests allowed to wait beyond the busy workers; the admission
    /// capacity is `workers + queue_depth`, and anything past it is
    /// answered `Overloaded` instead of queued.
    pub queue_depth: usize,
    /// In-memory result-cache capacity (entries).
    pub cache_cap: usize,
    /// Byte cap shared by the in-memory tier and the disk store.
    pub cache_bytes: u64,
    /// Directory for the crash-safe persistent cache; `None` keeps the
    /// PR 5 behaviour (memory only, cold after restart).
    pub cache_dir: Option<PathBuf>,
    /// Hard per-request wall-clock budget in milliseconds applied even
    /// to requests without a `deadline_ms`; `0` disables it.
    pub request_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_depth: 16,
            cache_cap: 256,
            cache_bytes: 256 << 20,
            cache_dir: None,
            request_timeout_ms: 0,
        }
    }
}

/// What a computation resolves to: the cached run, or the error status
/// and message every attached request should relay.
type FlightOutcome = Result<Arc<CachedRun>, (Status, String)>;

/// One in-flight computation that concurrent requests for the same
/// digest attach to. The leader publishes exactly once; followers wait,
/// optionally bounded by their own deadline.
struct Flight {
    result: Mutex<Option<FlightOutcome>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn complete(&self, outcome: FlightOutcome) {
        *self.result.lock().unwrap() = Some(outcome);
        self.done.notify_all();
    }

    /// Wait for the leader; `None` means the follower's deadline expired
    /// first.
    fn wait(&self, deadline: Option<Instant>) -> Option<FlightOutcome> {
        let mut guard = self.result.lock().unwrap();
        loop {
            if let Some(outcome) = guard.as_ref() {
                return Some(outcome.clone());
            }
            match deadline {
                None => guard = self.done.wait(guard).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    guard = self.done.wait_timeout(guard, d - now).unwrap().0;
                }
            }
        }
    }
}

/// What a worker sends back to the request thread that queued it.
enum JobOutcome {
    /// The experiment completed.
    Done {
        /// The computed result.
        run: CachedRun,
        /// Time the job sat queued before a worker picked it up.
        queue_wait_ns: u64,
        /// Time the experiment itself ran.
        compute_ns: u64,
        /// `(link, mean_util, peak_util)` extracted from an instrumented
        /// run's fabric-utilization counter track; empty when the job ran
        /// uninstrumented (the common case).
        fabric: Vec<(String, f64, f64)>,
        /// Flight-recorder samples dropped to ring overflow during an
        /// instrumented run, folded into
        /// `serve_fabric_recorder_dropped_samples_total`. Zero for
        /// uninstrumented jobs.
        recorder_dropped: f64,
    },
    /// The deadline had already expired at dequeue; never started.
    Shed,
    /// The cancellation token fired mid-computation.
    Cancelled,
}

/// Per-request phase breakdown collected while serving a `run` request,
/// attached to the request span so one slow answer explains itself:
/// which cache tier probed, which single-flight role, how long queued,
/// how long computing.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// Cache probe answer: `mem`, `disk`, or `miss`.
    pub cache_tier: &'static str,
    /// Single-flight role: `leader`, `follower`, or empty (cache hit /
    /// early error — the request never reached the flight table).
    pub sf_role: &'static str,
    /// Nanoseconds queued behind busy workers (leader only).
    pub queue_wait_ns: u64,
    /// Nanoseconds of experiment compute (leader only).
    pub compute_ns: u64,
}

/// The transport-independent server: resident registry + two-tier cache +
/// single-flight table + bounded compute pool + self-observation.
pub struct ServerCore {
    opts: ServeOptions,
    cache: ResultCache,
    pool: ThreadPool,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    /// Requests admitted (queued or running) right now.
    in_flight: AtomicUsize,
    draining: std::sync::atomic::AtomicBool,
    started: Instant,
    metrics: Mutex<MetricsRegistry>,
    events: Mutex<Vec<TimelineEvent>>,
    // Robustness accounting, mirrored into the metrics registry.
    sf_leaders: AtomicU64,
    sf_followers: AtomicU64,
    dl_exceeded: AtomicU64,
    dl_shed: AtomicU64,
    dl_cancelled: AtomicU64,
    quarantine_seen: AtomicU64,
    /// Uniquifier folded into generated trace ids.
    trace_counter: AtomicU64,
    /// When set (HTTP plane up), at most one compute per second runs
    /// instrumented to refresh the per-link fabric-utilization gauges.
    fabric_sampling: AtomicBool,
    /// Milliseconds-since-start of the last instrumented compute; the
    /// sampling gate CASes this to claim a slot.
    last_fabric_sample_ms: AtomicU64,
}

/// `(link, mean_util, peak_util)` per directed fabric link, extracted
/// from the `fabric_util` counter track of an instrumented run. The
/// flight recorder emits `fabric util <link>` counters; this folds them
/// into one mean/peak pair per link for the live gauges.
/// Total `fabric_recorder_dropped_samples` across an instrumented run's
/// simulators — the ring-drop counter the flight recorder always emits
/// (0.0 when nothing overflowed).
fn recorder_dropped_samples(telemetry: &CollectedTelemetry) -> f64 {
    telemetry
        .metrics()
        .counters()
        .filter(|(k, _)| k.name() == "fabric_recorder_dropped_samples")
        .map(|(_, v)| v)
        .sum()
}

fn fabric_link_utils(telemetry: &CollectedTelemetry) -> Vec<(String, f64, f64)> {
    let mut acc: std::collections::BTreeMap<String, (f64, f64, u64)> = Default::default();
    for ev in telemetry.events() {
        let EventKind::Counter { value } = ev.kind else {
            continue;
        };
        if ev.cat != "fabric_util" {
            continue;
        }
        let Some(link) = ev.name.strip_prefix("fabric util ") else {
            continue;
        };
        let slot = acc.entry(link.to_string()).or_insert((0.0, 0.0, 0));
        slot.0 += value;
        slot.1 = slot.1.max(value);
        slot.2 += 1;
    }
    acc.into_iter()
        .map(|(link, (sum, peak, n))| (link, sum / n as f64, peak))
        .collect()
}

/// Parse and compile an inline scenario document into a runnable
/// experiment, prefixing error field paths with `scenario.` so they name
/// the request field they live under.
fn compile_scenario(doc: &Value) -> Result<Experiment, proto::FieldError> {
    ifsim_scenario::Scenario::from_json(doc)
        .and_then(|s| ifsim_scenario::compile(&s))
        .map_err(|e| proto::FieldError {
            field: if e.field.is_empty() {
                "scenario".into()
            } else {
                format!("scenario.{}", e.field)
            },
            message: e.message,
        })
}

/// SplitMix64 finalizer: mixes a seed into a well-distributed 64-bit
/// value (trace-id generation).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Suppress the default panic hook's report for cooperative-cancellation
/// unwinds ([`Cancelled`] payloads); real panics keep the full report.
fn silence_cancelled_unwinds() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Cancelled>() {
                return;
            }
            default_hook(info);
        }));
    });
}

impl ServerCore {
    /// Build a core with `opts` (worker count clamped to ≥ 1), opening —
    /// and crash-recovering — the persistent cache when `cache_dir` is
    /// set. The [`ScanReport`] says what the recovery scan found.
    pub fn build(opts: ServeOptions) -> std::io::Result<(ServerCore, Option<ScanReport>)> {
        silence_cancelled_unwinds();
        let workers = opts.workers.max(1);
        let (store, scan) = match &opts.cache_dir {
            Some(dir) => {
                let (store, report) = DiskStore::open(dir, opts.cache_bytes)?;
                (Some(store), Some(report))
            }
            None => (None, None),
        };
        let cache = ResultCache::with_limits(opts.cache_cap, opts.cache_bytes, store);
        let core = ServerCore {
            cache,
            pool: ThreadPool::new(workers),
            flights: Mutex::new(HashMap::new()),
            in_flight: AtomicUsize::new(0),
            draining: std::sync::atomic::AtomicBool::new(false),
            started: Instant::now(),
            metrics: Mutex::new(MetricsRegistry::new()),
            events: Mutex::new(Vec::new()),
            sf_leaders: AtomicU64::new(0),
            sf_followers: AtomicU64::new(0),
            dl_exceeded: AtomicU64::new(0),
            dl_shed: AtomicU64::new(0),
            dl_cancelled: AtomicU64::new(0),
            quarantine_seen: AtomicU64::new(0),
            trace_counter: AtomicU64::new(0),
            fabric_sampling: AtomicBool::new(false),
            last_fabric_sample_ms: AtomicU64::new(0),
            opts: ServeOptions { workers, ..opts },
        };
        // Pre-seed the robustness counters so a stats snapshot carries
        // them (and lints clean) before the first interesting request.
        {
            let mut metrics = core.metrics.lock().unwrap();
            for name in [
                "serve_singleflight_leaders",
                "serve_singleflight_followers",
                "serve_deadline_exceeded_total",
                "serve_deadline_shed_total",
                "serve_cancelled_jobs_total",
                "serve_cache_quarantined_total",
                "serve_cache_hits",
                "serve_cache_misses",
                "serve_overloaded_total",
                "serve_panicked_jobs",
                "serve_fabric_recorder_dropped_samples_total",
            ] {
                metrics.counter_add(MetricKey::new(name), 0.0);
            }
        }
        core.sync_quarantine_counter();
        Ok((core, scan))
    }

    /// [`ServerCore::build`] for memory-only options; panics if `opts`
    /// names a `cache_dir` that cannot be opened.
    pub fn new(opts: ServeOptions) -> ServerCore {
        ServerCore::build(opts).expect("open cache dir").0
    }

    /// Admission capacity: busy workers plus the bounded queue.
    pub fn capacity(&self) -> usize {
        self.opts.workers + self.opts.queue_depth
    }

    /// Try to claim one admission slot. `false` means the server is at
    /// capacity and the caller must answer `Overloaded`. Public so tests
    /// can pin the server at capacity deterministically.
    pub fn try_admit(&self) -> bool {
        let cap = self.capacity();
        self.in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                if n < cap {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Release one admission slot claimed by [`ServerCore::try_admit`].
    pub fn finish_admitted(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Requests admitted (queued or running) right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Whether a shutdown request or signal has started the drain.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begin draining: the socket host stops accepting, in-flight work
    /// completes, then the process exits.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// The result cache (hit/miss counters for tests and stats).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Single-flight leader count (requests that computed).
    pub fn singleflight_leaders(&self) -> u64 {
        self.sf_leaders.load(Ordering::SeqCst)
    }

    /// Single-flight follower count (requests that coalesced).
    pub fn singleflight_followers(&self) -> u64 {
        self.sf_followers.load(Ordering::SeqCst)
    }

    /// Generate a fresh 16-hex-digit trace id. Wall clock, pid, and a
    /// process-local counter feed a SplitMix64 finalizer, so ids are
    /// unique within a daemon and collide across daemons only by chance.
    pub fn gen_trace_id(&self) -> String {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        let mixed = splitmix64(nanos ^ (u64::from(std::process::id()) << 32) ^ n);
        format!("{mixed:016x}")
    }

    /// Turn on the once-per-second instrumented-compute sampling that
    /// feeds the per-link fabric-utilization gauges. Off by default: the
    /// collector adds measurable overhead, so only a daemon with a live
    /// observability plane pays for it.
    pub fn enable_fabric_sampling(&self) {
        self.fabric_sampling.store(true, Ordering::SeqCst);
    }

    /// Claim the fabric-sampling slot if sampling is on and at least a
    /// second has passed since the last instrumented compute.
    fn claim_fabric_sample(&self) -> bool {
        if !self.fabric_sampling.load(Ordering::SeqCst) {
            return false;
        }
        let now_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_fabric_sample_ms.load(Ordering::SeqCst);
        // 0 means "never sampled"; sample immediately on the first claim.
        if last != 0 && now_ms.saturating_sub(last) < 1000 {
            return false;
        }
        self.last_fabric_sample_ms
            .compare_exchange(last, now_ms.max(1), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Handle one request line, returning the response line (no trailing
    /// newline). Never panics outward: every failure maps to a status.
    ///
    /// Every line is decoded once; its top-level `trace_id` (or a
    /// generated one) is echoed on every response except `pong`, and the
    /// request span plus latency exemplar carry the same id.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        let decoded = serde_json::from_str(line.trim()).map_err(|e| proto::FieldError {
            field: String::new(),
            message: format!("bad JSON: {e}"),
        });
        let trace_id = decoded
            .as_ref()
            .ok()
            .and_then(|v| proto::envelope_trace_id(v))
            .map(str::to_string)
            .unwrap_or_else(|| self.gen_trace_id());
        let parsed = decoded.and_then(|v| proto::parse_request_value(&v));
        let mut run_trace = None;
        let (op, mut value) = match parsed {
            Err(e) => {
                let mut m = Map::new();
                m.insert("op", Value::from("error"));
                m.insert("status", Value::from(Status::BadRequest.as_str()));
                m.insert("code", Value::from(Status::BadRequest.code()));
                m.insert("error", Value::from(e.to_string()));
                if !e.field.is_empty() {
                    m.insert("field", Value::from(e.field));
                }
                ("parse", Value::Object(m))
            }
            Ok(Request::Ping) => {
                let mut m = Map::new();
                m.insert("op", Value::from("pong"));
                m.insert("status", Value::from(Status::Ok.as_str()));
                m.insert("code", Value::from(Status::Ok.code()));
                ("ping", Value::Object(m))
            }
            Ok(Request::Stats) => ("stats", self.stats_json()),
            Ok(Request::Shutdown) => {
                self.start_drain();
                let mut m = Map::new();
                m.insert("op", Value::from("shutdown-response"));
                m.insert("status", Value::from(Status::Ok.as_str()));
                m.insert("code", Value::from(Status::Ok.code()));
                m.insert("draining", Value::from(true));
                ("shutdown", Value::Object(m))
            }
            Ok(Request::Run(req)) => {
                let mut trace = RunTrace::default();
                let mut resp = self.handle_run(&req, t0, &mut trace);
                resp.trace_id = trace_id.clone();
                run_trace = Some(trace);
                ("run", resp.to_json())
            }
        };
        // Every non-ping response names its trace (pong stays minimal:
        // it is the hot liveness path).
        if op != "ping" {
            if let Value::Object(ref mut m) = value {
                m.insert("trace_id", Value::from(trace_id.clone()));
            }
        }
        let t_ser = Instant::now();
        let text = serde_json::to_string(&value);
        let serialize_ns = t_ser.elapsed().as_nanos() as u64;
        self.observe_request(op, &value, t0, &trace_id, run_trace.as_ref(), serialize_ns);
        text
    }

    /// Serve one run request: validate → digest → cache → coalesce →
    /// admit → compute under deadline. Phase timings and tier/role labels
    /// land in `trace`.
    fn handle_run(&self, req: &RunRequest, arrival: Instant, trace: &mut RunTrace) -> RunResponse {
        // Resolve the work unit: an inline scenario compiles server-side
        // (its content digest rides the experiment's digest_extra, so the
        // cache and single-flight key on scenario content); otherwise the
        // id is a registry lookup. Either failure names the field.
        let exp = if let Some(doc) = &req.scenario {
            match compile_scenario(doc) {
                Ok(exp) => exp,
                Err(e) => {
                    return RunResponse::field_error(
                        Status::BadRequest,
                        req.experiment_id.clone(),
                        e,
                    )
                }
            }
        } else {
            match registry::by_id(&req.experiment_id) {
                Some(exp) => exp,
                None => {
                    return RunResponse::field_error(
                        Status::BadRequest,
                        req.experiment_id.clone(),
                        proto::FieldError {
                            field: "experiment_id".into(),
                            message: format!("unknown experiment '{}'", req.experiment_id),
                        },
                    )
                }
            }
        };
        // A scenario request may omit the id; echo the compiled one.
        let req = &RunRequest {
            experiment_id: if req.experiment_id.is_empty() {
                exp.id.to_string()
            } else {
                req.experiment_id.clone()
            },
            ..req.clone()
        };
        let cfg = match req.overrides.resolve() {
            Ok(cfg) => cfg,
            Err(e) => {
                return RunResponse::field_error(Status::BadRequest, req.experiment_id.clone(), e)
            }
        };
        let digest = exp.config_digest(&cfg);
        // Analyzed runs answer with extra payload (the critical-path
        // report), so they cache under a derived key: a plain request for
        // the same configuration must keep replaying its original bytes.
        let digest = if req.analyze {
            ifsim_core::experiment::digest_kv(&[
                ("base".to_string(), digest),
                ("analyze".to_string(), "critpath-v1".to_string()),
            ])
        } else {
            digest
        };

        let (hit, tier) = self.cache.get_traced(&digest);
        trace.cache_tier = tier.as_str();
        if let Some(hit) = hit {
            self.bump_counter("serve_cache_hits");
            return self.respond_from(req, &hit, true);
        }
        self.bump_counter("serve_cache_misses");
        self.sync_quarantine_counter();

        let deadline = req
            .deadline_ms
            .map(|ms| arrival + Duration::from_millis(ms));

        // Shed requests that are already dead before touching the pool.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.count_deadline(&self.dl_shed, "serve_deadline_shed_total");
            return self.deadline_error(req, &digest, "deadline expired before compute started");
        }

        // Single-flight: the first request for a digest leads, everyone
        // else attaches to its computation.
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get(&digest) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::new());
                    flights.insert(digest.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };

        trace.sf_role = if leader { "leader" } else { "follower" };
        if !leader {
            self.sf_followers.fetch_add(1, Ordering::SeqCst);
            self.bump_counter("serve_singleflight_followers");
            return match flight.wait(deadline) {
                Some(Ok(run)) => self.respond_from(req, &run, false),
                Some(Err((status, msg))) => self.error_with_digest(status, req, &digest, msg),
                None => self.deadline_error(
                    req,
                    &digest,
                    "deadline expired while coalesced behind an identical in-flight request",
                ),
            };
        }

        self.sf_leaders.fetch_add(1, Ordering::SeqCst);
        self.bump_counter("serve_singleflight_leaders");
        let outcome = self.compute(exp, cfg, &digest, req.analyze, deadline, trace);
        // Publish to followers *after* unregistering, so a request that
        // arrives later starts a fresh computation instead of attaching
        // to a completed flight.
        self.flights.lock().unwrap().remove(&digest);
        flight.complete(outcome.clone());
        match outcome {
            Ok(run) => self.respond_from(req, &run, false),
            Err((status, msg)) => self.error_with_digest(status, req, &digest, msg),
        }
    }

    /// Leader-side compute: admission, dispatch with a cancel token,
    /// bounded wait, cache insertion.
    fn compute(
        &self,
        exp: Experiment,
        cfg: BenchConfig,
        digest: &str,
        analyze: bool,
        deadline: Option<Instant>,
        trace: &mut RunTrace,
    ) -> FlightOutcome {
        if !self.try_admit() {
            self.bump_counter("serve_overloaded_total");
            return Err((
                Status::Overloaded,
                format!(
                    "server at capacity ({} in flight); retry later",
                    self.capacity()
                ),
            ));
        }
        self.set_gauge("serve_queue_depth", self.in_flight() as f64);

        let token = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        // The worker sends its outcome back over a channel; if the
        // experiment panics, the sender drops without sending, the pool
        // respawns the worker, and the client gets a 500 instead of a
        // wedged connection.
        let (tx, rx) = mpsc::channel::<JobOutcome>();
        {
            let digest = digest.to_string();
            let token = token.clone();
            let instrument = self.claim_fabric_sample();
            let submitted = Instant::now();
            self.pool.execute(move || {
                // Dequeue-time deadline check: work that expired while
                // queued is shed without computing anything.
                let queue_wait_ns = submitted.elapsed().as_nanos() as u64;
                if token.is_cancelled() {
                    let _ = tx.send(JobOutcome::Shed);
                    return;
                }
                let t_compute = Instant::now();
                // Analyzed runs capture the causal DAG and render the
                // critical-path report; plain instrumented runs
                // (rate-limited, only with the HTTP plane up) harvest the
                // per-link fabric utilization counter track for the live
                // gauges. Either way the telemetry also carries the
                // flight recorder's ring-drop counter.
                let outcome = if analyze {
                    exp.run_instrumented_dag_cancellable(&cfg, &token)
                        .map(|(result, telemetry)| {
                            let report = critpath::report(telemetry.dags(), 10);
                            let critpath = serde_json::to_string(&critpath::critpath_json(&report));
                            (
                                result,
                                fabric_link_utils(&telemetry),
                                recorder_dropped_samples(&telemetry),
                                Some(critpath),
                            )
                        })
                } else if instrument {
                    exp.run_instrumented_cancellable(&cfg, &token)
                        .map(|(result, telemetry)| {
                            (
                                result,
                                fabric_link_utils(&telemetry),
                                recorder_dropped_samples(&telemetry),
                                None,
                            )
                        })
                } else {
                    exp.run_cancellable(&cfg, &token)
                        .map(|r| (r, Vec::new(), 0.0, None))
                };
                match outcome {
                    Ok((result, fabric, recorder_dropped, critpath)) => {
                        let _ = tx.send(JobOutcome::Done {
                            run: CachedRun {
                                digest,
                                report: result.report(),
                                checks_passed: result.checks.iter().filter(|c| c.passed).count(),
                                checks_total: result.checks.len(),
                                csv: result.csv,
                                critpath,
                            },
                            queue_wait_ns,
                            compute_ns: t_compute.elapsed().as_nanos() as u64,
                            fabric,
                            recorder_dropped,
                        });
                    }
                    Err(Cancelled) => {
                        let _ = tx.send(JobOutcome::Cancelled);
                    }
                }
            });
        }

        let hard = (self.opts.request_timeout_ms > 0)
            .then(|| Duration::from_millis(self.opts.request_timeout_ms));
        let wait = match (deadline, hard) {
            (Some(d), Some(h)) => Some(h.min(d.saturating_duration_since(Instant::now()))),
            (Some(d), None) => Some(d.saturating_duration_since(Instant::now())),
            (None, Some(h)) => Some(h),
            (None, None) => None,
        };
        // Err(true) = timed out; Err(false) = worker died (panic).
        let outcome = match wait {
            None => rx.recv().map_err(|_| false),
            Some(d) => rx
                .recv_timeout(d)
                .map_err(|e| matches!(e, mpsc::RecvTimeoutError::Timeout)),
        };
        self.finish_admitted();
        self.set_gauge("serve_queue_depth", self.in_flight() as f64);
        match outcome {
            Ok(JobOutcome::Done {
                run,
                queue_wait_ns,
                compute_ns,
                fabric,
                recorder_dropped,
            }) => {
                trace.queue_wait_ns = queue_wait_ns;
                trace.compute_ns = compute_ns;
                if recorder_dropped > 0.0 {
                    self.metrics.lock().unwrap().counter_add(
                        MetricKey::new("serve_fabric_recorder_dropped_samples_total"),
                        recorder_dropped,
                    );
                }
                if !fabric.is_empty() {
                    let mut metrics = self.metrics.lock().unwrap();
                    for (link, mean, peak) in fabric {
                        metrics.gauge_set(
                            MetricKey::new("serve_fabric_link_utilization")
                                .with("link", link.clone()),
                            mean,
                        );
                        metrics.gauge_set(
                            MetricKey::new("serve_fabric_link_peak_utilization").with("link", link),
                            peak,
                        );
                    }
                }
                let run = Arc::new(run);
                self.cache.insert(Arc::clone(&run));
                Ok(run)
            }
            Ok(JobOutcome::Shed) => {
                self.count_deadline(&self.dl_shed, "serve_deadline_shed_total");
                Err((
                    Status::DeadlineExceeded,
                    "deadline expired while queued; work shed at dequeue".into(),
                ))
            }
            Ok(JobOutcome::Cancelled) => {
                self.count_deadline(&self.dl_cancelled, "serve_cancelled_jobs_total");
                Err((
                    Status::DeadlineExceeded,
                    "deadline expired mid-computation; experiment cancelled".into(),
                ))
            }
            Err(true) => {
                // Ask the computation to die at its next checkpoint; the
                // worker survives the cooperative unwind and is reused.
                token.cancel();
                self.count_deadline(&self.dl_cancelled, "serve_cancelled_jobs_total");
                let what = if deadline.is_some() {
                    "request deadline exceeded; computation cancelled"
                } else {
                    "request hard timeout exceeded; computation cancelled"
                };
                Err((Status::DeadlineExceeded, what.into()))
            }
            Err(false) => {
                self.bump_counter("serve_panicked_jobs");
                Err((
                    Status::Internal,
                    "experiment panicked; see server log".into(),
                ))
            }
        }
    }

    /// An error response that still names the cache key.
    fn error_with_digest(
        &self,
        status: Status,
        req: &RunRequest,
        digest: &str,
        msg: String,
    ) -> RunResponse {
        if status == Status::DeadlineExceeded {
            self.count_deadline(&self.dl_exceeded, "serve_deadline_exceeded_total");
        }
        let mut resp = RunResponse::error(status, req.experiment_id.clone(), msg);
        resp.digest = digest.to_string();
        resp
    }

    /// A `504 DeadlineExceeded` response.
    fn deadline_error(&self, req: &RunRequest, digest: &str, msg: &str) -> RunResponse {
        self.error_with_digest(Status::DeadlineExceeded, req, digest, msg.to_string())
    }

    fn count_deadline(&self, field: &AtomicU64, counter: &str) {
        field.fetch_add(1, Ordering::SeqCst);
        self.bump_counter(counter);
    }

    /// Fold newly quarantined disk entries into the metrics counter.
    fn sync_quarantine_counter(&self) {
        let Some(store) = self.cache.store() else {
            return;
        };
        let total = store.quarantined_total();
        let prev = self.quarantine_seen.swap(total, Ordering::SeqCst);
        if total > prev {
            self.metrics.lock().unwrap().counter_add(
                MetricKey::new("serve_cache_quarantined_total"),
                (total - prev) as f64,
            );
        }
    }

    /// Build the OK response, applying the request's artifact filter.
    fn respond_from(&self, req: &RunRequest, run: &CachedRun, cached: bool) -> RunResponse {
        let csv = if req.artifacts.is_empty() {
            run.csv.clone()
        } else {
            run.csv
                .iter()
                .filter(|(name, _)| req.artifacts.iter().any(|a| a == name))
                .cloned()
                .collect()
        };
        RunResponse {
            trace_id: String::new(), // filled by handle_line
            status: Status::Ok,
            experiment_id: req.experiment_id.clone(),
            digest: run.digest.clone(),
            cached,
            error: None,
            error_field: None,
            report: Some(run.report.clone()),
            csv,
            checks_passed: run.checks_passed,
            checks_total: run.checks_total,
            // Stored as the exact serialized text; re-parse so the
            // response embeds it as structured JSON, not a string blob.
            critpath: run
                .critpath
                .as_deref()
                .and_then(|text| serde_json::from_str(text).ok()),
        }
    }

    /// The `stats` response (`ifsim-serve-stats-v2`).
    pub fn stats_json(&self) -> Value {
        self.sync_quarantine_counter();
        let mut cache = Map::new();
        cache.insert("entries", Value::from(self.cache.entries()));
        cache.insert("capacity", Value::from(self.cache.capacity()));
        cache.insert("bytes", Value::from(self.cache.bytes() as f64));
        cache.insert("bytes_capacity", Value::from(self.cache.bytes_cap() as f64));
        cache.insert("hits", Value::from(self.cache.hits()));
        cache.insert("disk_hits", Value::from(self.cache.disk_hits()));
        cache.insert("misses", Value::from(self.cache.misses()));
        cache.insert("hit_rate", Value::from(self.cache.hit_rate()));
        cache.insert("persistent", Value::from(self.cache.store().is_some()));
        let (disk_entries, disk_bytes, quarantined) = match self.cache.store() {
            Some(s) => (s.entries(), s.total_bytes(), s.quarantined_total()),
            None => (0, 0, 0),
        };
        cache.insert("disk_entries", Value::from(disk_entries));
        cache.insert("disk_bytes", Value::from(disk_bytes as f64));
        cache.insert("quarantined", Value::from(quarantined));
        let mut queue = Map::new();
        queue.insert("in_flight", Value::from(self.in_flight()));
        queue.insert("capacity", Value::from(self.capacity()));
        queue.insert("workers", Value::from(self.opts.workers));
        queue.insert("queue_depth", Value::from(self.opts.queue_depth));
        let mut pool = Map::new();
        pool.insert("panicked_jobs", Value::from(self.pool.panicked_jobs()));
        let mut singleflight = Map::new();
        singleflight.insert(
            "leaders",
            Value::from(self.sf_leaders.load(Ordering::SeqCst)),
        );
        singleflight.insert(
            "followers",
            Value::from(self.sf_followers.load(Ordering::SeqCst)),
        );
        let mut deadline = Map::new();
        deadline.insert(
            "exceeded",
            Value::from(self.dl_exceeded.load(Ordering::SeqCst)),
        );
        deadline.insert("shed", Value::from(self.dl_shed.load(Ordering::SeqCst)));
        deadline.insert(
            "cancelled",
            Value::from(self.dl_cancelled.load(Ordering::SeqCst)),
        );
        let mut m = Map::new();
        m.insert("op", Value::from("stats-response"));
        m.insert("status", Value::from(Status::Ok.as_str()));
        m.insert("code", Value::from(Status::Ok.code()));
        m.insert("schema", Value::from(STATS_SCHEMA));
        m.insert(
            "uptime_ns",
            Value::from(self.started.elapsed().as_nanos() as f64),
        );
        m.insert("draining", Value::from(self.draining()));
        m.insert("cache", Value::Object(cache));
        m.insert("queue", Value::Object(queue));
        m.insert("pool", Value::Object(pool));
        m.insert("singleflight", Value::Object(singleflight));
        m.insert("deadline", Value::Object(deadline));
        m.insert("metrics", self.metrics.lock().unwrap().to_json());
        Value::Object(m)
    }

    /// The `/metrics` exposition: the live registry plus derived gauges
    /// (uptime, in-flight, draining), rendered as Prometheus text.
    pub fn prometheus_text(&self) -> String {
        self.sync_quarantine_counter();
        let mut reg = self.metrics.lock().unwrap().clone();
        reg.gauge_set(
            MetricKey::new("serve_uptime_seconds"),
            self.started.elapsed().as_secs_f64(),
        );
        reg.gauge_set(MetricKey::new("serve_in_flight"), self.in_flight() as f64);
        reg.gauge_set(
            MetricKey::new("serve_draining"),
            if self.draining() { 1.0 } else { 0.0 },
        );
        ifsim_core::telemetry::render_prometheus(&reg)
    }

    /// Account one handled request into metrics and the trace timeline:
    /// the request counter, the latency histogram (with a trace-id
    /// exemplar), and a span carrying the trace id plus the per-phase
    /// breakdown for run requests.
    fn observe_request(
        &self,
        op: &str,
        response: &Value,
        t0: Instant,
        trace_id: &str,
        run_trace: Option<&RunTrace>,
        serialize_ns: u64,
    ) {
        let latency_ns = t0.elapsed().as_nanos() as f64;
        let start_ns = (t0 - self.started).as_nanos() as f64;
        let code = response.get("code").and_then(Value::as_u64).unwrap_or(0);
        {
            let mut metrics = self.metrics.lock().unwrap();
            metrics.counter_add(
                MetricKey::new("serve_requests_total")
                    .with("op", op)
                    .with("code", code.to_string()),
                1.0,
            );
            metrics.observe_with_exemplar(
                MetricKey::new("serve_request_latency_ns").with("op", op),
                latency_ns,
                trace_id,
            );
        }
        let start = ifsim_core::des::Time::from_ns(start_ns);
        let end = ifsim_core::des::Time::from_ns(start_ns + latency_ns);
        let mut ev = TimelineEvent::span(start, end, format!("req {op}"), "serve_request")
            .with_arg("code", code.to_string())
            .with_arg("trace_id", trace_id)
            .with_arg("serialize_ns", serialize_ns.to_string());
        if let Some(cached) = response.get("cached").and_then(Value::as_bool) {
            ev = ev.with_arg("cached", cached.to_string());
        }
        if let Some(id) = response.get("experiment_id").and_then(Value::as_str) {
            ev = ev.with_arg("experiment_id", id);
        }
        if let Some(t) = run_trace {
            if !t.cache_tier.is_empty() {
                ev = ev.with_arg("cache", t.cache_tier);
            }
            if !t.sf_role.is_empty() {
                ev = ev.with_arg("singleflight", t.sf_role);
            }
            if t.sf_role == "leader" {
                ev = ev
                    .with_arg("queue_wait_ns", t.queue_wait_ns.to_string())
                    .with_arg("compute_ns", t.compute_ns.to_string());
            }
        }
        self.events.lock().unwrap().push(ev);
    }

    fn bump_counter(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap()
            .counter_add(MetricKey::new(name), 1.0);
    }

    fn set_gauge(&self, name: &str, v: f64) {
        self.metrics
            .lock()
            .unwrap()
            .gauge_set(MetricKey::new(name), v);
    }

    /// Wait for every admitted request to complete.
    pub fn drain(&self) {
        self.pool.join();
    }

    /// A snapshot of the server's own telemetry (request spans + metrics)
    /// as one collected process, for `--trace-out`/`--metrics-out`.
    pub fn collected_telemetry(&self) -> CollectedTelemetry {
        let mut collected = CollectedTelemetry::new();
        collected.ingest(SimTelemetry {
            process_name: "ifsim-serve".into(),
            events: self.events.lock().unwrap().clone(),
            threads: vec![(0, "requests".into())],
            metrics: self.metrics.lock().unwrap().clone(),
            dag: None,
        });
        collected
    }
}

/// Where the server listens.
#[derive(Clone, Debug)]
pub enum ServeAddr {
    /// A Unix domain socket path (removed on graceful exit).
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP `host:port` bind address.
    Tcp(String),
}

enum ListenerKind {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

trait Stream: Read + Write + Send {}
impl<T: Read + Write + Send> Stream for T {}

/// Count of drain signals (SIGTERM or SIGINT) received, incremented from
/// the handler (async-signal-safe: an atomic add; the forced `_exit` on
/// the second signal is on the async-signal-safe list too). The accept
/// loop polls it; a second signal never waits for the drain.
static SIGNALS: AtomicUsize = AtomicUsize::new(0);

/// Exit code for a forced (double-signal) shutdown: 128 + SIGINT.
const FORCED_EXIT_CODE: i32 = 130;

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        let prev = SIGNALS.fetch_add(1, Ordering::SeqCst);
        if prev >= 1 {
            // Second signal: the operator wants out *now*. Skip drain,
            // skip artifact writes, exit non-zero immediately.
            extern "C" {
                fn _exit(code: i32) -> !;
            }
            unsafe { _exit(FORCED_EXIT_CODE) }
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT_NO: i32 = 2;
    const SIGTERM_NO: i32 = 15;
    unsafe {
        signal(SIGINT_NO, on_signal);
        signal(SIGTERM_NO, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// A [`ServerCore`] bound to a socket, serving until drained.
pub struct Server {
    core: Arc<ServerCore>,
    listener: ListenerKind,
    addr: ServeAddr,
    /// What the persistent-cache recovery scan found at bind time
    /// (`None` without a `cache_dir`).
    pub scan_report: Option<ScanReport>,
    /// Chrome trace of request lifecycles, written at exit.
    pub trace_out: Option<PathBuf>,
    /// Metrics snapshot (stats schema), written at exit.
    pub metrics_out: Option<PathBuf>,
    /// The bound observability plane (`--http`), spawned when `run`
    /// starts and stopped after the drain completes — so `/readyz` can
    /// report `503 draining` for the whole drain window.
    pub http: Option<crate::http::HttpPlane>,
}

impl Server {
    /// Bind `addr` and build the resident core (recovering the
    /// persistent cache first when one is configured).
    pub fn bind(addr: ServeAddr, opts: ServeOptions) -> std::io::Result<Server> {
        let (core, scan_report) = ServerCore::build(opts)?;
        let listener = match &addr {
            #[cfg(unix)]
            ServeAddr::Unix(path) => {
                // A stale socket file from a killed predecessor blocks
                // bind; remove it (connect-refused files only).
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                ListenerKind::Unix(l)
            }
            ServeAddr::Tcp(host) => {
                let l = TcpListener::bind(host.as_str())?;
                l.set_nonblocking(true)?;
                ListenerKind::Tcp(l)
            }
        };
        Ok(Server {
            core: Arc::new(core),
            listener,
            addr,
            scan_report,
            trace_out: None,
            metrics_out: None,
            http: None,
        })
    }

    /// The shared core (for in-process tests and stats).
    pub fn core(&self) -> Arc<ServerCore> {
        Arc::clone(&self.core)
    }

    /// For TCP binds, the actual local address (port 0 resolves here).
    pub fn local_tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            ListenerKind::Unix(_) => None,
        }
    }

    fn accept(&self) -> std::io::Result<Option<Box<dyn Stream>>> {
        match &self.listener {
            #[cfg(unix)]
            ListenerKind::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            ListenerKind::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    /// Serve until a shutdown request, SIGTERM, or SIGINT, then drain
    /// in-flight work, write any configured telemetry artifacts, and
    /// clean up the socket. A second signal during (or before) the drain
    /// forces an immediate exit with code 130. Each connection gets one
    /// handler thread reading request lines until the client disconnects.
    pub fn run(mut self) -> std::io::Result<()> {
        install_signal_handlers();
        let http = self.http.take().map(crate::http::HttpPlane::spawn);
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if SIGNALS.load(Ordering::Relaxed) > 0 {
                self.core.start_drain();
            }
            if self.core.draining() {
                break;
            }
            match self.accept()? {
                Some(stream) => {
                    let core = Arc::clone(&self.core);
                    handlers.push(std::thread::spawn(move || handle_connection(core, stream)));
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Graceful drain: stop accepting (done — we left the loop), let
        // admitted work finish, then reap connection threads (their
        // clients see the shutdown response and disconnect).
        self.core.drain();
        for h in handlers {
            let _ = h.join();
        }
        // The observability plane outlives the drain so `/readyz` could
        // answer `503 draining`; now the work is done, take it down.
        if let Some(h) = http {
            h.shutdown();
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, self.core.collected_telemetry().chrome_trace_string())?;
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, serde_json::to_string_pretty(&self.core.stats_json()))?;
        }
        #[cfg(unix)]
        if let ServeAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// One connection: read request lines, answer each, until EOF.
fn handle_connection(core: Arc<ServerCore>, stream: Box<dyn Stream>) {
    // The box serves both directions; split borrows via a raw reader on
    // a clone is not available for `dyn`, so buffer reads manually.
    let mut stream = stream;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Read until newline or EOF.
        let line_end = loop {
            if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                break Some(pos);
            }
            match stream.read(&mut chunk) {
                Ok(0) => break None,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break None,
            }
        };
        let Some(pos) = line_end else {
            return;
        };
        let line: Vec<u8> = buf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..pos]).into_owned();
        if line.trim().is_empty() {
            continue;
        }
        let mut response = core.handle_line(&line);
        response.push('\n');
        if stream.write_all(response.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
    }
}
