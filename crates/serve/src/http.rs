//! The live observability plane: a dependency-free HTTP/1.1 listener.
//!
//! `ifsim-serve --http ADDR` binds an [`HttpPlane`] next to the wire
//! socket. It serves operators and scrapers while the daemon runs:
//!
//! | Endpoint     | What it returns |
//! |--------------|-----------------|
//! | `/metrics`   | Prometheus text exposition (with trace-id exemplars) |
//! | `/healthz`   | `200 ok` while the process is alive |
//! | `/readyz`    | `200 ready`, flipping to `503 draining` during drain |
//! | `/stats`     | The `ifsim-serve-stats-v2` JSON snapshot |
//! | `/dashboard` | A single-file HTML dashboard (also at `/`) |
//! | `/events`    | 1 Hz SSE stream of dashboard samples, ~5 min backfill |
//!
//! Implementation notes: every connection is handled by one thread and
//! closed after its response (`Connection: close`) — except `/events`,
//! which streams until the client disconnects or the daemon shuts down.
//! A sampler thread snapshots the stats JSON once a second into a
//! [`SnapshotRing`], so a dashboard connecting late backfills the last
//! ~5 minutes and then rides the live ticks. The plane stays up through
//! the drain (so `/readyz` can report it) and stops only when the host
//! calls [`HttpHandle::shutdown`] after the drain completes.

use crate::server::ServerCore;
use ifsim_core::telemetry::SnapshotRing;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Samples retained for SSE backfill: 5 minutes at 1 Hz.
const RING_CAPACITY: usize = 300;

/// Sampler cadence.
const SAMPLE_PERIOD: Duration = Duration::from_millis(1000);

/// How often handler threads re-check the stop flag / the ring.
const POLL: Duration = Duration::from_millis(100);

/// The dashboard page, compiled into the binary so the daemon stays a
/// single self-contained artifact.
const DASHBOARD_HTML: &str = include_str!("dashboard.html");

/// The observability listener, bound but not yet serving.
pub struct HttpPlane {
    core: Arc<ServerCore>,
    listener: TcpListener,
    addr: SocketAddr,
}

/// A running [`HttpPlane`]: keep it until the daemon has drained, then
/// [`HttpHandle::shutdown`] it.
pub struct HttpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl HttpPlane {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and enable the once-per-second
    /// fabric-utilization sampling on the core — the dashboard is the
    /// consumer of those gauges.
    pub fn bind(core: Arc<ServerCore>, addr: &str) -> std::io::Result<HttpPlane> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        core.enable_fabric_sampling();
        Ok(HttpPlane {
            core,
            listener,
            addr,
        })
    }

    /// The resolved local address (port 0 resolves here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start the accept loop and the 1 Hz sampler; returns the handle
    /// that stops both.
    pub fn spawn(self) -> HttpHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let ring = Arc::new(Mutex::new(SnapshotRing::new(RING_CAPACITY)));
        let mut threads = Vec::new();

        {
            // Sampler: one stats snapshot per second into the ring.
            let core = Arc::clone(&self.core);
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut prev: Option<(f64, f64, f64)> = None;
                while !stop.load(Ordering::SeqCst) {
                    let sample = dash_sample(&core.stats_json(), &mut prev);
                    ring.lock().unwrap().push(sample);
                    // Sleep in short slices so shutdown is prompt.
                    let mut slept = Duration::ZERO;
                    while slept < SAMPLE_PERIOD && !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(POLL);
                        slept += POLL;
                    }
                }
            }));
        }

        {
            // Accept loop: thread per connection, non-blocking accept so
            // the stop flag is honored within one poll interval.
            let core = Arc::clone(&self.core);
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            let listener = self.listener;
            threads.push(std::thread::spawn(move || {
                let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let core = Arc::clone(&core);
                            let ring = Arc::clone(&ring);
                            let stop = Arc::clone(&stop);
                            workers.push(std::thread::spawn(move || {
                                handle_connection(&core, &ring, &stop, stream);
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => break,
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            }));
        }

        HttpHandle {
            addr: self.addr,
            stop,
            threads,
        }
    }
}

impl HttpHandle {
    /// The resolved local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, end the SSE streams and the sampler, and join
    /// every plane thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Serve one connection: parse the request head, route, respond, close
/// (SSE excepted — it streams until disconnect or stop).
fn handle_connection(
    core: &ServerCore,
    ring: &Mutex<SnapshotRing<String>>,
    stop: &AtomicBool,
    mut stream: TcpStream,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Some((method, path)) = read_request_head(&mut stream) else {
        return;
    };
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served here\n",
        );
        return;
    }
    // Strip any query string: the dashboard may cache-bust.
    let route = path.split('?').next().unwrap_or("");
    match route {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &core.prometheus_text(),
        ),
        "/healthz" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        "/readyz" => {
            if core.draining() {
                respond(
                    &mut stream,
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "draining\n",
                );
            } else {
                respond(
                    &mut stream,
                    "200 OK",
                    "text/plain; charset=utf-8",
                    "ready\n",
                );
            }
        }
        "/stats" => respond(
            &mut stream,
            "200 OK",
            "application/json; charset=utf-8",
            &serde_json::to_string(&core.stats_json()),
        ),
        "/" | "/dashboard" => respond(
            &mut stream,
            "200 OK",
            "text/html; charset=utf-8",
            DASHBOARD_HTML,
        ),
        "/events" => serve_events(ring, stop, stream),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics, /stats, /dashboard\n",
        ),
    }
}

/// Read the request head (everything through the blank line) and return
/// `(method, path)`. `None` on malformed input, timeout, or disconnect.
fn read_request_head(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        // Header caps at 16 KiB: nothing legitimate is bigger here.
        if buf.len() > 16 * 1024 {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some((method, path))
}

/// Write one complete response and flush. Errors are ignored — the
/// client is gone and the thread is about to exit anyway.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// The `/events` SSE stream: headers, full backfill, then live ticks
/// until the client disconnects or the plane stops.
fn serve_events(ring: &Mutex<SnapshotRing<String>>, stop: &AtomicBool, mut stream: TcpStream) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-store\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut last_seq = None;
    loop {
        let fresh = ring.lock().unwrap().after(last_seq);
        for (seq, sample) in fresh {
            last_seq = Some(seq);
            let frame = format!("id: {seq}\ndata: {sample}\n\n");
            if stream.write_all(frame.as_bytes()).is_err() || stream.flush().is_err() {
                return;
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(POLL);
    }
}

/// Distill one stats-v2 snapshot into the dashboard's sample line.
/// `prev` carries `(uptime_s, requests_total, sheds_total)` from the
/// previous tick so rates are deltas, not lifetime averages.
fn dash_sample(stats: &Value, prev: &mut Option<(f64, f64, f64)>) -> String {
    let uptime_s = stats
        .get("uptime_ns")
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
        / 1e9;
    let reqs = sum_counter(stats, "serve_requests_total");
    let sheds = stats
        .get("deadline")
        .and_then(|d| d.get("shed"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let (rps, shed_rate) = match *prev {
        Some((t0, r0, s0)) if uptime_s > t0 => {
            let dt = uptime_s - t0;
            ((reqs - r0) / dt, (sheds - s0) / dt)
        }
        _ => (0.0, 0.0),
    };
    *prev = Some((uptime_s, reqs, sheds));

    let in_flight = stats
        .get("queue")
        .and_then(|q| q.get("in_flight"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let capacity = stats
        .get("queue")
        .and_then(|q| q.get("capacity"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let hit_ratio = stats
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let draining = stats
        .get("draining")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    let mut links = String::from("[");
    for (i, (link, util)) in link_gauges(stats).into_iter().enumerate() {
        if i > 0 {
            links.push(',');
        }
        links.push_str(&format!(
            "{{\"link\":{},\"util\":{util}}}",
            serde_json::to_string(&Value::from(link))
        ));
    }
    links.push(']');

    format!(
        "{{\"t\":{uptime_s:.3},\"reqs\":{reqs},\"rps\":{rps:.3},\
         \"in_flight\":{in_flight},\"capacity\":{capacity},\
         \"hit_ratio\":{hit_ratio:.4},\"sheds\":{sheds},\
         \"shed_rate\":{shed_rate:.3},\"draining\":{draining},\
         \"links\":{links}}}"
    )
}

/// Sum a counter family across its label sets in the stats snapshot's
/// embedded metrics section.
fn sum_counter(stats: &Value, name: &str) -> f64 {
    let Some(counters) = stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(Value::as_array)
    else {
        return 0.0;
    };
    counters
        .iter()
        .filter(|c| c.get("name").and_then(Value::as_str) == Some(name))
        .filter_map(|c| c.get("value").and_then(Value::as_f64))
        // fold, not sum: Sum's identity is -0.0, which JSON-renders "-0".
        .fold(0.0, |acc, v| acc + v)
}

/// `(link, mean_util)` pairs from the fabric-utilization gauges.
fn link_gauges(stats: &Value) -> Vec<(String, f64)> {
    let Some(gauges) = stats
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(Value::as_array)
    else {
        return Vec::new();
    };
    gauges
        .iter()
        .filter(|g| g.get("name").and_then(Value::as_str) == Some("serve_fabric_link_utilization"))
        .filter_map(|g| {
            let link = g.get("labels")?.get("link")?.as_str()?.to_string();
            let util = g.get("value")?.as_f64()?;
            Some((link, util))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeOptions, ServerCore};

    #[test]
    fn dash_sample_extracts_rates_and_links() {
        let core = ServerCore::new(ServeOptions {
            workers: 1,
            queue_depth: 2,
            ..ServeOptions::default()
        });
        // Two requests so serve_requests_total exists.
        core.handle_line(r#"{"op":"ping"}"#);
        core.handle_line(r#"{"op":"ping"}"#);
        let mut prev = None;
        let first = dash_sample(&core.stats_json(), &mut prev);
        let v = serde_json::from_str(&first).expect("sample is valid JSON");
        assert_eq!(v.get("reqs").and_then(Value::as_f64), Some(2.0));
        assert_eq!(
            v.get("rps").and_then(Value::as_f64),
            Some(0.0),
            "no prior tick"
        );
        assert!(v.get("links").and_then(Value::as_array).is_some());
        assert_eq!(v.get("draining").and_then(Value::as_bool), Some(false));
        // A later tick computes a positive request rate.
        core.handle_line(r#"{"op":"ping"}"#);
        std::thread::sleep(Duration::from_millis(20));
        let second = dash_sample(&core.stats_json(), &mut prev);
        let v = serde_json::from_str(&second).unwrap();
        assert!(v.get("rps").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn counter_sum_folds_label_sets() {
        let core = ServerCore::new(ServeOptions::default());
        core.handle_line(r#"{"op":"ping"}"#);
        core.handle_line(r#"{"op":"stats"}"#);
        core.handle_line("not json");
        let stats = core.stats_json();
        // ping + stats + parse error + this stats call = 4 by the time we
        // snapshot... the snapshot itself is not yet counted.
        assert_eq!(sum_counter(&stats, "serve_requests_total"), 3.0);
        assert_eq!(sum_counter(&stats, "no_such_counter"), 0.0);
    }

    #[test]
    fn plane_binds_and_reports_an_addr() {
        let core = Arc::new(ServerCore::new(ServeOptions::default()));
        let plane = HttpPlane::bind(Arc::clone(&core), "127.0.0.1:0").unwrap();
        let addr = plane.local_addr();
        assert_ne!(addr.port(), 0, "port 0 resolves at bind");
        let handle = plane.spawn();
        assert_eq!(handle.local_addr(), addr);
        handle.shutdown();
    }
}
