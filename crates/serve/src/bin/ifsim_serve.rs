//! `ifsim-serve` — the resident simulation daemon.
//!
//! ```text
//! ifsim-serve (--socket PATH | --tcp HOST:PORT) [OPTIONS]
//!
//!   --socket PATH      listen on a Unix domain socket (removed on exit)
//!   --tcp HOST:PORT    listen on TCP instead
//!   --workers N        concurrent experiment computations (default 4)
//!   --queue-depth M    admitted requests beyond the busy workers
//!                      (default 16); past workers+M the server answers
//!                      Overloaded (429) instead of queueing
//!   --cache-cap N      in-memory result-cache entries (default 256)
//!   --cache-dir DIR    persist results to a crash-safe on-disk cache;
//!                      recovered (and torn entries quarantined) at start
//!   --cache-bytes B    byte cap for the cache tiers (default 268435456)
//!   --request-timeout-ms T
//!                      hard per-request budget even without a client
//!                      deadline_ms; 0 disables (default 0)
//!   --trace-out FILE   write a Chrome trace of request lifecycles on exit
//!   --metrics-out FILE write the stats snapshot (JSON) on exit
//!   --http ADDR        serve the live observability plane on ADDR
//!                      (/metrics, /healthz, /readyz, /stats, /dashboard,
//!                      /events); port 0 picks a free port
//! ```
//!
//! The daemon exits on a `shutdown` request, SIGTERM, or SIGINT, draining
//! in-flight work first; a second signal skips the drain and exits with
//! code 130. Protocol details: `docs/SERVING.md`.

use ifsim_serve::{HttpPlane, ServeAddr, ServeOptions, Server};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    addr: ServeAddr,
    opts: ServeOptions,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    http: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ifsim-serve (--socket PATH | --tcp HOST:PORT) [--workers N] \
         [--queue-depth M] [--cache-cap N] [--cache-dir DIR] [--cache-bytes B] \
         [--request-timeout-ms T] [--trace-out FILE] [--metrics-out FILE] \
         [--http ADDR]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut addr: Option<ServeAddr> = None;
    let mut opts = ServeOptions::default();
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut http = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        let parse_num = |name: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| usage(&format!("{name} wants a number, got '{v}'")))
        };
        match a.as_str() {
            #[cfg(unix)]
            "--socket" => addr = Some(ServeAddr::Unix(PathBuf::from(next("--socket")))),
            #[cfg(not(unix))]
            "--socket" => usage("--socket requires a Unix platform; use --tcp"),
            "--tcp" => addr = Some(ServeAddr::Tcp(next("--tcp"))),
            "--workers" => {
                opts.workers = parse_num("--workers", next("--workers"));
                if opts.workers == 0 {
                    usage("--workers must be at least 1");
                }
            }
            "--queue-depth" => opts.queue_depth = parse_num("--queue-depth", next("--queue-depth")),
            "--cache-cap" => opts.cache_cap = parse_num("--cache-cap", next("--cache-cap")),
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(next("--cache-dir"))),
            "--cache-bytes" => {
                opts.cache_bytes = parse_num("--cache-bytes", next("--cache-bytes")) as u64;
                if opts.cache_bytes == 0 {
                    usage("--cache-bytes must be at least 1");
                }
            }
            "--request-timeout-ms" => {
                opts.request_timeout_ms =
                    parse_num("--request-timeout-ms", next("--request-timeout-ms")) as u64;
            }
            "--trace-out" => trace_out = Some(PathBuf::from(next("--trace-out"))),
            "--metrics-out" => metrics_out = Some(PathBuf::from(next("--metrics-out"))),
            "--http" => http = Some(next("--http")),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown option {other}")),
        }
    }
    let Some(addr) = addr else {
        usage("one of --socket or --tcp is required");
    };
    Args {
        addr,
        opts,
        trace_out,
        metrics_out,
        http,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut server = match Server::bind(args.addr.clone(), args.opts.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {:?}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    server.trace_out = args.trace_out;
    server.metrics_out = args.metrics_out;
    if let Some(http_addr) = &args.http {
        match HttpPlane::bind(server.core(), http_addr) {
            Ok(plane) => {
                println!("http listening on {}", plane.local_addr());
                server.http = Some(plane);
            }
            Err(e) => {
                eprintln!("cannot bind http {http_addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match &args.addr {
        #[cfg(unix)]
        ServeAddr::Unix(path) => println!("ifsim-serve listening on {}", path.display()),
        ServeAddr::Tcp(_) => {
            let local = server
                .local_tcp_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|| "?".into());
            println!("ifsim-serve listening on tcp {local}");
        }
    }
    println!(
        "workers {} · queue depth {} · cache capacity {}",
        args.opts.workers, args.opts.queue_depth, args.opts.cache_cap
    );
    if let Some(report) = &server.scan_report {
        println!(
            "cache recovered: {} entries ({} bytes), {} quarantined, \
             {} torn tmp files removed, {} evicted over cap",
            report.recovered, report.bytes, report.quarantined, report.removed_tmp, report.evicted
        );
    }
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        return ExitCode::FAILURE;
    }
    println!("ifsim-serve drained; bye");
    ExitCode::SUCCESS
}
