//! The content-addressed result cache.
//!
//! Keys are [`Experiment::config_digest`] values — a digest over the
//! experiment id plus every configuration constant — so two requests with
//! the same key are behaviourally identical (all simulator jitter derives
//! from the seed) and the cached artifacts are byte-for-byte the ones a
//! fresh compute would produce.
//!
//! The cache is two-level: an in-memory LRU map (entry- and byte-capped)
//! in front of an optional crash-safe [`DiskStore`]. A memory miss that
//! hits disk re-validates the entry's checksum, promotes it back into
//! memory, and counts as a (disk) hit, so a restarted daemon replays
//! byte-identical responses from its previous life. Eviction is LRU by
//! resident byte size, replacing the FIFO entry count of the first
//! serving iteration: sweep replays and chaos soaks hammer a small hot
//! set while cold digests churn, which is exactly the recency shape FIFO
//! throws away.
//!
//! [`Experiment::config_digest`]: ifsim_core::Experiment::config_digest

use crate::store::DiskStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One computed experiment, immutable once inserted.
#[derive(Debug)]
pub struct CachedRun {
    /// The configuration digest this run is stored under.
    pub digest: String,
    /// Rendered report (tables + check list).
    pub report: String,
    /// `(file name, contents)` CSV artifacts.
    pub csv: Vec<(String, String)>,
    /// Paper-shape checks passed.
    pub checks_passed: usize,
    /// Paper-shape checks total.
    pub checks_total: usize,
    /// Serialized critical-path report (`ifsim-critpath-v1` JSON), only
    /// on entries computed for analyze requests — those cache under a
    /// derived digest, so plain entries never carry it.
    pub critpath: Option<String>,
}

impl CachedRun {
    /// Approximate resident size: the strings dominate, the fixed fields
    /// are noise. Used for the in-memory byte cap.
    pub fn approx_bytes(&self) -> u64 {
        let csv: usize = self
            .csv
            .iter()
            .map(|(name, contents)| name.len() + contents.len())
            .sum();
        let critpath = self.critpath.as_ref().map_or(0, String::len);
        (self.digest.len() + self.report.len() + csv + critpath + 16) as u64
    }
}

/// Which tier answered a cache lookup — recorded on request spans so a
/// trace explains whether a hit was free (memory) or paid a disk read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from the in-memory LRU tier.
    Memory,
    /// Served from the persistent store (and promoted into memory).
    Disk,
    /// Not cached anywhere; the caller computes.
    Miss,
}

impl CacheTier {
    /// Short label used in span args and phase breakdowns.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTier::Memory => "mem",
            CacheTier::Disk => "disk",
            CacheTier::Miss => "miss",
        }
    }
}

struct Inner {
    map: HashMap<String, Arc<CachedRun>>,
    /// Recency order, least recently used first.
    lru: Vec<String>,
    bytes: u64,
}

impl Inner {
    fn touch(&mut self, digest: &str) {
        if let Some(pos) = self.lru.iter().position(|d| d == digest) {
            let d = self.lru.remove(pos);
            self.lru.push(d);
        }
    }
}

/// A bounded, thread-safe digest → result map with hit/miss accounting
/// and optional persistent backing.
pub struct ResultCache {
    inner: Mutex<Inner>,
    store: Option<DiskStore>,
    capacity: usize,
    bytes_cap: u64,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A memory-only cache holding at most `capacity` results (clamped to
    /// ≥ 1) with an effectively unbounded byte cap.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_limits(capacity, u64::MAX, None)
    }

    /// A cache bounded by `capacity` entries *and* `bytes_cap` resident
    /// bytes in memory, optionally backed by a persistent `store` (whose
    /// own byte cap was fixed at [`DiskStore::open`] time).
    pub fn with_limits(capacity: usize, bytes_cap: u64, store: Option<DiskStore>) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: Vec::new(),
                bytes: 0,
            }),
            store,
            capacity: capacity.max(1),
            bytes_cap: bytes_cap.max(1),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a digest, counting the hit or miss. Falls through to the
    /// persistent store on a memory miss, promoting disk hits back into
    /// the memory tier.
    pub fn get(&self, digest: &str) -> Option<Arc<CachedRun>> {
        self.get_traced(digest).0
    }

    /// [`ResultCache::get`], also reporting which tier answered — for
    /// request-scoped tracing.
    pub fn get_traced(&self, digest: &str) -> (Option<Arc<CachedRun>>, CacheTier) {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(run) = inner.map.get(digest).cloned() {
                inner.touch(digest);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Some(run), CacheTier::Memory);
            }
        }
        if let Some(run) = self.store.as_ref().and_then(|s| s.get(digest)) {
            let run = Arc::new(run);
            self.insert_mem(Arc::clone(&run));
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return (Some(run), CacheTier::Disk);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        (None, CacheTier::Miss)
    }

    /// Insert into the memory tier only, evicting LRU entries past either
    /// cap. A concurrent duplicate (two misses racing on one digest)
    /// keeps the first insertion so outstanding `Arc`s stay coherent.
    fn insert_mem(&self, run: Arc<CachedRun>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.contains_key(&run.digest) {
            return;
        }
        inner.bytes += run.approx_bytes();
        inner.lru.push(run.digest.clone());
        inner.map.insert(run.digest.clone(), run);
        while (inner.map.len() > self.capacity || inner.bytes > self.bytes_cap)
            && inner.lru.len() > 1
        {
            let oldest = inner.lru.remove(0);
            if let Some(run) = inner.map.remove(&oldest) {
                inner.bytes -= run.approx_bytes();
            }
        }
    }

    /// Insert a computed run into memory and (when configured) the
    /// persistent store. Disk write failures are reported, not fatal: the
    /// daemon keeps serving from memory.
    pub fn insert(&self, run: Arc<CachedRun>) {
        self.insert_mem(Arc::clone(&run));
        if let Some(store) = &self.store {
            if let Err(e) = store.put(&run) {
                eprintln!(
                    "ifsim-serve: cache write for {} failed: {e} (serving from memory)",
                    run.digest
                );
            }
        }
    }

    /// Number of entries resident in memory.
    pub fn entries(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Approximate bytes resident in memory.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap().bytes
    }

    /// Lookups served from cache since startup (memory + disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The subset of [`ResultCache::hits`] served from the disk tier.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }

    /// Maximum entries resident in memory.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum bytes resident in memory.
    pub fn bytes_cap(&self) -> u64 {
        self.bytes_cap
    }

    /// The persistent tier, when configured.
    pub fn store(&self) -> Option<&DiskStore> {
        self.store.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(digest: &str) -> Arc<CachedRun> {
        Arc::new(CachedRun {
            digest: digest.to_string(),
            report: format!("report {digest}"),
            csv: vec![],
            checks_passed: 1,
            checks_total: 1,
            critpath: None,
        })
    }

    #[test]
    fn traced_lookup_reports_the_answering_tier() {
        let c = ResultCache::new(8);
        assert_eq!(c.get_traced("a").1, CacheTier::Miss);
        c.insert(run("a"));
        assert_eq!(c.get_traced("a").1, CacheTier::Memory);
        assert_eq!(CacheTier::Memory.as_str(), "mem");
        assert_eq!(CacheTier::Disk.as_str(), "disk");
        assert_eq!(CacheTier::Miss.as_str(), "miss");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = ResultCache::new(8);
        assert!(c.get("a").is_none());
        c.insert(run("a"));
        assert_eq!(c.get("a").unwrap().report, "report a");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.disk_hits(), 0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.entries(), 1);
        assert!(c.bytes() > 0);
    }

    #[test]
    fn lru_eviction_at_entry_capacity() {
        let c = ResultCache::new(2);
        c.insert(run("a"));
        c.insert(run("b"));
        assert!(c.get("a").is_some(), "refresh a's recency");
        c.insert(run("c"));
        assert_eq!(c.entries(), 2);
        assert!(c.get("b").is_none(), "least recently used evicted");
        assert!(c.get("a").is_some(), "recently touched survives");
        assert!(c.get("c").is_some());
    }

    #[test]
    fn byte_cap_evicts_before_entry_cap() {
        let per_entry = run("a").approx_bytes();
        let c = ResultCache::with_limits(100, per_entry * 2 + 1, None);
        c.insert(run("a"));
        c.insert(run("b"));
        c.insert(run("c"));
        assert_eq!(c.entries(), 2, "byte cap holds two entries");
        assert!(c.bytes() <= c.bytes_cap());
        assert!(c.get("a").is_none(), "oldest evicted");
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let c = ResultCache::new(4);
        c.insert(run("a"));
        let first = c.get("a").unwrap();
        c.insert(Arc::new(CachedRun {
            digest: "a".into(),
            report: "different".into(),
            csv: vec![],
            checks_passed: 0,
            checks_total: 0,
            critpath: None,
        }));
        assert!(Arc::ptr_eq(&first, &c.get("a").unwrap()));
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = ResultCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(run("a"));
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn disk_backing_promotes_and_survives_memory_eviction() {
        let dir = std::env::temp_dir().join(format!(
            "ifsim-cache-promote-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = DiskStore::open(&dir, 1 << 20).unwrap();
        let c = ResultCache::with_limits(1, u64::MAX, Some(store));
        c.insert(run("a"));
        c.insert(run("b")); // memory holds only "b" now; disk holds both
        assert_eq!(c.entries(), 1);
        let (got, tier) = c.get_traced("a");
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(got.expect("served from the disk tier").report, "report a");
        assert_eq!(c.disk_hits(), 1);
        assert_eq!(c.hits(), 1);
        // The promotion makes the next lookup a memory hit.
        assert_eq!(c.get_traced("a").1, CacheTier::Memory);
        assert_eq!(c.disk_hits(), 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.store().unwrap().entries(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
