//! The content-addressed result cache.
//!
//! Keys are [`Experiment::config_digest`] values — a digest over the
//! experiment id plus every configuration constant — so two requests with
//! the same key are behaviourally identical (all simulator jitter derives
//! from the seed) and the cached artifacts are byte-for-byte the ones a
//! fresh compute would produce. Eviction is FIFO at a fixed capacity:
//! sweep replays touch each key a handful of times in submission order,
//! so recency tracking buys nothing over insertion order here.
//!
//! [`Experiment::config_digest`]: ifsim_core::Experiment::config_digest

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One computed experiment, immutable once inserted.
#[derive(Debug)]
pub struct CachedRun {
    /// The configuration digest this run is stored under.
    pub digest: String,
    /// Rendered report (tables + check list).
    pub report: String,
    /// `(file name, contents)` CSV artifacts.
    pub csv: Vec<(String, String)>,
    /// Paper-shape checks passed.
    pub checks_passed: usize,
    /// Paper-shape checks total.
    pub checks_total: usize,
}

struct Inner {
    map: HashMap<String, Arc<CachedRun>>,
    /// Insertion order, oldest first.
    order: VecDeque<String>,
}

/// A bounded, thread-safe digest → result map with hit/miss accounting.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (clamped to ≥ 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a digest, counting the hit or miss.
    pub fn get(&self, digest: &str) -> Option<Arc<CachedRun>> {
        let found = self.inner.lock().unwrap().map.get(digest).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a computed run, evicting the oldest entry past capacity.
    /// A concurrent duplicate (two misses racing on one digest) keeps the
    /// first insertion so outstanding `Arc`s stay coherent.
    pub fn insert(&self, run: Arc<CachedRun>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.contains_key(&run.digest) {
            return;
        }
        inner.order.push_back(run.digest.clone());
        inner.map.insert(run.digest.clone(), run);
        while inner.map.len() > self.capacity {
            let oldest = inner
                .order
                .pop_front()
                .expect("order tracks every map entry");
            inner.map.remove(&oldest);
        }
    }

    /// Number of resident entries.
    pub fn entries(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Lookups served from cache since startup.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(digest: &str) -> Arc<CachedRun> {
        Arc::new(CachedRun {
            digest: digest.to_string(),
            report: format!("report {digest}"),
            csv: vec![],
            checks_passed: 1,
            checks_total: 1,
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = ResultCache::new(8);
        assert!(c.get("a").is_none());
        c.insert(run("a"));
        assert_eq!(c.get("a").unwrap().report, "report a");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let c = ResultCache::new(2);
        c.insert(run("a"));
        c.insert(run("b"));
        c.insert(run("c"));
        assert_eq!(c.entries(), 2);
        assert!(c.get("a").is_none(), "oldest evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let c = ResultCache::new(4);
        c.insert(run("a"));
        let first = c.get("a").unwrap();
        c.insert(Arc::new(CachedRun {
            digest: "a".into(),
            report: "different".into(),
            csv: vec![],
            checks_passed: 0,
            checks_total: 0,
        }));
        assert!(Arc::ptr_eq(&first, &c.get("a").unwrap()));
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = ResultCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(run("a"));
        assert_eq!(c.entries(), 1);
    }
}
