//! Crash-safe persistent backing for the result cache.
//!
//! Every cached run is one digest-named file under the store directory:
//!
//! ```text
//! ifsim-cache-entry-v1 <digest> <payload-len> <fnv128-checksum>\n
//! <payload: the run as one JSON object>
//! ```
//!
//! Writes are crash-safe by construction: the entry is first written to a
//! `tmp-*` file in the same directory, flushed with `fsync`, atomically
//! renamed onto its digest name, and the directory itself is fsynced so
//! the rename survives a power cut. A `kill -9` mid-write therefore
//! leaves either the complete old state or a stray `tmp-*` file that the
//! next startup scan deletes — never a half-written entry under a live
//! digest name.
//!
//! The startup scan validates every entry (header shape, digest/filename
//! agreement, payload length, checksum, JSON decode). Anything that fails
//! — a torn write that somehow reached the final name, a bit-flip, a
//! truncation — is moved into the `quarantine/` subdirectory for
//! post-mortem inspection and the digest is recomputed on next request
//! instead of served corrupt. The same validation runs on every read, so
//! corruption that appears *after* startup is also quarantined, not
//! served.
//!
//! Capacity is a byte cap over the sum of entry file sizes, evicted in
//! least-recently-*written* order on startup and least-recently-*used*
//! order while the store is live.

use crate::cache::CachedRun;
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// First header token of every entry file; bump on layout changes so old
/// daemons never misread new entries (a version mismatch quarantines).
pub const ENTRY_MAGIC: &str = "ifsim-cache-entry-v1";

/// Subdirectory corrupt entries are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Prefix of in-progress write files (deleted by the startup scan).
const TMP_PREFIX: &str = "tmp-";

/// What the startup scan found in an existing cache directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Valid entries recovered into the index.
    pub recovered: usize,
    /// Corrupt entries moved to `quarantine/`.
    pub quarantined: usize,
    /// Abandoned `tmp-*` files (crash mid-write) deleted.
    pub removed_tmp: usize,
    /// Entries evicted because the directory exceeded the byte cap.
    pub evicted: usize,
    /// Total bytes of recovered entries after eviction.
    pub bytes: u64,
}

struct DiskState {
    /// digest → entry file size in bytes.
    index: HashMap<String, u64>,
    /// Recency order, least recently used first.
    lru: Vec<String>,
    total_bytes: u64,
    tmp_seq: u64,
    quarantine_seq: u64,
}

impl DiskState {
    fn touch(&mut self, digest: &str) {
        if let Some(pos) = self.lru.iter().position(|d| d == digest) {
            let d = self.lru.remove(pos);
            self.lru.push(d);
        }
    }

    fn remove(&mut self, digest: &str) -> Option<u64> {
        let size = self.index.remove(digest)?;
        if let Some(pos) = self.lru.iter().position(|d| d == digest) {
            self.lru.remove(pos);
        }
        self.total_bytes -= size;
        Some(size)
    }
}

/// A digest-addressed directory of checksummed entry files with
/// crash-safe writes, corruption quarantine, and an LRU byte cap.
pub struct DiskStore {
    dir: PathBuf,
    bytes_cap: u64,
    state: Mutex<DiskState>,
    quarantined: AtomicU64,
}

impl DiskStore {
    /// Open (creating if needed) the store at `dir`, scan and validate
    /// every resident entry, quarantine corrupt ones, delete abandoned
    /// tmp files, and evict down to `bytes_cap` (clamped to ≥ 1).
    pub fn open(
        dir: impl Into<PathBuf>,
        bytes_cap: u64,
    ) -> std::io::Result<(DiskStore, ScanReport)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = DiskStore {
            dir,
            bytes_cap: bytes_cap.max(1),
            state: Mutex::new(DiskState {
                index: HashMap::new(),
                lru: Vec::new(),
                total_bytes: 0,
                tmp_seq: 0,
                quarantine_seq: 0,
            }),
            quarantined: AtomicU64::new(0),
        };
        let report = store.scan()?;
        Ok((store, report))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Validate the directory contents and build the index. Valid entries
    /// enter the LRU in modification-time order (oldest first), the best
    /// recency approximation that survives a restart.
    fn scan(&self) -> std::io::Result<ScanReport> {
        let mut report = ScanReport::default();
        let mut found: Vec<(std::time::SystemTime, String, u64)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                continue; // quarantine/ and anything else foreign
            }
            if name.starts_with(TMP_PREFIX) {
                // A crash mid-write: the rename never happened, so the
                // digest still maps to its previous (complete) state.
                let _ = fs::remove_file(&path);
                report.removed_tmp += 1;
                continue;
            }
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => continue,
            };
            match decode_entry(&bytes, &name) {
                Ok(_) => {
                    let mtime = entry
                        .metadata()
                        .and_then(|m| m.modified())
                        .unwrap_or(std::time::UNIX_EPOCH);
                    found.push((mtime, name, bytes.len() as u64));
                }
                Err(_) => {
                    self.quarantine_file(&path, &name);
                    report.quarantined += 1;
                }
            }
        }
        found.sort();
        let mut state = self.state.lock().unwrap();
        for (_, digest, size) in found {
            state.total_bytes += size;
            state.index.insert(digest.clone(), size);
            state.lru.push(digest);
            report.recovered += 1;
        }
        // A shrunken cap (or an over-full directory) evicts oldest-first.
        while state.total_bytes > self.bytes_cap && state.lru.len() > 1 {
            let oldest = state.lru[0].clone();
            state.remove(&oldest);
            let _ = fs::remove_file(self.dir.join(&oldest));
            report.evicted += 1;
            report.recovered -= 1;
        }
        report.bytes = state.total_bytes;
        Ok(report)
    }

    /// Move a corrupt file into `quarantine/`, never deleting evidence.
    fn quarantine_file(&self, path: &Path, name: &str) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        let seq = {
            let mut state = self.state.lock().unwrap();
            state.quarantine_seq += 1;
            state.quarantine_seq
        };
        let dest = qdir.join(format!("{name}.{seq}"));
        if fs::rename(path, &dest).is_err() {
            // Cross-checks failed *and* the move failed: delete rather
            // than risk re-serving the corrupt bytes forever.
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::SeqCst);
    }

    /// Look up one digest, validating the entry end-to-end. A corrupt
    /// entry is quarantined and reported as a miss.
    pub fn get(&self, digest: &str) -> Option<CachedRun> {
        {
            let state = self.state.lock().unwrap();
            if !state.index.contains_key(digest) {
                return None;
            }
        }
        let path = self.dir.join(digest);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.state.lock().unwrap().remove(digest);
                return None;
            }
        };
        match decode_entry(&bytes, digest) {
            Ok(run) => {
                self.state.lock().unwrap().touch(digest);
                Some(run)
            }
            Err(_) => {
                self.state.lock().unwrap().remove(digest);
                self.quarantine_file(&path, digest);
                None
            }
        }
    }

    /// Whether `digest` is resident (no validation, index only).
    pub fn contains(&self, digest: &str) -> bool {
        self.state.lock().unwrap().index.contains_key(digest)
    }

    /// Persist one run crash-safely: tmp file → fsync → atomic rename →
    /// directory fsync, then evict least-recently-used entries past the
    /// byte cap. A digest already resident is kept as-is (first write
    /// wins, matching the in-memory cache).
    pub fn put(&self, run: &CachedRun) -> std::io::Result<()> {
        if self.contains(&run.digest) {
            return Ok(());
        }
        let bytes = encode_entry(run);
        let tmp = {
            let mut state = self.state.lock().unwrap();
            state.tmp_seq += 1;
            self.dir.join(format!(
                "{TMP_PREFIX}{}-{}",
                std::process::id(),
                state.tmp_seq
            ))
        };
        let final_path = self.dir.join(&run.digest);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, &final_path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Persist the rename itself: fsync the containing directory.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let evict: Vec<String> = {
            let mut state = self.state.lock().unwrap();
            let size = bytes.len() as u64;
            state.total_bytes += size;
            state.index.insert(run.digest.clone(), size);
            state.lru.push(run.digest.clone());
            let mut evict = Vec::new();
            while state.total_bytes > self.bytes_cap && state.lru.len() > 1 {
                let oldest = state.lru[0].clone();
                state.remove(&oldest);
                evict.push(oldest);
            }
            evict
        };
        for digest in evict {
            let _ = fs::remove_file(self.dir.join(digest));
        }
        Ok(())
    }

    /// Number of resident entries.
    pub fn entries(&self) -> usize {
        self.state.lock().unwrap().index.len()
    }

    /// Sum of resident entry file sizes.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().unwrap().total_bytes
    }

    /// The byte cap eviction holds the store under.
    pub fn bytes_cap(&self) -> u64 {
        self.bytes_cap
    }

    /// Entries this process has quarantined (startup scan + runtime reads).
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined.load(Ordering::SeqCst)
    }
}

/// 128-bit dual-stream FNV-1a over raw bytes, as 32 hex characters — the
/// entry checksum (same construction as `Experiment::config_digest`).
pub fn fnv128_hex(bytes: &[u8]) -> String {
    const PRIME: u64 = 0x100000001b3;
    let mut h1: u64 = 0xcbf29ce484222325;
    let mut h2: u64 = h1 ^ 0x9e3779b97f4a7c15;
    for &b in bytes {
        h1 = (h1 ^ u64::from(b)).wrapping_mul(PRIME);
        h2 = (h2 ^ u64::from(b)).wrapping_mul(PRIME);
    }
    format!("{h1:016x}{h2:016x}")
}

/// Serialize one run to its on-disk entry bytes (header + JSON payload).
/// Public so the chaos harness and the torn-write property tests can
/// construct byte-exact (and deliberately damaged) entries.
pub fn encode_entry(run: &CachedRun) -> Vec<u8> {
    let mut payload = Map::new();
    payload.insert("digest", Value::from(run.digest.clone()));
    payload.insert("report", Value::from(run.report.clone()));
    payload.insert(
        "csv",
        Value::Array(
            run.csv
                .iter()
                .map(|(name, contents)| {
                    let mut f = Map::new();
                    f.insert("name", Value::from(name.clone()));
                    f.insert("contents", Value::from(contents.clone()));
                    Value::Object(f)
                })
                .collect(),
        ),
    );
    payload.insert("checks_passed", Value::from(run.checks_passed));
    payload.insert("checks_total", Value::from(run.checks_total));
    if let Some(critpath) = &run.critpath {
        payload.insert("critpath", Value::from(critpath.clone()));
    }
    let payload = serde_json::to_string(&Value::Object(payload));
    let header = format!(
        "{ENTRY_MAGIC} {} {} {}\n",
        run.digest,
        payload.len(),
        fnv128_hex(payload.as_bytes())
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Parse and validate entry bytes against the digest they are filed
/// under. Every failure mode maps to a reason string (and, in the store,
/// to quarantine).
pub fn decode_entry(bytes: &[u8], expected_digest: &str) -> Result<CachedRun, String> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("no header line")?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| "header is not UTF-8")?;
    let mut parts = header.split(' ');
    match parts.next() {
        Some(ENTRY_MAGIC) => {}
        other => return Err(format!("bad magic {other:?}")),
    }
    let digest = parts.next().ok_or("header missing digest")?;
    if digest != expected_digest {
        return Err(format!(
            "entry digest '{digest}' does not match file name '{expected_digest}'"
        ));
    }
    let len: usize = parts
        .next()
        .ok_or("header missing length")?
        .parse()
        .map_err(|_| "bad length field")?;
    let sum = parts.next().ok_or("header missing checksum")?;
    if parts.next().is_some() {
        return Err("trailing header fields".into());
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(format!(
            "payload is {} bytes, header promises {len} (torn write?)",
            payload.len()
        ));
    }
    if fnv128_hex(payload) != sum {
        return Err("checksum mismatch".into());
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8")?;
    let v: Value = serde_json::from_str(payload).map_err(|e| format!("payload JSON: {e}"))?;
    let str_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("payload missing string '{name}'"))
    };
    let count_field = |name: &str| -> Result<usize, String> {
        v.get(name)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("payload missing count '{name}'"))
    };
    let run_digest = str_field("digest")?;
    if run_digest != expected_digest {
        return Err("payload digest does not match file name".into());
    }
    let mut csv = Vec::new();
    for f in v
        .get("csv")
        .and_then(Value::as_array)
        .ok_or("payload missing csv array")?
    {
        let name = f
            .get("name")
            .and_then(Value::as_str)
            .ok_or("csv entry missing name")?;
        let contents = f
            .get("contents")
            .and_then(Value::as_str)
            .ok_or("csv entry missing contents")?;
        csv.push((name.to_string(), contents.to_string()));
    }
    Ok(CachedRun {
        digest: run_digest,
        report: str_field("report")?,
        csv,
        checks_passed: count_field("checks_passed")?,
        checks_total: count_field("checks_total")?,
        critpath: v
            .get("critpath")
            .and_then(Value::as_str)
            .map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(digest: &str, payload: &str) -> CachedRun {
        CachedRun {
            digest: digest.to_string(),
            report: format!("report {payload}\nwith \"quotes\" and π"),
            csv: vec![(format!("{payload}.csv"), format!("a,b\n1,{payload}\n"))],
            checks_passed: 3,
            checks_total: 4,
            critpath: Some(format!(
                "{{\"schema\":\"ifsim-critpath-v1\",\"tag\":\"{payload}\"}}"
            )),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ifsim-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entry_bytes_round_trip() {
        let r = run("d1", "alpha");
        let bytes = encode_entry(&r);
        let back = decode_entry(&bytes, "d1").unwrap();
        assert_eq!(back.digest, r.digest);
        assert_eq!(back.report, r.report);
        assert_eq!(back.csv, r.csv);
        assert_eq!(back.checks_passed, 3);
        assert_eq!(back.checks_total, 4);
        assert!(decode_entry(&bytes, "other").is_err(), "filename mismatch");
        assert!(
            decode_entry(&bytes[..bytes.len() - 1], "d1").is_err(),
            "truncation"
        );
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x20;
        assert!(decode_entry(&flipped, "d1").is_err(), "bit flip");
    }

    #[test]
    fn put_get_survive_reopen() {
        let dir = tmpdir("reopen");
        let (store, report) = DiskStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(report, ScanReport::default());
        store.put(&run("aaaa", "one")).unwrap();
        store.put(&run("bbbb", "two")).unwrap();
        assert_eq!(store.entries(), 2);
        drop(store);

        let (store, report) = DiskStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(report.recovered, 2);
        assert_eq!(report.quarantined, 0);
        let got = store.get("aaaa").unwrap();
        assert_eq!(got.report, run("aaaa", "one").report);
        assert!(store.get("cccc").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_on_scan_and_read() {
        let dir = tmpdir("corrupt");
        let (store, _) = DiskStore::open(&dir, 1 << 20).unwrap();
        store.put(&run("aaaa", "one")).unwrap();
        store.put(&run("bbbb", "two")).unwrap();
        store.put(&run("cccc", "three")).unwrap();
        drop(store);

        // Truncate one entry, bit-flip another, leave a stray tmp file.
        let a = fs::read(dir.join("aaaa")).unwrap();
        fs::write(dir.join("aaaa"), &a[..a.len() / 2]).unwrap();
        let mut b = fs::read(dir.join("bbbb")).unwrap();
        let mid = b.len() / 2;
        b[mid] ^= 0x01;
        fs::write(dir.join("bbbb"), &b).unwrap();
        fs::write(dir.join("tmp-999-1"), b"half a write").unwrap();

        let (store, report) = DiskStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(report.recovered, 1);
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.removed_tmp, 1);
        assert_eq!(store.quarantined_total(), 2);
        assert!(store.get("aaaa").is_none());
        assert!(store.get("bbbb").is_none());
        assert!(store.get("cccc").is_some());
        let qdir = dir.join(QUARANTINE_DIR);
        assert_eq!(fs::read_dir(&qdir).unwrap().count(), 2, "evidence kept");

        // Corruption appearing after startup is caught at read time too.
        let c = fs::read(dir.join("cccc")).unwrap();
        fs::write(dir.join("cccc"), &c[..c.len() - 3]).unwrap();
        assert!(store.get("cccc").is_none());
        assert_eq!(store.quarantined_total(), 3);
        assert_eq!(store.entries(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_evicts_least_recently_used() {
        let dir = tmpdir("lru");
        let one = encode_entry(&run("aaaa", "one")).len() as u64;
        // Room for two entries of this shape, not three.
        let (store, _) = DiskStore::open(&dir, one * 2 + one / 2).unwrap();
        store.put(&run("aaaa", "one")).unwrap();
        store.put(&run("bbbb", "two")).unwrap();
        assert!(store.get("aaaa").is_some(), "touch refreshes recency");
        store.put(&run("cccc", "thr")).unwrap();
        assert_eq!(store.entries(), 2);
        assert!(store.contains("aaaa"), "recently used survives");
        assert!(!store.contains("bbbb"), "LRU victim evicted");
        assert!(store.contains("cccc"));
        assert!(store.total_bytes() <= store.bytes_cap());
        let _ = fs::remove_dir_all(&dir);
    }
}
