//! Client-side connection helpers: one blocking request/response pair
//! per call over a Unix-socket or TCP stream. `ifsim-client` and
//! `ifsim-loadgen` (in `ifsim-bench`) and the serve tests all sit on
//! this.

use crate::proto::{self, Request, RunRequest, RunResponse};
use serde_json::Value;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where to reach a server (mirrors `ServeAddr` on the other side).
#[derive(Clone, Debug)]
pub enum ClientAddr {
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP `host:port` address.
    Tcp(String),
}

enum StreamKind {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            StreamKind::Unix(s) => s.read(buf),
            StreamKind::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            StreamKind::Unix(s) => s.write(buf),
            StreamKind::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            StreamKind::Unix(s) => s.flush(),
            StreamKind::Tcp(s) => s.flush(),
        }
    }
}

/// One open connection; requests are serialized over it in order.
pub struct Connection {
    reader: BufReader<StreamKind>,
    writer: BufWriter<StreamKind>,
}

impl Connection {
    /// Connect to a serving `addr`.
    pub fn connect(addr: &ClientAddr) -> std::io::Result<Connection> {
        let (read_half, write_half) = match addr {
            #[cfg(unix)]
            ClientAddr::Unix(path) => {
                let s = UnixStream::connect(path)?;
                let w = s.try_clone()?;
                (StreamKind::Unix(s), StreamKind::Unix(w))
            }
            ClientAddr::Tcp(host) => {
                let s = TcpStream::connect(host.as_str())?;
                let w = s.try_clone()?;
                (StreamKind::Tcp(s), StreamKind::Tcp(w))
            }
        };
        Ok(Connection {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(write_half),
        })
    }

    /// Send one raw JSON value, read one JSON line back.
    pub fn request_value(&mut self, v: &Value) -> Result<Value, String> {
        let mut line = serde_json::to_string(v);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        serde_json::from_str(response.trim()).map_err(|e| format!("bad response JSON: {e}"))
    }

    /// Submit a run request.
    pub fn run(&mut self, req: &RunRequest) -> Result<RunResponse, String> {
        let v = self.request_value(&req.to_json())?;
        RunResponse::from_json(&v)
    }

    /// Liveness probe; `Ok` when the server answered with status ok.
    pub fn ping(&mut self) -> Result<(), String> {
        let v = self.request_value(&proto::request_to_json(&Request::Ping))?;
        match v.get("status").and_then(Value::as_str) {
            Some("ok") => Ok(()),
            other => Err(format!("unexpected ping status: {other:?}")),
        }
    }

    /// Fetch the stats snapshot (`ifsim-serve-stats-v2`).
    pub fn stats(&mut self) -> Result<Value, String> {
        self.request_value(&proto::request_to_json(&Request::Stats))
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Value, String> {
        self.request_value(&proto::request_to_json(&Request::Shutdown))
    }
}
