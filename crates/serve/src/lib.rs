#![warn(missing_docs)]

//! # ifsim-serve — the resident simulation service
//!
//! One-shot CLIs (`repro`, `mgpu-bench`) pay process startup, topology
//! construction, and calibration load on every invocation. This crate
//! keeps all of that resident in a long-running daemon and serves
//! experiment requests over a newline-delimited JSON protocol on a Unix
//! socket or TCP — std-only, on the vendored `serde_json` and
//! `threadpool` shims.
//!
//! The moving parts:
//!
//! - [`proto`] — the wire protocol: [`RunRequest`] → [`RunResponse`]
//!   plus `ping` / `stats` / `shutdown` ops;
//! - [`cache`] — a content-addressed, two-tier [`ResultCache`] keyed by
//!   `Experiment::config_digest`: an in-memory LRU in front of the
//!   optional persistent tier;
//! - [`store`] — the crash-safe [`DiskStore`]: checksummed entry files
//!   written tmp-file → fsync → atomic rename, with a startup recovery
//!   scan that quarantines anything torn or corrupt;
//! - [`server`] — [`ServerCore`] (transport-independent request
//!   handling, single-flight coalescing, per-request deadlines with
//!   cooperative cancellation, admission control with an explicit
//!   `Overloaded` answer at capacity, self-observation via
//!   `ifsim-telemetry`) and [`Server`] (the socket host with graceful
//!   SIGTERM/SIGINT drain — a second signal forces exit);
//! - [`client`] — a blocking [`Connection`] used by `ifsim-client`,
//!   `ifsim-loadgen`, `ifsim-chaos`, and the tests;
//! - [`http`] — the live observability plane ([`HttpPlane`]): a
//!   dependency-free HTTP/1.1 listener serving `/metrics` (Prometheus
//!   text with trace-id exemplars), `/healthz`, `/readyz` (flips during
//!   drain), `/stats`, `/dashboard` (single-file HTML), and `/events`
//!   (1 Hz SSE snapshot stream with ~5 min backfill).
//!
//! Protocol, cache semantics, overload behaviour, crash recovery, and
//! deadline semantics are documented in `docs/SERVING.md` at the
//! repository root.

pub mod cache;
pub mod client;
pub mod http;
pub mod proto;
pub mod server;
pub mod store;

pub use cache::{CacheTier, CachedRun, ResultCache};
pub use client::{ClientAddr, Connection};
pub use http::HttpPlane;
pub use proto::{ConfigOverrides, FieldError, Request, RunRequest, RunResponse, Status};
pub use server::{ServeAddr, ServeOptions, Server, ServerCore, STATS_SCHEMA};
pub use store::{DiskStore, ScanReport};
