#![warn(missing_docs)]

//! # ifsim-serve — the resident simulation service
//!
//! One-shot CLIs (`repro`, `mgpu-bench`) pay process startup, topology
//! construction, and calibration load on every invocation. This crate
//! keeps all of that resident in a long-running daemon and serves
//! experiment requests over a newline-delimited JSON protocol on a Unix
//! socket or TCP — std-only, on the vendored `serde_json` and
//! `threadpool` shims.
//!
//! The moving parts:
//!
//! - [`proto`] — the wire protocol: [`RunRequest`] → [`RunResponse`]
//!   plus `ping` / `stats` / `shutdown` ops;
//! - [`cache`] — a content-addressed [`ResultCache`] keyed by
//!   `Experiment::config_digest`, with hit/miss counters;
//! - [`server`] — [`ServerCore`] (transport-independent request
//!   handling, admission control with an explicit `Overloaded` answer at
//!   capacity, self-observation via `ifsim-telemetry`) and [`Server`]
//!   (the socket host with graceful SIGTERM drain);
//! - [`client`] — a blocking [`Connection`] used by `ifsim-client`,
//!   `ifsim-loadgen`, and the tests.
//!
//! Protocol, cache semantics, and overload behaviour are documented in
//! `docs/SERVING.md` at the repository root.

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::{CachedRun, ResultCache};
pub use client::{ClientAddr, Connection};
pub use proto::{ConfigOverrides, Request, RunRequest, RunResponse, Status};
pub use server::{ServeAddr, ServeOptions, Server, ServerCore, STATS_SCHEMA};
