//! End-to-end tests for the observability plane: raw HTTP/1.1 against a
//! spawned [`HttpPlane`], cross-checked with the core's own stats.

use ifsim_serve::{HttpPlane, ServeOptions, ServerCore};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn quick_core() -> Arc<ServerCore> {
    Arc::new(ServerCore::new(ServeOptions {
        workers: 2,
        queue_depth: 4,
        ..ServeOptions::default()
    }))
}

/// One GET, full response read to EOF (the plane closes after a
/// response). Returns (status-line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Sum every `serve_requests_total` sample in a Prometheus exposition.
fn prom_requests_total(text: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with("serve_requests_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

/// Sum the same counter family in a stats-v2 snapshot.
fn stats_requests_total(stats: &Value) -> f64 {
    stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(Value::as_array)
        .map(|counters| {
            counters
                .iter()
                .filter(|c| c.get("name").and_then(Value::as_str) == Some("serve_requests_total"))
                .filter_map(|c| c.get("value").and_then(Value::as_f64))
                .sum()
        })
        .unwrap_or(0.0)
}

#[test]
fn metrics_are_monotone_across_a_burst_and_match_stats() {
    let core = quick_core();
    let handle = HttpPlane::bind(Arc::clone(&core), "127.0.0.1:0")
        .unwrap()
        .spawn();
    let addr = handle.local_addr();

    core.handle_line(r#"{"op":"ping"}"#);
    let (status, before) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let before_total = prom_requests_total(&before);
    assert!(before_total >= 1.0, "ping counted: {before}");

    // A burst of requests, then scrape again: strictly more requests.
    for _ in 0..5 {
        core.handle_line(r#"{"op":"ping"}"#);
    }
    core.handle_line(r#"{"op":"stats"}"#);
    let (_, after) = http_get(addr, "/metrics");
    let after_total = prom_requests_total(&after);
    assert!(
        after_total >= before_total + 6.0,
        "counters are cumulative: {before_total} → {after_total}"
    );

    // The exposition and the stats snapshot agree on the total.
    let (status, stats_body) = http_get(addr, "/stats");
    assert!(status.contains("200"), "{status}");
    let stats = serde_json::from_str(&stats_body).expect("stats endpoint serves JSON");
    assert_eq!(
        stats.get("schema").and_then(Value::as_str),
        Some("ifsim-serve-stats-v2")
    );
    // /stats itself is handled outside handle_line, so totals match the
    // last exposition exactly.
    assert_eq!(stats_requests_total(&stats), after_total);

    // Exposition shape: HELP + TYPE precede samples, histogram closed.
    assert!(after.contains("# HELP serve_requests_total"));
    assert!(after.contains("# TYPE serve_requests_total counter"));
    assert!(after.contains("# TYPE serve_request_latency_ns histogram"));
    assert!(after.contains("le=\"+Inf\""));
    // The flight recorder's ring-drop counter is pre-seeded, so the
    // exposition always carries it — a dashboard can alert on it going
    // nonzero without waiting for the first instrumented run.
    assert!(
        after.contains("serve_fabric_recorder_dropped_samples_total"),
        "recorder ring-drop counter exposed: {after}"
    );
    handle.shutdown();
}

#[test]
fn readyz_flips_to_503_during_drain_and_healthz_stays_200() {
    let core = quick_core();
    let handle = HttpPlane::bind(Arc::clone(&core), "127.0.0.1:0")
        .unwrap()
        .spawn();
    let addr = handle.local_addr();

    let (status, body) = http_get(addr, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ready\n");

    core.start_drain();
    let (status, body) = http_get(addr, "/readyz");
    assert!(status.contains("503"), "draining must unready: {status}");
    assert_eq!(body, "draining\n");
    // Liveness is unaffected: the process is still here.
    let (status, body) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");
    // The draining gauge agrees.
    let (_, metrics) = http_get(addr, "/metrics");
    assert!(metrics.contains("serve_draining 1"), "{metrics}");
    handle.shutdown();
}

#[test]
fn sse_stream_backfills_and_ticks_json_samples() {
    let core = quick_core();
    let handle = HttpPlane::bind(Arc::clone(&core), "127.0.0.1:0")
        .unwrap()
        .spawn();
    let addr = handle.local_addr();

    // Let the 1 Hz sampler produce a couple of ring entries first: a
    // late-connecting client must still get them (backfill).
    std::thread::sleep(Duration::from_millis(2300));

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(s, "GET /events HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    // Read until at least two complete SSE frames arrived.
    while String::from_utf8_lossy(&buf).matches("\n\n").count() < 2 {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("SSE read: {e}"),
        }
    }
    drop(s);
    let text = String::from_utf8_lossy(&buf);
    let text = text.split_once("\r\n\r\n").expect("headers").1;
    let mut ids = Vec::new();
    let mut datas = Vec::new();
    for line in text.lines() {
        if let Some(id) = line.strip_prefix("id: ") {
            ids.push(id.parse::<u64>().expect("numeric event id"));
        }
        if let Some(data) = line.strip_prefix("data: ") {
            datas.push(serde_json::from_str(data).expect("sample is JSON"));
        }
    }
    assert!(ids.len() >= 2, "expected backfilled frames, got {ids:?}");
    assert_eq!(ids[0], 0, "backfill starts at the oldest retained seq");
    assert!(ids.windows(2).all(|w| w[1] == w[0] + 1), "ordered: {ids:?}");
    for d in &datas {
        for key in [
            "t",
            "reqs",
            "rps",
            "in_flight",
            "hit_ratio",
            "sheds",
            "links",
        ] {
            assert!(d.get(key).is_some(), "sample missing {key}: {d:?}");
        }
    }
    handle.shutdown();
}

#[test]
fn trace_id_is_echoed_and_lands_in_the_chrome_trace_export() {
    let core = quick_core();
    let line = r#"{"op":"run","experiment_id":"fig1","overrides":{"quick":true,"reps":1,"seed":"11"},"trace_id":"e2e-trace-00aa"}"#;
    let resp: Value = serde_json::from_str(&core.handle_line(line)).unwrap();
    assert_eq!(
        resp.get("trace_id").and_then(Value::as_str),
        Some("e2e-trace-00aa"),
        "client-supplied trace id is echoed"
    );
    // A generated id appears when the client sends none…
    let resp2: Value = serde_json::from_str(&core.handle_line(r#"{"op":"stats"}"#)).unwrap();
    let generated = resp2
        .get("trace_id")
        .and_then(Value::as_str)
        .expect("every non-ping response carries a trace id")
        .to_string();
    assert!(!generated.is_empty());
    // …and both ids are searchable in the Chrome trace export.
    let trace = core.collected_telemetry().chrome_trace_string();
    assert!(trace.contains("e2e-trace-00aa"), "span args carry trace_id");
    assert!(trace.contains(&generated));
    // The exemplar on the latency histogram links back to the same id.
    let prom = core.prometheus_text();
    assert!(
        prom.contains("trace_id=\"e2e-trace-00aa\""),
        "exemplar links the latency bucket to the trace: {prom}"
    );
}

#[test]
fn unknown_paths_404_and_non_get_405_and_dashboard_serves_html() {
    let core = quick_core();
    let handle = HttpPlane::bind(core, "127.0.0.1:0").unwrap().spawn();
    let addr = handle.local_addr();

    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "{status}");

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

    let (status, body) = http_get(addr, "/dashboard");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("<!DOCTYPE html>"));
    assert!(body.contains("EventSource(\"/events\")"), "wired to SSE");
    let (status, root) = http_get(addr, "/");
    assert!(status.contains("200"), "{status}");
    assert_eq!(root, body, "/ serves the same dashboard");
    handle.shutdown();
}
