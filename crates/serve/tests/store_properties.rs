//! Model-based property tests for the crash-safe [`DiskStore`]: random
//! interleavings of puts, gets, torn writes (crash mid-`put` at either
//! write step), bit flips, truncations, and daemon restarts must never
//! surface a corrupt entry — every `get` returns the exact original
//! content or nothing — while the LRU byte cap holds.

use ifsim_serve::cache::CachedRun;
use ifsim_serve::store::{encode_entry, DiskStore, QUARANTINE_DIR};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The digest pool ops index into (small, so interleavings collide).
const DIGESTS: usize = 6;

fn digest(i: usize) -> String {
    format!("digest{i:04}")
}

/// The canonical content for one digest: `put` always stores this, so a
/// successful `get` can be checked for exactness against it.
fn run_for(i: usize) -> CachedRun {
    let d = digest(i);
    CachedRun {
        digest: d.clone(),
        report: format!("report for {d} with \"quotes\" and π\nline two\n"),
        csv: vec![(format!("{d}.csv"), format!("size,ts\n{i},{}\n", i * 7))],
        checks_passed: i % 3,
        checks_total: 3,
        critpath: i
            .is_multiple_of(2)
            .then(|| format!("{{\"schema\":\"ifsim-critpath-v1\",\"i\":{i}}}")),
    }
}

fn assert_exact(got: &CachedRun, i: usize) {
    let want = run_for(i);
    assert_eq!(got.digest, want.digest);
    assert_eq!(got.report, want.report, "report bytes must be exact");
    assert_eq!(got.csv, want.csv, "csv artifacts must be exact");
    assert_eq!(got.checks_passed, want.checks_passed);
    assert_eq!(got.checks_total, want.checks_total);
}

/// One step of the interleaving. Damage ops model a crash or media
/// fault at a specific write step: a stray tmp file is `put` killed
/// before its rename; truncation/bit-flip are torn or rotted bytes
/// under a live digest name.
#[derive(Clone, Debug)]
enum Op {
    Put(usize),
    Get(usize),
    /// Crash between the tmp-file write and the rename.
    CrashBeforeRename(usize, usize),
    /// Truncate a resident entry file (torn write reaching the name).
    Truncate(usize, usize),
    /// Flip one byte of a resident entry file.
    BitFlip(usize, usize),
    /// Drop the store and recover the directory from scratch.
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..DIGESTS).prop_map(Op::Put),
        (0usize..DIGESTS).prop_map(Op::Get),
        (0usize..DIGESTS, 0usize..64).prop_map(|(i, k)| Op::CrashBeforeRename(i, k)),
        (0usize..DIGESTS, 0usize..10_000).prop_map(|(i, k)| Op::Truncate(i, k)),
        (0usize..DIGESTS, 0usize..10_000).prop_map(|(i, k)| Op::BitFlip(i, k)),
        Just(Op::Reopen),
    ]
}

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ifsim-store-prop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The store-wide safety invariants that must hold after every step.
fn check_invariants(store: &DiskStore, damaged: &HashSet<usize>) {
    assert!(
        store.total_bytes() <= store.bytes_cap() || store.entries() <= 1,
        "byte cap violated: {} > {} with {} entries",
        store.total_bytes(),
        store.bytes_cap(),
        store.entries()
    );
    // Nothing we damaged may be served; what is served is exact.
    for &i in damaged {
        if let Some(got) = store.get(&digest(i)) {
            panic!("damaged entry {} served: {:?}", digest(i), got.report);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op interleavings: every successful `get` is byte-exact,
    /// damaged entries are never served (before or after restart), the
    /// byte cap holds, and quarantined evidence is kept on disk.
    #[test]
    fn interleavings_never_serve_corrupt_entries(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let dir = unique_dir("ops");
        // Cap sized for roughly three entries so eviction participates.
        let cap = encode_entry(&run_for(0)).len() as u64 * 3 + 10;
        let (mut store, _) = DiskStore::open(&dir, cap).unwrap();
        // Digests whose on-disk bytes we corrupted and have not rewritten.
        let mut damaged: HashSet<usize> = HashSet::new();
        let mut quarantined_ever = 0u64;

        for op in &ops {
            match *op {
                Op::Put(i) => {
                    // Keep-first: a resident (even damaged-undetected)
                    // digest is left alone; otherwise this writes the
                    // canonical content and heals the digest.
                    let resident = store.contains(&digest(i));
                    store.put(&run_for(i)).unwrap();
                    if !resident {
                        damaged.remove(&i);
                    }
                }
                Op::Get(i) => {
                    if let Some(got) = store.get(&digest(i)) {
                        prop_assert!(!damaged.contains(&i), "served a damaged entry");
                        assert_exact(&got, i);
                    }
                }
                Op::CrashBeforeRename(i, k) => {
                    // The tmp file exists, the rename never happened: the
                    // digest's previous state (if any) must be untouched.
                    let bytes = encode_entry(&run_for(i));
                    let cut = k % bytes.len();
                    std::fs::write(dir.join(format!("tmp-prop-{i}-{k}")), &bytes[..cut]).unwrap();
                }
                Op::Truncate(i, k) => {
                    let path = dir.join(digest(i));
                    if let Ok(bytes) = std::fs::read(&path) {
                        let cut = k % bytes.len(); // strictly shorter
                        std::fs::write(&path, &bytes[..cut]).unwrap();
                        damaged.insert(i);
                    }
                }
                Op::BitFlip(i, k) => {
                    let path = dir.join(digest(i));
                    if let Ok(mut bytes) = std::fs::read(&path) {
                        let pos = k % bytes.len();
                        bytes[pos] ^= 0x01;
                        std::fs::write(&path, &bytes).unwrap();
                        damaged.insert(i);
                    }
                }
                Op::Reopen => {
                    quarantined_ever += store.quarantined_total();
                    drop(store);
                    let (reopened, report) = DiskStore::open(&dir, cap).unwrap();
                    store = reopened;
                    // The recovery scan detects (and quarantines) every
                    // damaged entry still on disk; recovered ones are
                    // only ever valid.
                    prop_assert!(report.bytes <= cap || report.recovered <= 1);
                    for &i in &damaged {
                        prop_assert!(
                            !store.contains(&digest(i)),
                            "scan recovered a damaged entry"
                        );
                    }
                }
            }
            check_invariants(&store, &damaged);
        }

        // Post-mortem evidence: every quarantine event left a file.
        quarantined_ever += store.quarantined_total();
        let evidence = std::fs::read_dir(dir.join(QUARANTINE_DIR))
            .map(|d| d.count() as u64)
            .unwrap_or(0);
        prop_assert!(
            evidence >= quarantined_ever.min(1),
            "quarantine events with no evidence on disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pure crash-at-write-step sequences: any number of interrupted
    /// `put`s (tmp files at arbitrary cut points) never disturbs the
    /// committed state, and restart recovers every committed entry
    /// byte-exactly while sweeping the debris.
    #[test]
    fn interrupted_puts_preserve_committed_state(
        committed in proptest::collection::vec(0usize..DIGESTS, 0..5),
        torn in proptest::collection::vec((0usize..DIGESTS, 1usize..200), 0..6),
    ) {
        let dir = unique_dir("torn");
        let cap = 1 << 20; // no eviction: isolate the crash behaviour
        let (store, _) = DiskStore::open(&dir, cap).unwrap();
        for &i in &committed {
            store.put(&run_for(i)).unwrap();
        }
        let resident: HashSet<usize> = committed.iter().copied().collect();
        for (n, &(i, k)) in torn.iter().enumerate() {
            let bytes = encode_entry(&run_for(i));
            let cut = k % bytes.len();
            std::fs::write(dir.join(format!("tmp-torn-{n}")), &bytes[..cut]).unwrap();
        }
        drop(store);

        let (store, report) = DiskStore::open(&dir, cap).unwrap();
        prop_assert_eq!(report.recovered, resident.len());
        prop_assert_eq!(report.quarantined, 0, "tmp debris is not corruption");
        prop_assert_eq!(report.removed_tmp, torn.len());
        for i in 0..DIGESTS {
            match store.get(&digest(i)) {
                Some(got) => {
                    prop_assert!(resident.contains(&i));
                    assert_exact(&got, i);
                }
                None => prop_assert!(!resident.contains(&i)),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
