//! Property tests for the serve wire protocol: arbitrary requests and
//! responses survive encode → one JSON line → parse unchanged.

use ifsim_serve::proto::{
    parse_request, ConfigOverrides, Request, RunRequest, RunResponse, Status,
};
use proptest::prelude::*;

/// Identifier-ish strings (experiment ids, calibration field names).
/// The shim has no `String` Arbitrary, so build them from char pools.
fn arb_ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..37, 1..12).prop_map(|idx| {
        const POOL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        idx.iter().map(|&i| POOL[i] as char).collect()
    })
}

/// Free text that exercises JSON escaping: quotes, backslashes,
/// newlines, unicode.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..12, 0..40).prop_map(|idx| {
        const POOL: &[&str] = &[
            "a", "Z", "0", " ", "\"", "\\", "\n", "\t", ",", "{", "é", "π",
        ];
        idx.iter().map(|&i| POOL[i]).collect()
    })
}

/// `Option<T>` strategy; the shim has no `proptest::option` module.
fn arb_option<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(some, v)| some.then_some(v))
}

fn arb_overrides() -> impl Strategy<Value = ConfigOverrides> {
    (
        any::<bool>(),
        arb_option(any::<u64>()),
        arb_option(0usize..1000),
        arb_option(0usize..1000),
        proptest::collection::vec((arb_ident(), 0.01f64..100.0), 0..4),
    )
        .prop_map(|(quick, seed, reps, warmup, mut calib)| {
            // Calib travels as a JSON object, so names must be unique.
            let mut seen = std::collections::HashSet::new();
            calib.retain(|(name, _)| seen.insert(name.clone()));
            ConfigOverrides {
                quick,
                seed,
                reps,
                warmup,
                calib,
            }
        })
}

fn arb_run_request() -> impl Strategy<Value = RunRequest> {
    (
        (
            arb_ident(),
            arb_overrides(),
            proptest::collection::vec(arb_ident(), 0..4),
            arb_option(0u64..10_000_000),
        ),
        (
            arb_option(arb_ident()),
            any::<bool>(),
            // Inline scenario payloads travel as opaque JSON objects; an
            // arbitrary flat object proves presence/absence both survive.
            arb_option(proptest::collection::vec((arb_ident(), arb_text()), 0..3)).prop_map(
                |fields| {
                    fields.map(|fields| {
                        let mut obj = serde_json::Map::new();
                        let mut seen = std::collections::HashSet::new();
                        for (k, v) in fields {
                            if seen.insert(k.clone()) {
                                obj.insert(k, serde_json::Value::from(v));
                            }
                        }
                        serde_json::Value::from(obj)
                    })
                },
            ),
        ),
    )
        .prop_map(
            |(
                (experiment_id, overrides, artifacts, deadline_ms),
                (trace_id, analyze, scenario),
            )| {
                RunRequest {
                    experiment_id,
                    scenario,
                    overrides,
                    artifacts,
                    deadline_ms,
                    trace_id,
                    analyze,
                }
            },
        )
}

fn arb_status() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::BadRequest),
        Just(Status::Overloaded),
        Just(Status::Internal),
        Just(Status::DeadlineExceeded),
    ]
}

fn arb_run_response() -> impl Strategy<Value = RunResponse> {
    (
        (arb_status(), arb_ident(), arb_ident(), any::<bool>()),
        (
            arb_option(arb_text()),
            arb_option(arb_ident()),
            arb_option(arb_text()),
            proptest::collection::vec((arb_ident(), arb_text()), 0..4),
            (0usize..50, 0usize..50),
        ),
        // Empty = unassigned (omitted on the wire); both must round-trip.
        arb_option(arb_ident()).prop_map(Option::unwrap_or_default),
        // Critpath reports travel as opaque JSON; an object is enough to
        // prove presence/absence both survive the wire.
        arb_option(arb_ident()).prop_map(|tag| {
            tag.map(|tag| {
                let mut obj = serde_json::Map::new();
                obj.insert("schema", serde_json::Value::from("ifsim-critpath-v1"));
                obj.insert("tag", serde_json::Value::from(tag));
                serde_json::Value::from(obj)
            })
        }),
    )
        .prop_map(
            |(
                (status, experiment_id, digest, cached),
                (error, error_field, report, csv, (passed, extra)),
                trace_id,
                critpath,
            )| {
                RunResponse {
                    trace_id,
                    status,
                    experiment_id,
                    digest,
                    cached,
                    error,
                    error_field,
                    report,
                    csv,
                    checks_passed: passed,
                    checks_total: passed + extra,
                    critpath,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// RunRequest → JSON line → parse → identical, including full-range
    /// u64 seeds (carried as decimal strings on the wire) and
    /// escaping-heavy calibration names.
    #[test]
    fn run_request_round_trips(req in arb_run_request()) {
        let line = serde_json::to_string(&req.to_json());
        prop_assert!(!line.contains('\n'), "one request = one line");
        let request = parse_request(&line).unwrap();
        prop_assert_eq!(Request::Run(req), request);
    }

    /// RunResponse → JSON line → parse → identical, covering every
    /// status and text with quotes/backslashes/newlines.
    #[test]
    fn run_response_round_trips(resp in arb_run_response()) {
        let line = serde_json::to_string(&resp.to_json());
        prop_assert!(!line.contains('\n'), "one response = one line");
        let back = RunResponse::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        prop_assert_eq!(resp, back);
    }

    /// Encoding is deterministic: the same request always serializes to
    /// the same bytes (the cache-determinism guarantee rests on this).
    #[test]
    fn encoding_is_deterministic(req in arb_run_request()) {
        let a = serde_json::to_string(&req.to_json());
        let b = serde_json::to_string(&req.clone().to_json());
        prop_assert_eq!(a, b);
    }
}
