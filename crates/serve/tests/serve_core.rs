//! Transport-independent server tests: caching determinism, admission
//! control, and error mapping through `ServerCore::handle_line`.

use ifsim_serve::proto::{RunRequest, RunResponse, Status};
use ifsim_serve::{ServeOptions, ServerCore};
use serde_json::Value;

fn small_core() -> ServerCore {
    ServerCore::new(ServeOptions {
        workers: 2,
        queue_depth: 4,
        cache_cap: 32,
        ..ServeOptions::default()
    })
}

fn run_line(id: &str) -> String {
    let mut req = RunRequest::new(id);
    req.overrides.quick = true;
    serde_json::to_string(&req.to_json())
}

fn parse_run(line: &str) -> RunResponse {
    RunResponse::from_json(&serde_json::from_str(line).unwrap()).unwrap()
}

/// The serving pipeline is deterministic: a cache hit re-serializes to
/// exactly the bytes the fresh compute produced (only `cached` flips),
/// and both match a direct in-process run of the same experiment.
#[test]
fn cached_response_is_byte_identical_to_fresh_compute() {
    let core = small_core();
    let line = run_line("fig1");

    let fresh = core.handle_line(&line);
    let replay = core.handle_line(&line);

    let fresh_resp = parse_run(&fresh);
    let replay_resp = parse_run(&replay);
    assert_eq!(fresh_resp.status, Status::Ok);
    assert!(!fresh_resp.cached);
    assert!(
        replay_resp.cached,
        "second identical request hits the cache"
    );

    // Every response names its own trace; ids are unique per request.
    assert!(!fresh_resp.trace_id.is_empty());
    assert!(!replay_resp.trace_id.is_empty());
    assert_ne!(fresh_resp.trace_id, replay_resp.trace_id);

    // Normalize the two legitimate differences (cached flag, per-request
    // trace id), then demand byte equality.
    let mut normalized = replay_resp.clone();
    normalized.cached = false;
    normalized.trace_id = fresh_resp.trace_id.clone();
    assert_eq!(
        serde_json::to_string(&fresh_resp.to_json()),
        serde_json::to_string(&normalized.to_json()),
        "cache replay must be byte-identical modulo cached flag and trace id"
    );

    // And both match a direct run of the registry experiment.
    let exp = ifsim_core::registry::by_id("fig1").unwrap();
    let direct = exp.run(&ifsim_core::BenchConfig::quick());
    assert_eq!(fresh_resp.report.as_deref(), Some(direct.report().as_str()));
    assert_eq!(fresh_resp.csv, direct.csv);
    assert_eq!(fresh_resp.digest.len(), 32);

    assert_eq!(core.cache().hits(), 1);
    assert_eq!(core.cache().misses(), 1);
}

/// Different seeds are different cache entries.
#[test]
fn seed_changes_miss_the_cache() {
    let core = small_core();
    let mut req = RunRequest::new("fig1");
    req.overrides.quick = true;
    req.overrides.seed = Some(1);
    let a = parse_run(&core.handle_line(&serde_json::to_string(&req.to_json())));
    req.overrides.seed = Some(2);
    let b = parse_run(&core.handle_line(&serde_json::to_string(&req.to_json())));
    assert_ne!(a.digest, b.digest);
    assert!(!b.cached);
    assert_eq!(core.cache().entries(), 2);
}

/// At capacity the server answers an explicit Overloaded (429) instead
/// of queueing without bound. Slots are claimed through the same
/// `try_admit` the run path uses, so the test is deterministic.
#[test]
fn overload_returns_explicit_429() {
    let core = ServerCore::new(ServeOptions {
        workers: 1,
        queue_depth: 1,
        cache_cap: 8,
        ..ServeOptions::default()
    });
    assert_eq!(core.capacity(), 2);
    assert!(core.try_admit());
    assert!(core.try_admit());
    assert!(!core.try_admit(), "third admit exceeds workers + queue");

    let resp = parse_run(&core.handle_line(&run_line("fig1")));
    assert_eq!(resp.status, Status::Overloaded);
    assert_eq!(resp.status.code(), 429);
    assert!(!resp.digest.is_empty(), "429 still names the cache key");

    // Releasing a slot makes the same request computable again.
    core.finish_admitted();
    let resp = parse_run(&core.handle_line(&run_line("fig1")));
    assert_eq!(resp.status, Status::Ok);
    core.finish_admitted();
    assert_eq!(core.in_flight(), 0);
}

/// Cache hits bypass admission control entirely: a saturated server
/// still answers already-computed requests.
#[test]
fn cache_hits_bypass_admission() {
    let core = ServerCore::new(ServeOptions {
        workers: 1,
        queue_depth: 0,
        cache_cap: 8,
        ..ServeOptions::default()
    });
    let line = run_line("fig1");
    assert_eq!(parse_run(&core.handle_line(&line)).status, Status::Ok);
    while core.try_admit() {}
    let resp = parse_run(&core.handle_line(&line));
    assert_eq!(resp.status, Status::Ok);
    assert!(resp.cached);
}

/// Bad requests map to 400 with a reason, not a hang or a panic.
#[test]
fn invalid_requests_map_to_400() {
    let core = small_core();

    let resp = parse_run(&core.handle_line(&run_line("fig99")));
    assert_eq!(resp.status, Status::BadRequest);
    assert!(resp.error.unwrap().contains("unknown experiment"));

    let mut req = RunRequest::new("fig1");
    req.overrides.calib.push(("not_a_knob".into(), 1.5));
    let resp = parse_run(&core.handle_line(&serde_json::to_string(&req.to_json())));
    assert_eq!(resp.status, Status::BadRequest);
    assert!(resp.error.unwrap().contains("not_a_knob"));

    let v: Value = serde_json::from_str(&core.handle_line("this is not json")).unwrap();
    assert_eq!(v.get("code").and_then(Value::as_u64), Some(400));
}

/// The artifact filter trims the response without touching the cache.
#[test]
fn artifact_filter_selects_named_csvs() {
    let core = small_core();
    let full = parse_run(&core.handle_line(&run_line("fig6a")));
    assert!(!full.csv.is_empty());
    let (first_name, first_contents) = full.csv[0].clone();

    let mut req = RunRequest::new("fig6a");
    req.overrides.quick = true;
    req.artifacts = vec![first_name.clone()];
    let filtered = parse_run(&core.handle_line(&serde_json::to_string(&req.to_json())));
    assert!(filtered.cached, "filter applies on top of the cached entry");
    assert_eq!(filtered.csv, vec![(first_name, first_contents)]);
}

/// Stats carries the lint-checked schema tag plus cache/queue/pool and
/// the metrics snapshot with latency histograms.
#[test]
fn stats_snapshot_matches_schema() {
    let core = small_core();
    let line = run_line("fig1");
    core.handle_line(&line);
    core.handle_line(&line);
    let stats: Value = serde_json::from_str(&core.handle_line(r#"{"op":"stats"}"#)).unwrap();

    assert_eq!(
        stats.get("schema").and_then(Value::as_str),
        Some(ifsim_serve::STATS_SCHEMA)
    );
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
    let queue = stats.get("queue").unwrap();
    assert_eq!(queue.get("in_flight").and_then(Value::as_u64), Some(0));
    assert_eq!(queue.get("capacity").and_then(Value::as_u64), Some(6));
    assert_eq!(
        stats
            .get("pool")
            .and_then(|p| p.get("panicked_jobs"))
            .and_then(Value::as_u64),
        Some(0)
    );
    let hists = stats
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(Value::as_array)
        .unwrap();
    let latency = hists
        .iter()
        .find(|h| h.get("name").and_then(Value::as_str) == Some("serve_request_latency_ns"))
        .expect("run latency histogram present");
    for field in ["p50", "p95", "p99"] {
        assert!(latency.get(field).is_some(), "missing {field}");
    }
}

/// Analyzed runs cache under their own derived digest, carry a
/// critical-path report on the wire, and leave plain requests for the
/// same configuration untouched.
#[test]
fn analyze_requests_carry_critpath_under_a_derived_digest() {
    let core = small_core();
    // ext-coll-sweep runs through the HipSim runtime, so DAG capture has
    // causal edges to record (fig1 is fabric-level and has none).
    let mut req = RunRequest::new("ext-coll-sweep");
    req.overrides.quick = true;
    req.overrides.reps = Some(1);
    let plain_line = serde_json::to_string(&req.to_json());
    let plain = parse_run(&core.handle_line(&plain_line));
    assert_eq!(plain.status, Status::Ok);
    assert!(plain.critpath.is_none(), "plain runs stay lean");

    req.analyze = true;
    let line = serde_json::to_string(&req.to_json());
    let analyzed = parse_run(&core.handle_line(&line));
    assert_eq!(analyzed.status, Status::Ok);
    assert!(!analyzed.cached, "analyze is a distinct cache entry");
    assert_ne!(analyzed.digest, plain.digest, "derived digest");

    let critpath = analyzed.critpath.expect("analyze returns a report");
    assert_eq!(
        critpath.get("schema").and_then(Value::as_str),
        Some("ifsim-critpath-v1")
    );
    let total = critpath
        .get("total_ns")
        .and_then(Value::as_f64)
        .expect("total_ns");
    assert!(total > 0.0, "instrumented run has a nonempty critical path");
    // The report rides the cache: a replay carries the same bytes.
    let replay = parse_run(&core.handle_line(&line));
    assert!(replay.cached);
    assert_eq!(
        serde_json::to_string(&replay.critpath.unwrap()),
        serde_json::to_string(&critpath)
    );
    // And the plain entry still replays without a report.
    let plain_replay = parse_run(&core.handle_line(&plain_line));
    assert!(plain_replay.cached);
    assert!(plain_replay.critpath.is_none());
}

/// Shutdown flips the draining flag the socket host polls.
#[test]
fn shutdown_request_starts_drain() {
    let core = small_core();
    assert!(!core.draining());
    let v: Value = serde_json::from_str(&core.handle_line(r#"{"op":"shutdown"}"#)).unwrap();
    assert_eq!(v.get("draining").and_then(Value::as_bool), Some(true));
    assert!(core.draining());
}

/// Eight concurrent requests for one cold digest coalesce onto a single
/// computation: exactly one leader, seven followers, and every response
/// is byte-identical.
#[test]
fn concurrent_identical_requests_single_flight() {
    let core = std::sync::Arc::new(ServerCore::new(ServeOptions {
        workers: 4,
        queue_depth: 8,
        cache_cap: 32,
        ..ServeOptions::default()
    }));
    let line = run_line("fig1");
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let core = std::sync::Arc::clone(&core);
            let line = line.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                core.handle_line(&line)
            })
        })
        .collect();
    let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The load-bearing invariant: one computation, no matter how the
    // other seven interleave (coalesced behind the leader, or — if the
    // scheduler parked them past its completion — served from cache).
    assert_eq!(core.singleflight_leaders(), 1, "exactly one computation");
    assert_eq!(
        core.singleflight_followers() + core.cache().hits(),
        7,
        "everyone else coalesced or replayed; nobody recomputed"
    );
    let baseline = {
        let mut resp = parse_run(&responses[0]);
        resp.cached = false;
        resp.trace_id = String::new();
        serde_json::to_string(&resp.to_json())
    };
    for r in &responses {
        let mut resp = parse_run(r);
        assert_eq!(resp.status, Status::Ok);
        resp.cached = false;
        resp.trace_id = String::new();
        assert_eq!(
            serde_json::to_string(&resp.to_json()),
            baseline,
            "followers see the leader's bytes"
        );
    }

    let stats: Value = serde_json::from_str(&core.handle_line(r#"{"op":"stats"}"#)).unwrap();
    let sf = stats.get("singleflight").expect("singleflight section");
    assert_eq!(sf.get("leaders").and_then(Value::as_u64), Some(1));
}

/// An already-expired deadline is shed before any compute and answers an
/// explicit 504, which the deadline accounting in stats reflects.
#[test]
fn expired_deadline_sheds_with_504() {
    let core = small_core();
    let mut req = RunRequest::new("fig1");
    req.overrides.quick = true;
    req.deadline_ms = Some(0);
    let resp = parse_run(&core.handle_line(&serde_json::to_string(&req.to_json())));
    assert_eq!(resp.status, Status::DeadlineExceeded);
    assert_eq!(resp.status.code(), 504);
    assert!(!resp.digest.is_empty(), "504 still names the cache key");
    assert!(resp.error.unwrap().contains("deadline"));

    let stats: Value = serde_json::from_str(&core.handle_line(r#"{"op":"stats"}"#)).unwrap();
    let deadline = stats.get("deadline").expect("deadline section");
    assert_eq!(deadline.get("shed").and_then(Value::as_u64), Some(1));
    assert_eq!(deadline.get("exceeded").and_then(Value::as_u64), Some(1));

    // A sane deadline computes normally.
    req.deadline_ms = Some(120_000);
    let resp = parse_run(&core.handle_line(&serde_json::to_string(&req.to_json())));
    assert_eq!(resp.status, Status::Ok);
}

/// Warm-start regression: a daemon restarted onto the same `--cache-dir`
/// replays byte-identical responses from its previous life without
/// recomputing.
#[test]
fn warm_restarted_core_replays_byte_identical_responses() {
    let dir = std::env::temp_dir().join(format!("ifsim-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions {
        workers: 2,
        queue_depth: 4,
        cache_cap: 32,
        cache_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };
    let line = run_line("fig1");

    let (cold, scan) = ServerCore::build(opts.clone()).unwrap();
    assert_eq!(scan.unwrap().recovered, 0, "first life starts empty");
    let fresh = parse_run(&cold.handle_line(&line));
    assert_eq!(fresh.status, Status::Ok);
    assert!(!fresh.cached);
    drop(cold);

    let (warm, scan) = ServerCore::build(opts).unwrap();
    assert_eq!(scan.unwrap().recovered, 1, "restart recovers the entry");
    let replay = parse_run(&warm.handle_line(&line));
    assert!(replay.cached, "warm start serves from the recovered cache");
    assert_eq!(warm.cache().disk_hits(), 1);
    assert_eq!(warm.cache().misses(), 0, "no recompute after restart");
    assert_eq!(warm.singleflight_leaders(), 0);

    let mut normalized = replay.clone();
    normalized.cached = false;
    normalized.trace_id = fresh.trace_id.clone();
    assert_eq!(
        serde_json::to_string(&fresh.to_json()),
        serde_json::to_string(&normalized.to_json()),
        "warm replay must be byte-identical modulo cached flag and trace id"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An inline scenario compiles server-side and caches on *content*: the
/// same scenario with shuffled field order and a different client-side
/// id label keys to the same digest and replays from the cache.
#[test]
fn inline_scenario_caches_on_content_not_field_order() {
    let core = small_core();
    // The id is omitted entirely: the server echoes the compiled one.
    let a = r#"{"op":"run","scenario":{
        "schema":"ifsim-scenario-v1","name":"moe-serve",
        "config":{"reps":1,"warmup":0},
        "workload":{"type":"moe-alltoall","ranks":2,"bytes_per_pair":65536,
                    "steps":1,"compute_bytes":65536}}}"#;
    // Same scenario, every object's keys in a different order, plus a
    // client-chosen label.
    let b = r#"{"op":"run","experiment_id":"my-label","scenario":{
        "workload":{"compute_bytes":65536,"steps":1,"bytes_per_pair":65536,
                    "ranks":2,"type":"moe-alltoall"},
        "config":{"warmup":0,"reps":1},
        "name":"moe-serve","schema":"ifsim-scenario-v1"}}"#;

    let fresh = parse_run(&core.handle_line(a));
    assert_eq!(fresh.status, Status::Ok, "{:?}", fresh.error);
    assert!(!fresh.cached);
    assert_eq!(fresh.experiment_id, "scenario:moe-serve");
    assert_eq!(fresh.checks_passed, fresh.checks_total);

    let replay = parse_run(&core.handle_line(b));
    assert_eq!(replay.status, Status::Ok);
    assert!(replay.cached, "shuffled field order still hits the cache");
    assert_eq!(replay.digest, fresh.digest, "digest keys on content");
    assert_eq!(replay.experiment_id, "my-label", "label echoes the client");
    assert_eq!(replay.report, fresh.report);
    assert_eq!(core.cache().hits(), 1);

    // Different scenario content under the same name: a different digest.
    let c = a.replace("\"bytes_per_pair\":65536", "\"bytes_per_pair\":131072");
    let other = parse_run(&core.handle_line(&c));
    assert_eq!(other.status, Status::Ok);
    assert!(!other.cached);
    assert_ne!(other.digest, fresh.digest);
}

/// Malformed scenario payloads answer 400 with the offending field named
/// under `scenario.`, the same structured shape every other bad-payload
/// rejection uses.
#[test]
fn scenario_errors_name_the_offending_field() {
    let core = small_core();
    let cases = [
        (
            r#"{"op":"run","scenario":{"schema":"ifsim-scenario-v1","name":"x",
                "workload":{"type":"moe-alltoall"},"bogus":1}}"#,
            "scenario.bogus",
        ),
        (
            r#"{"op":"run","scenario":{"schema":"ifsim-scenario-v1","name":"x",
                "workload":{"type":"no-such-workload"}}}"#,
            "scenario.workload.type",
        ),
        (
            r#"{"op":"run","scenario":{"schema":"ifsim-scenario-v1","name":"x",
                "workload":{"type":"moe-alltoall","ranks":99}}}"#,
            "scenario.workload.ranks",
        ),
        (
            r#"{"op":"run","experiment_id":"fig1","overrides":{"calib":{"nope":2.0}}}"#,
            "overrides.calib.nope",
        ),
    ];
    for (line, field) in cases {
        let resp = parse_run(&core.handle_line(line));
        assert_eq!(resp.status, Status::BadRequest, "for {line}");
        assert_eq!(resp.error_field.as_deref(), Some(field), "for {line}");
        assert!(
            resp.error.as_deref().unwrap().contains(field),
            "error text names the field for {line}"
        );
    }
    // Parse-level rejections carry the field on the envelope too.
    let v: serde_json::Value = serde_json::from_str(
        &core.handle_line(r#"{"op":"run","artifacts":[3],"experiment_id":"fig1"}"#),
    )
    .unwrap();
    assert_eq!(v.get("code").and_then(Value::as_u64), Some(400));
    assert_eq!(v.get("field").and_then(Value::as_str), Some("artifacts[0]"));
}
