//! End-to-end test: the real `ifsim-serve` binary on a Unix socket,
//! driven through the client library.
#![cfg(unix)]

use ifsim_serve::proto::RunRequest;
use ifsim_serve::{ClientAddr, Connection};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ifsim-serve-{tag}-{}.sock", std::process::id()))
}

fn wait_for(socket: &Path, child: &mut Child) -> Connection {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(conn) = Connection::connect(&ClientAddr::Unix(socket.to_path_buf())) {
            return conn;
        }
        if let Some(status) = child.try_wait().expect("poll server") {
            panic!("server exited early: {status}");
        }
        assert!(Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn serve_bin_caches_and_drains_over_unix_socket() {
    let socket = socket_path("e2e");
    let mut child = Command::new(env!("CARGO_BIN_EXE_ifsim-serve"))
        .args(["--socket"])
        .arg(&socket)
        .args(["--workers", "2", "--queue-depth", "4"])
        .spawn()
        .expect("spawn ifsim-serve");

    let mut conn = wait_for(&socket, &mut child);
    conn.ping().expect("ping");

    let mut req = RunRequest::new("fig1");
    req.overrides.quick = true;
    let fresh = conn.run(&req).expect("first run");
    assert_eq!(fresh.status.code(), 200);
    assert!(!fresh.cached);

    // A second connection sees the same resident cache.
    let mut conn2 = Connection::connect(&ClientAddr::Unix(socket.clone())).expect("reconnect");
    let replay = conn2.run(&req).expect("second run");
    assert!(replay.cached);
    assert_eq!(replay.digest, fresh.digest);
    assert_eq!(replay.report, fresh.report);
    assert_eq!(replay.csv, fresh.csv);

    let stats = conn2.stats().expect("stats");
    assert_eq!(
        stats
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Value::as_u64),
        Some(1)
    );

    conn2.shutdown().expect("shutdown");
    drop(conn);
    drop(conn2);
    let status = child.wait().expect("server exit");
    assert!(status.success(), "graceful drain exits 0");
    assert!(!socket.exists(), "socket file removed on graceful exit");
}
