//! Smoke tests for the `repro` and `mgpu-bench` binaries: argument
//! handling, output shape, and exit codes.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn mgpu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mgpu-bench"))
}

#[test]
fn repro_list_names_every_artifact() {
    let out = repro().arg("--list").output().expect("run repro");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in ["fig1", "table1", "fig6b", "fig12", "ext-mi300a"] {
        assert!(text.contains(id), "missing {id} in --list");
    }
}

#[test]
fn repro_runs_a_single_experiment_and_reports_checks() {
    let out = repro()
        .args(["--quick", "--reps", "1", "fig6a"])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "exit: {:?}", out.status);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fig6a"));
    assert!(text.contains("[PASS]"));
    assert!(text.contains("checks passed"));
}

#[test]
fn repro_rejects_unknown_ids_and_options() {
    let out = repro().arg("--bogus").output().expect("run repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn repro_writes_csv_artifacts() {
    let dir = std::env::temp_dir().join(format!("ifsim-cli-test-{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--reps", "1", "--csv"])
        .arg(&dir)
        .arg("fig6a")
        .output()
        .expect("run repro");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("fig6a.csv")).expect("artifact written");
    assert!(csv.starts_with("src\\dst"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_jobs_output_is_byte_identical_to_serial() {
    // The acceptance bar for the parallel driver: every artifact — stdout,
    // CSVs, per-experiment metrics snapshots, merged trace and metrics —
    // must match a serial run byte for byte.
    let run = |tag: &str, jobs: &str| {
        let dir = temp_dir(tag);
        let out = repro()
            .args(["--quick", "--reps", "1", "--jobs", jobs, "--csv"])
            .arg(&dir)
            .arg("--trace-out")
            .arg(dir.join("trace.json"))
            .arg("--metrics-out")
            .arg(dir.join("metrics.json"))
            .args(["table1", "fig6a", "fig6b"])
            .output()
            .expect("run repro");
        assert!(out.status.success(), "exit ({tag}): {:?}", out.status);
        (dir, out.stdout)
    };
    let (d1, stdout1) = run("jobs1", "1");
    let (d4, stdout4) = run("jobs4", "4");
    assert_eq!(
        String::from_utf8_lossy(&stdout1),
        String::from_utf8_lossy(&stdout4),
        "stdout diverges under --jobs"
    );
    let mut names: Vec<_> = std::fs::read_dir(&d1)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    names.sort();
    assert!(
        names.len() >= 5,
        "expected CSVs + snapshots + merged artifacts, got {names:?}"
    );
    for name in names {
        let a = std::fs::read(d1.join(&name)).unwrap();
        let b = std::fs::read(d4.join(&name)).expect("same artifact set");
        assert_eq!(a, b, "{name:?} diverges under --jobs");
    }
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d4).ok();
}

#[test]
fn mgpu_bench_exp_runs_several_ids_in_parallel_with_telemetry() {
    let dir = temp_dir("exp-jobs");
    let metrics = dir.join("metrics.json");
    let out = mgpu()
        .args(["exp", "fig6a", "fig6b", "--jobs", "2", "--reps", "1"])
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("run mgpu-bench exp");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let (a, b) = (text.find("fig6a").unwrap(), text.find("fig6b").unwrap());
    assert!(a < b, "reports come out in the order the ids were given");
    // Worker-thread telemetry was forwarded to the main-thread collector.
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        metrics_text.contains("hip_op_duration_ns"),
        "{metrics_text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mgpu_bench_osu_bw_prints_a_bandwidth_row() {
    let out = mgpu()
        .args(["osu-bw", "--dst", "2", "--reps", "1"])
        .output()
        .expect("run mgpu-bench");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GCD0 -> GCD2"));
    assert!(text.contains("Bandwidth"));
    // Single link with SDMA: ~37.5 GB/s appears in the row.
    assert!(text.contains("37.5"), "{text}");
}

#[test]
fn mgpu_bench_doctor_exit_code_reflects_health() {
    let ok = mgpu()
        .args(["doctor", "--reps", "1", "--size", "16777216"])
        .output()
        .expect("run doctor");
    assert!(ok.status.success(), "healthy node exits 0");
    let sick = mgpu()
        .args([
            "doctor", "--reps", "1", "--size", "16777216", "--derate", "0,1,0.4",
        ])
        .output()
        .expect("run doctor");
    assert!(!sick.status.success(), "degraded node exits non-zero");
    assert!(String::from_utf8_lossy(&sick.stdout).contains("DEGRADED"));
}

#[test]
fn mgpu_bench_usage_on_no_command() {
    let out = mgpu().output().expect("run mgpu-bench");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_telemetry-lint"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ifsim-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn mgpu_bench_exp_runs_a_registry_experiment_with_telemetry() {
    let dir = temp_dir("exp");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    let out = mgpu()
        .args(["exp", "ext-fault-link-down", "--reps", "1"])
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("run mgpu-bench exp");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ext-fault-link-down"));
    // The fault experiment's trace carries hip ops, fabric flows, and the
    // injected fault marker; the metrics carry per-link byte counters.
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    for needle in ["hip_op", "fabric_flow", "\"fault\""] {
        assert!(trace_text.contains(needle), "trace missing {needle}");
    }
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written");
    for needle in ["fabric_link_wire_bytes", "hip_op_duration_ns", "p99"] {
        assert!(metrics_text.contains(needle), "metrics missing {needle}");
    }
    // And both pass the lint.
    let ok = lint()
        .arg("--trace")
        .arg(&trace)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("run telemetry-lint");
    assert!(
        ok.status.success(),
        "lint failed: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mgpu_bench_exp_rejects_unknown_ids() {
    let out = mgpu()
        .args(["exp", "fig99"])
        .output()
        .expect("run mgpu-bench exp");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn repro_emits_telemetry_artifacts_next_to_csv() {
    let dir = temp_dir("repro-telemetry");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    let out = repro()
        .args(["--quick", "--reps", "1"])
        .arg("--csv")
        .arg(&dir)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .arg("fig6b")
        .output()
        .expect("run repro");
    assert!(out.status.success(), "exit: {:?}", out.status);
    // Per-experiment snapshot beside the CSV, plus the merged artifacts.
    let labeled = std::fs::read_to_string(dir.join("fig6b.metrics.json")).expect("snapshot");
    assert!(labeled.contains("\"fig6b\""));
    assert!(labeled.contains("hip_op_duration_ns"));
    assert!(std::fs::read_to_string(&trace)
        .expect("trace")
        .contains("traceEvents"));
    let ok = lint()
        .arg("--trace")
        .arg(&trace)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("run telemetry-lint");
    assert!(
        ok.status.success(),
        "lint failed: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn observability_artifacts_do_not_change_results() {
    // Attribution and the flight recorder are observers: a run that emits
    // every observability artifact must produce byte-identical CSVs (and
    // identical stdout reports) to a bare run of the same experiments.
    let bare_dir = temp_dir("obs-off");
    let bare = repro()
        .args(["--quick", "--reps", "1", "--csv"])
        .arg(&bare_dir)
        .args(["fig6a", "fig6b"])
        .output()
        .expect("bare run");
    assert!(bare.status.success());
    let obs_dir = temp_dir("obs-on");
    let obs = repro()
        .args(["--quick", "--reps", "1", "--csv"])
        .arg(&obs_dir)
        .arg("--attr-out")
        .arg(obs_dir.join("attr.md"))
        .arg("--attr-json")
        .arg(obs_dir.join("attr.json"))
        .arg("--timeseries-out")
        .arg(obs_dir.join("util.csv"))
        .arg("--trace-out")
        .arg(obs_dir.join("trace.json"))
        .args(["fig6a", "fig6b"])
        .output()
        .expect("instrumented run");
    assert!(obs.status.success());
    assert_eq!(
        String::from_utf8_lossy(&bare.stdout),
        String::from_utf8_lossy(&obs.stdout),
        "stdout diverges when observability is on"
    );
    for name in ["fig6a.csv", "fig6b.csv"] {
        let a = std::fs::read(bare_dir.join(name)).unwrap();
        let b = std::fs::read(obs_dir.join(name)).unwrap();
        assert_eq!(a, b, "{name} diverges when observability is on");
    }
    // The attribution JSON the instrumented run produced passes the lint.
    let ok = lint()
        .arg("--attr")
        .arg(obs_dir.join("attr.json"))
        .output()
        .expect("run telemetry-lint");
    assert!(
        ok.status.success(),
        "attr lint failed: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    std::fs::remove_dir_all(&bare_dir).ok();
    std::fs::remove_dir_all(&obs_dir).ok();
}

#[test]
fn mgpu_bench_attr_report_names_the_saturated_link() {
    // The lane-loss experiment drives the quad GCD0<->GCD1 link into
    // contention: the attribution report must name it dominant.
    let dir = temp_dir("attr-report");
    let attr = dir.join("attr.md");
    let out = mgpu()
        .args(["exp", "ext-fault-p2p-lanes", "--reps", "1"])
        .arg("--attr-out")
        .arg(&attr)
        .output()
        .expect("run mgpu-bench exp");
    assert!(out.status.success());
    let report = std::fs::read_to_string(&attr).expect("attr report written");
    assert!(
        report.contains("Dominant binding segment: **GCD0->GCD1**"),
        "{report}"
    );
    assert!(report.contains("endpoint/engine cap"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_lint_validates_attribution_json() {
    let dir = temp_dir("lint-attr");
    let good = dir.join("attr.json");
    std::fs::write(
        &good,
        r#"{
  "schema": "ifsim-attr-v1",
  "flows": 4,
  "total_ns": 100.0,
  "cap_bound_ns": 60.0,
  "link_bound_ns": 40.0,
  "segments": [{"segment": "GCD0->GCD1", "bound_ns": 40.0, "share": 0.4}]
}"#,
    )
    .unwrap();
    let out = lint().arg("--attr").arg(&good).output().expect("lint");
    assert!(
        out.status.success(),
        "good attr rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Wrong schema, and a segment sum that disagrees with link_bound_ns,
    // must both fail.
    for (name, body) in [
        (
            "schema",
            r#"{"schema": "other", "flows": 0, "total_ns": 0.0,
               "cap_bound_ns": 0.0, "link_bound_ns": 0.0, "segments": []}"#,
        ),
        (
            "sum",
            r#"{"schema": "ifsim-attr-v1", "flows": 1, "total_ns": 100.0,
               "cap_bound_ns": 60.0, "link_bound_ns": 40.0,
               "segments": [{"segment": "GCD0->GCD1", "bound_ns": 10.0, "share": 0.1}]}"#,
        ),
    ] {
        let bad = dir.join(format!("bad-{name}.json"));
        std::fs::write(&bad, body).unwrap();
        let out = lint().arg("--attr").arg(&bad).output().expect("lint");
        assert!(!out.status.success(), "{name} attr accepted");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_lint_rejects_malformed_artifacts() {
    let dir = temp_dir("lint");
    let bad_trace = dir.join("bad-trace.json");
    std::fs::write(&bad_trace, r#"{"traceEvents":[{"ph":"X"}]}"#).unwrap();
    let out = lint()
        .arg("--trace")
        .arg(&bad_trace)
        .output()
        .expect("lint");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing name"));
    let bad_metrics = dir.join("bad-metrics.json");
    std::fs::write(&bad_metrics, r#"{"counters":[]}"#).unwrap();
    let out = lint()
        .arg("--metrics")
        .arg(&bad_metrics)
        .output()
        .expect("lint");
    assert!(!out.status.success());
    // Nothing to lint at all is a usage error.
    let out = lint().output().expect("lint");
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_zero_jobs() {
    let out = repro()
        .args(["--jobs", "0", "fig6a"])
        .output()
        .expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--jobs must be at least 1"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn mgpu_bench_exp_rejects_zero_jobs() {
    let out = mgpu()
        .args(["exp", "fig6a", "--jobs", "0"])
        .output()
        .expect("run mgpu-bench exp");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--jobs must be at least 1"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[cfg(unix)]
mod serve_cli {
    //! End-to-end tests for `ifsim-client` and `ifsim-loadgen` against an
    //! in-process `ifsim_serve::Server` hosted on a temp Unix socket.

    use super::temp_dir;
    use ifsim_serve::{ServeAddr, ServeOptions, Server};
    use std::path::PathBuf;
    use std::process::Command;

    fn client() -> Command {
        Command::new(env!("CARGO_BIN_EXE_ifsim-client"))
    }

    fn loadgen() -> Command {
        Command::new(env!("CARGO_BIN_EXE_ifsim-loadgen"))
    }

    /// Host a server on `<dir>/serve.sock` in a background thread; the
    /// returned guard joins the server (after a client-driven shutdown).
    fn host(dir: &std::path::Path) -> (PathBuf, std::thread::JoinHandle<()>) {
        let sock = dir.join("serve.sock");
        let server = Server::bind(
            ServeAddr::Unix(sock.clone()),
            ServeOptions {
                workers: 4,
                queue_depth: 16,
                cache_cap: 64,
                ..ServeOptions::default()
            },
        )
        .expect("bind temp socket");
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        (sock, handle)
    }

    fn shut_down(sock: &std::path::Path, handle: std::thread::JoinHandle<()>) {
        let out = client()
            .arg("--socket")
            .arg(sock)
            .arg("shutdown")
            .output()
            .expect("run client shutdown");
        assert!(out.status.success(), "shutdown failed");
        handle.join().expect("server thread");
    }

    #[test]
    fn client_artifacts_are_byte_identical_to_repro_and_replay_from_cache() {
        let dir = temp_dir("serve-client");
        let (sock, handle) = host(&dir);

        // Same config through the service, twice: the second answer must be
        // a cache hit carrying the same bytes.
        let run = |tag: &str| {
            let csv_dir = dir.join(tag);
            let out = client()
                .arg("--socket")
                .arg(&sock)
                .args(["exp", "fig6a", "--quick", "--reps", "1", "--no-report"])
                .arg("--csv")
                .arg(&csv_dir)
                .output()
                .expect("run client exp");
            assert!(
                out.status.success(),
                "stdout: {}\nstderr: {}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
            (csv_dir, String::from_utf8_lossy(&out.stdout).into_owned())
        };
        let (d1, stdout1) = run("first");
        let (d2, stdout2) = run("second");
        assert!(stdout1.contains("computed"), "{stdout1}");
        assert!(stdout2.contains("cache hit"), "{stdout2}");

        // And both match what the repro CLI writes for the same config.
        let repro_dir = dir.join("repro");
        let out = super::repro()
            .args(["--quick", "--reps", "1", "--csv"])
            .arg(&repro_dir)
            .arg("fig6a")
            .output()
            .expect("run repro");
        assert!(out.status.success());
        let reference = std::fs::read(repro_dir.join("fig6a.csv")).expect("repro csv");
        for d in [&d1, &d2] {
            let served = std::fs::read(d.join("fig6a.csv")).expect("served csv");
            assert_eq!(served, reference, "served CSV diverges from repro CLI");
        }

        shut_down(&sock, handle);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loadgen_repeat_run_is_all_cache_hits() {
        let dir = temp_dir("serve-loadgen");
        let (sock, handle) = host(&dir);

        let run = || {
            let out = loadgen()
                .arg("--socket")
                .arg(&sock)
                .args(["--concurrency", "8", "--requests", "100", "--seed", "7"])
                .output()
                .expect("run loadgen");
            assert!(
                out.status.success(),
                "stdout: {}\nstderr: {}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8_lossy(&out.stdout).into_owned()
        };
        let first = run();
        assert!(first.contains("completed 100/100 ok"), "{first}");
        assert!(first.contains("p50"), "{first}");
        // Replaying the identical seeded mix hits the warm cache on every
        // request — comfortably above the 0.9 acceptance bar.
        let second = run();
        assert!(second.contains("hit rate 100.0%"), "{second}");
        assert!(second.contains("0 errors"), "{second}");

        shut_down(&sock, handle);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_stats_raw_passes_the_serve_lint() {
        let dir = temp_dir("serve-stats");
        let (sock, handle) = host(&dir);

        // One request so the latency histogram and request counter exist.
        let out = client()
            .arg("--socket")
            .arg(&sock)
            .args(["exp", "fig1", "--quick", "--no-report"])
            .output()
            .expect("run client exp");
        assert!(out.status.success());

        let out = client()
            .arg("--socket")
            .arg(&sock)
            .args(["stats", "--raw"])
            .output()
            .expect("run client stats");
        assert!(out.status.success());
        let stats_path = dir.join("stats.json");
        std::fs::write(&stats_path, &out.stdout).expect("write stats");
        let ok = super::lint()
            .arg("--serve")
            .arg(&stats_path)
            .output()
            .expect("run telemetry-lint");
        assert!(
            ok.status.success(),
            "serve lint failed: {}",
            String::from_utf8_lossy(&ok.stderr)
        );

        shut_down(&sock, handle);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_requires_an_address_and_a_command() {
        let out = client().arg("ping").output().expect("run client");
        assert_eq!(out.status.code(), Some(2));
        assert!(String::from_utf8_lossy(&out.stderr).contains("--socket or --tcp"));
        let out = loadgen().output().expect("run loadgen");
        assert_eq!(out.status.code(), Some(2));
        assert!(String::from_utf8_lossy(&out.stderr).contains("--socket or --tcp"));
    }
}

#[test]
fn telemetry_lint_validates_bench_summary() {
    let dir = temp_dir("lint-bench");
    // A well-formed summary in the shape `fabric_engine` writes.
    let good = dir.join("bench.json");
    std::fs::write(
        &good,
        r#"{
  "schema": "ifsim-bench-fabric-v2",
  "results": [
    {"id": "engine/add_drain_cycle_64", "flows": 64, "mean_ns": 150000.0, "min_ns": 120000.0, "iters": 40},
    {"id": "engine/add_drain_cycle_10k", "flows": 10000, "mean_ns": 40000000.0, "min_ns": 39000000.0, "iters": 10}
  ],
  "speedup": {"add_drain_cycle_64": 5.4, "incremental_vs_full_add_drain_10k": 38.0}
}"#,
    )
    .unwrap();
    let out = lint().arg("--bench").arg(&good).output().expect("lint");
    assert!(
        out.status.success(),
        "good summary rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("2 results"));
    // Wrong schema tag, empty results, a missing flows column, and a zero
    // timing must all fail.
    for (name, body) in [
        (
            "schema",
            r#"{"schema": "other", "results": [], "speedup": {}}"#,
        ),
        (
            "empty",
            r#"{"schema": "ifsim-bench-fabric-v2", "results": [], "speedup": {"x": 1.0}}"#,
        ),
        (
            "flows",
            r#"{"schema": "ifsim-bench-fabric-v2",
               "results": [{"id": "a", "mean_ns": 1.0, "min_ns": 1.0, "iters": 1}],
               "speedup": {"x": 1.0}}"#,
        ),
        (
            "timing",
            r#"{"schema": "ifsim-bench-fabric-v2",
               "results": [{"id": "a", "flows": 1, "mean_ns": 0.0, "min_ns": 0.0, "iters": 1}],
               "speedup": {"x": 1.0}}"#,
        ),
    ] {
        let bad = dir.join(format!("bad-{name}.json"));
        std::fs::write(&bad, body).unwrap();
        let out = lint().arg("--bench").arg(&bad).output().expect("lint");
        assert!(!out.status.success(), "{name} summary accepted");
    }
    // The v1 shape (top-level flows, no per-result column) is explicitly
    // superseded, with an error naming the replacement schema.
    let v1 = dir.join("bench-v1.json");
    std::fs::write(
        &v1,
        r#"{"schema": "ifsim-bench-fabric-v1", "flows": 64,
           "results": [{"id": "a", "mean_ns": 1.0, "min_ns": 1.0, "iters": 1}],
           "speedup": {"x": 1.0}}"#,
    )
    .unwrap();
    let out = lint().arg("--bench").arg(&v1).output().expect("lint");
    assert!(!out.status.success(), "superseded v1 summary accepted");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("superseded") && err.contains("v2"),
        "v1 rejection must point at v2: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
