//! Smoke tests for the `repro` and `mgpu-bench` binaries: argument
//! handling, output shape, and exit codes.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn mgpu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mgpu-bench"))
}

#[test]
fn repro_list_names_every_artifact() {
    let out = repro().arg("--list").output().expect("run repro");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in ["fig1", "table1", "fig6b", "fig12", "ext-mi300a"] {
        assert!(text.contains(id), "missing {id} in --list");
    }
}

#[test]
fn repro_runs_a_single_experiment_and_reports_checks() {
    let out = repro()
        .args(["--quick", "--reps", "1", "fig6a"])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "exit: {:?}", out.status);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fig6a"));
    assert!(text.contains("[PASS]"));
    assert!(text.contains("checks passed"));
}

#[test]
fn repro_rejects_unknown_ids_and_options() {
    let out = repro().arg("--bogus").output().expect("run repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn repro_writes_csv_artifacts() {
    let dir = std::env::temp_dir().join(format!("ifsim-cli-test-{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--reps", "1", "--csv"])
        .arg(&dir)
        .arg("fig6a")
        .output()
        .expect("run repro");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("fig6a.csv")).expect("artifact written");
    assert!(csv.starts_with("src\\dst"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mgpu_bench_osu_bw_prints_a_bandwidth_row() {
    let out = mgpu()
        .args(["osu-bw", "--dst", "2", "--reps", "1"])
        .output()
        .expect("run mgpu-bench");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GCD0 -> GCD2"));
    assert!(text.contains("Bandwidth"));
    // Single link with SDMA: ~37.5 GB/s appears in the row.
    assert!(text.contains("37.5"), "{text}");
}

#[test]
fn mgpu_bench_doctor_exit_code_reflects_health() {
    let ok = mgpu()
        .args(["doctor", "--reps", "1", "--size", "16777216"])
        .output()
        .expect("run doctor");
    assert!(ok.status.success(), "healthy node exits 0");
    let sick = mgpu()
        .args([
            "doctor", "--reps", "1", "--size", "16777216", "--derate", "0,1,0.4",
        ])
        .output()
        .expect("run doctor");
    assert!(!sick.status.success(), "degraded node exits non-zero");
    assert!(String::from_utf8_lossy(&sick.stdout).contains("DEGRADED"));
}

#[test]
fn mgpu_bench_usage_on_no_command() {
    let out = mgpu().output().expect("run mgpu-bench");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
