//! Component-level Criterion benches: the simulator's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use ifsim_core::des::Time;
use ifsim_core::fabric::{FlowNet, FlowSpec, SegmentMap};
use ifsim_core::hip::{EnvConfig, HipSim, HostAllocFlags, KernelSpec, MemcpyKind};
use ifsim_core::topology::{GcdId, NodeTopology, RoutePolicy, Router};
use std::hint::black_box;

fn bench_router(c: &mut Criterion) {
    let topo = NodeTopology::frontier();
    c.bench_function("router/all_pairs_construction", |b| {
        b.iter(|| black_box(Router::new(black_box(&topo))))
    });
    let router = Router::new(&topo);
    c.bench_function("router/route_lookup", |b| {
        b.iter(|| {
            black_box(router.gcd_route(
                black_box(GcdId(1)),
                black_box(GcdId(7)),
                RoutePolicy::MaxBandwidth,
            ))
        })
    });
}

fn bench_flownet(c: &mut Criterion) {
    let topo = NodeTopology::frontier();
    let router = Router::new(&topo);
    c.bench_function("flownet/8_concurrent_flows_cycle", |b| {
        b.iter(|| {
            let mut net = FlowNet::new(SegmentMap::new(&topo));
            for i in 0..8u8 {
                let a = GcdId(i);
                let z = GcdId((i + 3) % 8);
                let p = router.gcd_route(a, z, RoutePolicy::MaxBandwidth);
                let segs = net.segmap().path_segments(&topo, p, true);
                net.add_flow(Time::ZERO, FlowSpec::new(segs, 1e6, 0.87));
            }
            while net.complete_next().is_some() {}
            black_box(net.recomputes())
        })
    });
}

fn bench_runtime(c: &mut Criterion) {
    c.bench_function("runtime/construction", |b| {
        b.iter(|| black_box(HipSim::new(EnvConfig::default())))
    });
    c.bench_function("runtime/blocking_memcpy_1mib", |b| {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(0);
        let host = hip
            .host_malloc(1 << 20, HostAllocFlags::coherent())
            .unwrap();
        let dev = hip.malloc(1 << 20).unwrap();
        b.iter(|| {
            hip.memcpy(dev, 0, host, 0, 1 << 20, MemcpyKind::HostToDevice)
                .unwrap();
            black_box(hip.now())
        })
    });
    c.bench_function("runtime/kernel_launch_sync", |b| {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(0);
        let a = hip.malloc(1 << 20).unwrap();
        let d = hip.malloc(1 << 20).unwrap();
        b.iter(|| {
            hip.launch_kernel(KernelSpec::StreamCopy {
                src: a,
                dst: d,
                elems: 1 << 18,
            })
            .unwrap();
            hip.device_synchronize().unwrap();
            black_box(hip.now())
        })
    });
}

fn bench_collectives(c: &mut Criterion) {
    use ifsim_core::coll::schedule::RankBuffers;
    use ifsim_core::coll::{Collective, RcclComm};
    c.bench_function("collectives/rccl_allreduce_8x1mib", |b| {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(0);
        let comm = RcclComm::new(&mut hip, (0..8).collect()).unwrap();
        let elems = (1usize << 20) / 4;
        let mut send = Vec::new();
        let mut recv = Vec::new();
        for r in 0..8 {
            hip.set_device(r).unwrap();
            send.push(hip.malloc(1 << 20).unwrap());
            recv.push(hip.malloc(1 << 20).unwrap());
        }
        let bufs = RankBuffers { send, recv };
        b.iter(|| {
            black_box(
                comm.collective(&mut hip, Collective::AllReduce, &bufs, elems, 0)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_router,
    bench_flownet,
    bench_runtime,
    bench_collectives
);
criterion_main!(benches);
