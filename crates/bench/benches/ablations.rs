//! Ablation harness: re-runs key measurements with one design choice
//! toggled, printing simulated before/after so each mechanism's
//! contribution is visible. These are the design decisions DESIGN.md §6
//! calls out.
//!
//! Runs under `cargo bench` as a custom (non-Criterion) harness because the
//! interesting output is the *simulated* metric, not host wall time.

use ifsim_core::des::units::{GIB, MIB};
use ifsim_core::fabric::latency::measured_peer_latency;
use ifsim_core::fabric::Calibration;
use ifsim_core::hip::{EnvConfig, HipSim, KernelSpec};
use ifsim_core::microbench::comm_scope::{h2d_bandwidth, H2dInterface};
use ifsim_core::microbench::{osu, rccl_tests, BenchConfig};
use ifsim_core::topology::{GcdId, NodeTopology, RoutePolicy, Router};

fn main() {
    // `cargo bench` passes flags like --bench; this harness has no options.
    println!("=== ifsim ablation studies ===\n");
    ablate_routing_policy();
    ablate_sdma();
    ablate_migration_page_size();
    ablate_ring_construction();
    ablate_managed_crossover();
    ablate_mi300a_coherence();
    println!("done.");
}

/// What if the coherence penalty were lifted (MI300A-class cache-coherent
/// interconnect, paper §II-C)? Re-run the managed zero-copy and migration
/// measurements under the MI300A-flavoured calibration.
fn ablate_mi300a_coherence() {
    println!("--- MI250X vs MI300A-like coherence model ---");
    for (label, calib) in [
        ("MI250X (coherent = uncached)", Calibration::default()),
        ("MI300A-like (coherent cached)", Calibration::mi300a_like()),
    ] {
        let bytes = 256 * MIB;
        let run = |env: ifsim_core::hip::EnvConfig, calib: &Calibration| {
            let mut hip = ifsim_core::hip::HipSim::with_config(
                ifsim_core::topology::NodeTopology::frontier(),
                calib.clone(),
                env,
                7,
            );
            hip.mem_mut().set_phantom_threshold(0);
            let managed = hip.malloc_managed(bytes).unwrap();
            let dev = hip.malloc(bytes).unwrap();
            let t0 = hip.now();
            hip.launch_kernel(KernelSpec::StreamCopy {
                src: managed,
                dst: dev,
                elems: (bytes / 4) as usize,
            })
            .unwrap();
            hip.device_synchronize().unwrap();
            bytes as f64 / (hip.now() - t0).as_secs() / 1e9
        };
        let zc = run(ifsim_core::hip::EnvConfig::default(), &calib);
        let mig = run(ifsim_core::hip::EnvConfig::with_xnack(), &calib);
        println!("  {label}: zero-copy {zc:.1} GB/s, first-touch migration {mig:.1} GB/s");
    }
    println!();
}

/// Routing policy: the (1,7)/(3,5) latency outliers exist *because* the
/// runtime routes for bandwidth. Shortest-hop routing removes them.
fn ablate_routing_policy() {
    println!("--- routing policy: bandwidth-maximizing vs shortest-hop ---");
    let topo = NodeTopology::frontier();
    let router = Router::new(&topo);
    let calib = Calibration::default();
    for (a, b) in [(1u8, 7u8), (3, 5)] {
        let bw_path = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::MaxBandwidth);
        let sh_path = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::ShortestHop);
        let bw_lat = measured_peer_latency(&topo, bw_path, &calib).as_us();
        let sh_lat = measured_peer_latency(&topo, sh_path, &calib).as_us();
        println!(
            "  GCD{a}-GCD{b}: max-bandwidth route {} hops / {:.1} us ({:.0} GB/s); \
             shortest route {} hops / {:.1} us ({:.0} GB/s)",
            bw_path.hops(),
            bw_lat,
            bw_path.bottleneck_per_dir(&topo) / 1e9,
            sh_path.hops(),
            sh_lat,
            sh_path.bottleneck_per_dir(&topo) / 1e9,
        );
    }
    println!();
}

/// SDMA engines: the Fig. 6c/10 mechanism.
fn ablate_sdma() {
    println!("--- SDMA engines on/off (hipMemcpyPeer over the quad link) ---");
    for (label, env) in [
        ("SDMA enabled ", EnvConfig::default()),
        ("SDMA disabled", EnvConfig::without_sdma()),
    ] {
        let mut hip = HipSim::new(env);
        hip.mem_mut().set_phantom_threshold(0);
        hip.enable_all_peer_access().unwrap();
        let bytes = GIB;
        hip.set_device(0).unwrap();
        let src = hip.malloc(bytes).unwrap();
        hip.set_device(1).unwrap();
        let dst = hip.malloc(bytes).unwrap();
        let t0 = hip.now();
        hip.memcpy_peer(dst, 1, src, 0, bytes).unwrap();
        let bw = bytes as f64 / (hip.now() - t0).as_secs() / 1e9;
        println!("  {label}: {bw:.1} GB/s of the 200 GB/s link");
    }
    println!();
}

/// XNACK migration granularity: 4 KiB vs 2 MiB pages.
fn ablate_migration_page_size() {
    println!("--- XNACK migration page size ---");
    for (label, page) in [("4 KiB pages", 4096u64), ("2 MiB pages", 2 << 20)] {
        let mut hip = HipSim::new(EnvConfig::with_xnack());
        hip.mem_mut().set_phantom_threshold(0);
        hip.mem_mut().set_managed_page_size(page);
        let bytes = 64 * MIB;
        let managed = hip.malloc_managed(bytes).unwrap();
        let dev = hip.malloc(bytes).unwrap();
        let t0 = hip.now();
        hip.launch_kernel(KernelSpec::StreamCopy {
            src: managed,
            dst: dev,
            elems: (bytes / 4) as usize,
        })
        .unwrap();
        hip.device_synchronize().unwrap();
        let bw = bytes as f64 / (hip.now() - t0).as_secs() / 1e9;
        println!("  {label}: first-touch migration at {bw:.1} GB/s");
    }
    println!();
}

/// RCCL ring construction: the 7-to-8-rank dip mechanism.
fn ablate_ring_construction() {
    println!("--- RCCL ring: generic sub-node ring vs full-node hardware ring ---");
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;
    for n in [7usize, 8] {
        let us = rccl_tests::rccl_collective_latency(
            &cfg,
            ifsim_core::coll::Collective::AllReduce,
            n,
            MIB,
        );
        println!("  AllReduce, {n} ranks: {us:.1} us");
    }
    println!();
}

/// The managed zero-copy 32 MiB crossover, and MPI-vs-direct overhead.
fn ablate_managed_crossover() {
    println!("--- managed zero-copy working-set crossover ---");
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;
    for bytes in [16 * MIB, 32 * MIB, 64 * MIB, 256 * MIB] {
        let bw = h2d_bandwidth(&cfg, H2dInterface::ManagedZeroCopy, bytes);
        println!("  {:>4} MiB working set: {bw:.1} GB/s", bytes / MIB);
    }
    println!();
    println!("--- MPI software overhead vs direct peer kernels (1 GiB, single link) ---");
    let mpi = osu::osu_p2p_bw(&cfg, 2, GIB, false);
    let direct = ifsim_core::microbench::stream::direct_p2p_unidirectional(&cfg, 2, GIB);
    println!(
        "  direct kernel {direct:.1} GB/s, MPI (SDMA off) {mpi:.1} GB/s ({:.0} % deficit)",
        (1.0 - mpi / direct) * 100.0
    );
    println!();
}
