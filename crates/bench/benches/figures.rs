//! End-to-end Criterion benches: one per paper table/figure.
//!
//! Each bench runs the complete experiment pipeline (runtime construction,
//! benchmark drivers, checks) at smoke settings. Wall-clock here measures
//! the *simulator*, not the simulated machine — the simulated metrics are
//! the `repro` binary's output.

use criterion::{criterion_group, criterion_main, Criterion};
use ifsim_core::{registry, BenchConfig};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for exp in registry::all() {
        // The big sweeps dominate; keep every figure represented but let
        // Criterion know these are seconds-scale where needed.
        group.bench_function(exp.id, |b| {
            b.iter(|| {
                let r = exp.run(black_box(&cfg));
                assert!(r.all_passed(), "{}", r.report());
                black_box(r.checks.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
