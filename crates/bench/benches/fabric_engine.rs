//! Engine-rework benches: the reworked `FlowNet` (CSR arena, deferred
//! batched recompute, lazily-invalidated completion heap) against the
//! pre-rework engine preserved as `ReferenceNet`.
//!
//! Unlike the other bench targets this one writes a machine-readable
//! summary, `BENCH_fabric.json` at the workspace root (override with
//! `BENCH_FABRIC_OUT`), so CI and `telemetry-lint --bench` can check that
//! the rework's speedups don't regress. The headline number is the 64-flow
//! add/drain cycle — admit one round of flows, then drain every completion —
//! which exercises admission, recompute, and completion peeking together.

use criterion::{BenchResult, Criterion};
use ifsim_core::des::Time;
use ifsim_core::fabric::reference::ReferenceNet;
use ifsim_core::fabric::{FlowNet, FlowSpec, SegmentMap};
use ifsim_core::telemetry::json::{self, Map, Value};
use ifsim_core::topology::{GcdId, LinkId, NodeTopology, RoutePolicy, Router};
use std::hint::black_box;
use std::path::PathBuf;

const FLOWS: usize = 64;

/// A fixed 64-flow round over the Frontier topology: every GCD pair class,
/// a mix of duplex-pool and plain routing, payloads spread over ~2 MiB.
fn round(topo: &NodeTopology) -> Vec<FlowSpec> {
    let router = Router::new(topo);
    let segmap = SegmentMap::new(topo);
    (0..FLOWS)
        .map(|i| {
            let src = (i % 8) as u8;
            let dst = (src + 1 + (i as u8 / 8) % 7) % 8;
            let p = router.gcd_route(GcdId(src), GcdId(dst), RoutePolicy::MaxBandwidth);
            let segs = segmap.path_segments(topo, p, i % 2 == 0);
            FlowSpec::new(segs, 1e6 + i as f64 * 6.4e4, 0.87)
        })
        .collect()
}

fn bench_add_drain_cycle(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("add_drain_cycle");
    g.sample_size(150);
    // Both nets are built once and reused across iterations (a drain leaves
    // them empty), so the cycle times steady-state engine behavior rather
    // than `SegmentMap` construction.
    {
        let mut net = FlowNet::new(SegmentMap::new(topo));
        g.bench_function("engine/add_drain_cycle_64", |b| {
            b.iter(|| {
                let t = net.now();
                net.add_flows(t, specs.iter().cloned());
                while net.complete_next().is_some() {}
                black_box(net.recomputes())
            })
        });
    }
    {
        let mut net = ReferenceNet::new(SegmentMap::new(topo));
        g.bench_function("reference/add_drain_cycle_64", |b| {
            b.iter(|| {
                let t = net.now();
                for spec in specs {
                    net.add_flow(t, spec.clone());
                }
                while net.complete_next().is_some() {}
                black_box(net.recomputes())
            })
        });
    }
    g.finish();
}

fn bench_admission(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("admission");
    g.sample_size(150);
    g.bench_function("engine/batched_admission_64", |b| {
        b.iter(|| {
            let mut net = FlowNet::new(SegmentMap::new(topo));
            let ids = net.add_flows(Time::ZERO, specs.iter().cloned());
            // One deferred recompute pays for the whole batch; force it so
            // admission cost includes the fair-share solve.
            black_box(net.rate_of(ids[0]).unwrap())
        })
    });
    g.bench_function("reference/serial_admission_64", |b| {
        b.iter(|| {
            let mut net = ReferenceNet::new(SegmentMap::new(topo));
            let mut first = None;
            for spec in specs {
                let id = net.add_flow(Time::ZERO, spec.clone());
                first.get_or_insert(id);
            }
            black_box(net.rate_of(first.unwrap()).unwrap())
        })
    });
    g.finish();
}

fn bench_recompute(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("recompute");
    g.sample_size(300);
    {
        let mut net = FlowNet::new(SegmentMap::new(topo));
        let ids = net.add_flows(Time::ZERO, specs.iter().cloned());
        let probe = ids[0];
        g.bench_function("engine/steady_recompute_64", |b| {
            b.iter(|| {
                // Each capacity flip dirties the table; rate_of flushes,
                // so every iteration is exactly two full solver passes.
                net.set_link_factor(LinkId(0), 0.5);
                black_box(net.rate_of(probe).unwrap());
                net.set_link_factor(LinkId(0), 1.0);
                black_box(net.rate_of(probe).unwrap())
            })
        });
    }
    {
        let mut net = ReferenceNet::new(SegmentMap::new(topo));
        let mut probe = None;
        for spec in specs {
            let id = net.add_flow(Time::ZERO, spec.clone());
            probe.get_or_insert(id);
        }
        let probe = probe.unwrap();
        g.bench_function("reference/steady_recompute_64", |b| {
            b.iter(|| {
                net.set_link_factor(LinkId(0), 0.5);
                black_box(net.rate_of(probe).unwrap());
                net.set_link_factor(LinkId(0), 1.0);
                black_box(net.rate_of(probe).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_peek(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("peek");
    g.sample_size(2000);
    {
        let mut net = FlowNet::new(SegmentMap::new(topo));
        net.add_flows(Time::ZERO, specs.iter().cloned());
        g.bench_function("engine/peek_completion_64", |b| {
            b.iter(|| black_box(net.peek_completion()))
        });
    }
    {
        let mut net = ReferenceNet::new(SegmentMap::new(topo));
        for spec in specs {
            net.add_flow(Time::ZERO, spec.clone());
        }
        g.bench_function("reference/peek_completion_64", |b| {
            b.iter(|| black_box(net.peek_completion()))
        });
    }
    g.finish();
}

fn min_of(results: &[BenchResult], id: &str) -> f64 {
    results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("bench {id} did not run"))
        .min_ns
}

fn render_report(results: &[BenchResult]) -> String {
    let mut root = Map::new();
    root.insert("schema", Value::from("ifsim-bench-fabric-v1"));
    root.insert("flows", Value::from(FLOWS));
    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            let mut row = Map::new();
            row.insert("id", Value::from(r.id.as_str()));
            row.insert("mean_ns", Value::from(r.mean_ns));
            row.insert("min_ns", Value::from(r.min_ns));
            row.insert("iters", Value::from(r.iters));
            Value::from(row)
        })
        .collect();
    root.insert("results", Value::from(rows));
    // Speedups compare fastest iterations: both benches are deterministic,
    // so background load can only inflate a sample, and the per-iteration
    // minimum is the robust estimator of true cost on a shared machine.
    let mut speedups = Map::new();
    for (name, engine, reference) in [
        (
            "add_drain_cycle_64",
            "engine/add_drain_cycle_64",
            "reference/add_drain_cycle_64",
        ),
        (
            "admission_64",
            "engine/batched_admission_64",
            "reference/serial_admission_64",
        ),
        (
            "recompute_64",
            "engine/steady_recompute_64",
            "reference/steady_recompute_64",
        ),
        (
            "peek_completion_64",
            "engine/peek_completion_64",
            "reference/peek_completion_64",
        ),
    ] {
        speedups.insert(
            name,
            Value::from(min_of(results, reference) / min_of(results, engine)),
        );
    }
    root.insert("speedup", Value::from(speedups));
    json::to_string_pretty(&Value::from(root))
}

fn main() {
    let topo = NodeTopology::frontier();
    let specs = round(&topo);
    let mut c = Criterion::default();
    bench_add_drain_cycle(&mut c, &topo, &specs);
    bench_admission(&mut c, &topo, &specs);
    bench_recompute(&mut c, &topo, &specs);
    bench_peek(&mut c, &topo, &specs);

    let path = std::env::var_os("BENCH_FABRIC_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fabric.json")
        });
    let report = render_report(c.results());
    std::fs::write(&path, &report).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("wrote {}", path.display());
}
