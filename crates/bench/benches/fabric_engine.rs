//! Engine-rework benches: the reworked `FlowNet` (CSR arena, deferred
//! batched recompute, lazily-invalidated completion heap) against the
//! pre-rework engine preserved as `ReferenceNet`.
//!
//! Unlike the other bench targets this one writes a machine-readable
//! summary, `BENCH_fabric.json` at the workspace root (override with
//! `BENCH_FABRIC_OUT`), so CI and `telemetry-lint --bench` can check that
//! the rework's speedups don't regress. The headline number is the 64-flow
//! add/drain cycle — admit one round of flows, then drain every completion —
//! which exercises admission, recompute, and completion peeking together.
//!
//! On top of the 64-flow engine-vs-reference suite, a scaling sweep runs
//! the add/drain cycle and a mid-flight fault recompute at 1k/10k/100k
//! flows, pitting the incremental dirty-set solver (the default, including
//! its rate-neutral drain elision) against the same engine pinned to full
//! water-fills per pass (`set_incremental_threshold(0.0)`). The pre-rework `ReferenceNet` is
//! quadratic and sits out the sweep. `BENCH_FABRIC_MAX_FLOWS` caps the
//! sweep (CI runs with `10000` to keep the smoke step bounded; the 100k
//! full-baseline add/drain is skipped unconditionally — thousands of
//! O(100k) passes take minutes and the 10k pair already pins the ratio).

use criterion::{BenchResult, Criterion};
use ifsim_core::des::Time;
use ifsim_core::fabric::reference::ReferenceNet;
use ifsim_core::fabric::{FlowNet, FlowSpec, SegmentMap};
use ifsim_core::telemetry::json::{self, Map, Value};
use ifsim_core::topology::{GcdId, LinkId, NodeTopology, RoutePolicy, Router};
use std::hint::black_box;
use std::path::PathBuf;

const FLOWS: usize = 64;

/// Scaling-sweep flow counts; each also names the bench ids (`_1k` …).
const SCALES: &[(usize, &str)] = &[(1_000, "1k"), (10_000, "10k"), (100_000, "100k")];

/// Sweep cap from `BENCH_FABRIC_MAX_FLOWS` (default: run everything).
fn max_scale_flows() -> usize {
    std::env::var("BENCH_FABRIC_MAX_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX)
}

/// A fixed 64-flow round over the Frontier topology: every GCD pair class,
/// a mix of duplex-pool and plain routing, payloads spread over ~2 MiB.
fn round(topo: &NodeTopology) -> Vec<FlowSpec> {
    let router = Router::new(topo);
    let segmap = SegmentMap::new(topo);
    (0..FLOWS)
        .map(|i| {
            let src = (i % 8) as u8;
            let dst = (src + 1 + (i as u8 / 8) % 7) % 8;
            let p = router.gcd_route(GcdId(src), GcdId(dst), RoutePolicy::MaxBandwidth);
            let segs = segmap.path_segments(topo, p, i % 2 == 0);
            FlowSpec::new(segs, 1e6 + i as f64 * 6.4e4, 0.87)
        })
        .collect()
}

fn bench_add_drain_cycle(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("add_drain_cycle");
    g.sample_size(150);
    // Both nets are built once and reused across iterations (a drain leaves
    // them empty), so the cycle times steady-state engine behavior rather
    // than `SegmentMap` construction.
    {
        let mut net = FlowNet::new(SegmentMap::new(topo));
        g.bench_function("engine/add_drain_cycle_64", |b| {
            b.iter(|| {
                let t = net.now();
                net.add_flows(t, specs.iter().cloned());
                while net.complete_next().is_some() {}
                black_box(net.recomputes())
            })
        });
    }
    {
        let mut net = ReferenceNet::new(SegmentMap::new(topo));
        g.bench_function("reference/add_drain_cycle_64", |b| {
            b.iter(|| {
                let t = net.now();
                for spec in specs {
                    net.add_flow(t, spec.clone());
                }
                while net.complete_next().is_some() {}
                black_box(net.recomputes())
            })
        });
    }
    g.finish();
}

fn bench_admission(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("admission");
    g.sample_size(150);
    g.bench_function("engine/batched_admission_64", |b| {
        b.iter(|| {
            let mut net = FlowNet::new(SegmentMap::new(topo));
            let ids = net.add_flows(Time::ZERO, specs.iter().cloned());
            // One deferred recompute pays for the whole batch; force it so
            // admission cost includes the fair-share solve.
            black_box(net.rate_of(ids[0]).unwrap())
        })
    });
    g.bench_function("reference/serial_admission_64", |b| {
        b.iter(|| {
            let mut net = ReferenceNet::new(SegmentMap::new(topo));
            let mut first = None;
            for spec in specs {
                let id = net.add_flow(Time::ZERO, spec.clone());
                first.get_or_insert(id);
            }
            black_box(net.rate_of(first.unwrap()).unwrap())
        })
    });
    g.finish();
}

fn bench_recompute(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("recompute");
    g.sample_size(300);
    {
        let mut net = FlowNet::new(SegmentMap::new(topo));
        let ids = net.add_flows(Time::ZERO, specs.iter().cloned());
        let probe = ids[0];
        g.bench_function("engine/steady_recompute_64", |b| {
            b.iter(|| {
                // Each capacity flip dirties the table; rate_of flushes,
                // so every iteration is exactly two full solver passes.
                net.set_link_factor(LinkId(0), 0.5);
                black_box(net.rate_of(probe).unwrap());
                net.set_link_factor(LinkId(0), 1.0);
                black_box(net.rate_of(probe).unwrap())
            })
        });
    }
    {
        let mut net = ReferenceNet::new(SegmentMap::new(topo));
        let mut probe = None;
        for spec in specs {
            let id = net.add_flow(Time::ZERO, spec.clone());
            probe.get_or_insert(id);
        }
        let probe = probe.unwrap();
        g.bench_function("reference/steady_recompute_64", |b| {
            b.iter(|| {
                net.set_link_factor(LinkId(0), 0.5);
                black_box(net.rate_of(probe).unwrap());
                net.set_link_factor(LinkId(0), 1.0);
                black_box(net.rate_of(probe).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_peek(c: &mut Criterion, topo: &NodeTopology, specs: &[FlowSpec]) {
    let mut g = c.benchmark_group("peek");
    g.sample_size(2000);
    {
        let mut net = FlowNet::new(SegmentMap::new(topo));
        net.add_flows(Time::ZERO, specs.iter().cloned());
        g.bench_function("engine/peek_completion_64", |b| {
            b.iter(|| black_box(net.peek_completion()))
        });
    }
    {
        let mut net = ReferenceNet::new(SegmentMap::new(topo));
        for spec in specs {
            net.add_flow(Time::ZERO, spec.clone());
        }
        g.bench_function("reference/peek_completion_64", |b| {
            b.iter(|| black_box(net.peek_completion()))
        });
    }
    g.finish();
}

/// A partitioned large-flow population: every directed single-hop GCD pair
/// on Frontier is one *class* (a disjoint one-segment connected component of
/// the segment↔flow graph), and `n` flows are dealt round-robin across the
/// classes. Payloads are identical within a class — same rate, so a class
/// drains as a burst of zero-interval completions — and distinct across
/// classes, so the 20-odd components churn independently.
///
/// The mix mirrors the measured fabric: most classes are *engine-capped*
/// (each flow carries a per-flow cap that under-subscribes its link to 90%,
/// the SDMA-limited regime where transfers never reach wire bandwidth), and
/// every sixth class is *contended* (uncapped flows saturating the link).
/// Contended-class departures free binding capacity, so the incremental
/// solver re-solves just that class; engine-capped departures are provably
/// rate-neutral, so the pass elides the solver outright. The full baseline
/// pays an O(population) water-fill for every one of those events. Returns
/// the specs plus the link of the first (contended) class, the victim for
/// the fault-recompute benches.
fn scaling_population(topo: &NodeTopology, n: usize) -> (Vec<FlowSpec>, LinkId) {
    let router = Router::new(topo);
    let segmap = SegmentMap::new(topo);
    let mut classes = Vec::new();
    let mut fault_link = None;
    for a in 0..8u8 {
        for b in 0..8u8 {
            if a == b {
                continue;
            }
            let p = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::MaxBandwidth);
            if p.links.len() != 1 {
                continue;
            }
            let segs = segmap.path_segments(topo, p, false);
            assert_eq!(segs.len(), 1, "single-hop SDMA route is one segment");
            if classes.contains(&segs) {
                continue;
            }
            fault_link.get_or_insert(p.links[0]);
            classes.push(segs);
        }
    }
    assert!(
        classes.len() > 8,
        "expected many disjoint single-hop classes"
    );
    let nclasses = classes.len();
    // Class population under round-robin dealing: the first n % nclasses
    // classes get one extra flow.
    let class_size = |c: usize| n / nclasses + usize::from(c < n % nclasses);
    let specs = (0..n)
        .map(|i| {
            let class = i % nclasses;
            let spec = FlowSpec::new(classes[class].clone(), 8e5 + class as f64 * 6.4e4, 1.0);
            if class % 6 == 0 {
                // Contended class: uncapped flows split the saturated link.
                spec
            } else {
                // Engine-capped class: the per-flow SDMA ceiling loads the
                // link to 90%, leaving it slack and non-binding.
                let link_cap = segmap.capacity(classes[class][0]);
                spec.with_cap(link_cap * 0.9 / class_size(class) as f64)
            }
        })
        .collect();
    (specs, fault_link.expect("at least one single-hop class"))
}

fn bench_scaling(c: &mut Criterion, topo: &NodeTopology) {
    let cap = max_scale_flows();
    for &(n, tag) in SCALES {
        if n > cap {
            eprintln!("skipping {tag}-flow scaling benches (BENCH_FABRIC_MAX_FLOWS)");
            continue;
        }
        let (specs, fault_link) = scaling_population(topo, n);
        let mut g = c.benchmark_group(&format!("scaling_{tag}"));
        g.sample_size(match n {
            0..=1_000 => 30,
            1_001..=10_000 => 10,
            _ => 3,
        });
        let cycle = |net: &mut FlowNet| {
            let t = net.now();
            net.add_flows(t, specs.iter().cloned());
            while net.complete_next().is_some() {}
            black_box(net.recomputes())
        };
        {
            let mut net = FlowNet::new(SegmentMap::new(topo));
            g.bench_function(&format!("engine/add_drain_cycle_{tag}"), |b| {
                b.iter(|| cycle(&mut net))
            });
        }
        if n <= 10_000 {
            let mut net = FlowNet::new(SegmentMap::new(topo));
            net.set_incremental_threshold(0.0);
            g.bench_function(&format!("full/add_drain_cycle_{tag}"), |b| {
                b.iter(|| cycle(&mut net))
            });
        }
        // Mid-flight fault recompute over a resident population: two
        // capacity flips, hence two solver passes, per iteration (matching
        // the 64-flow recompute bench shape).
        let admit = |net: &mut FlowNet| {
            let t = net.now();
            net.add_flows(t, specs.iter().cloned())[0]
        };
        {
            let mut net = FlowNet::new(SegmentMap::new(topo));
            let probe = admit(&mut net);
            g.bench_function(&format!("engine/fault_recompute_{tag}"), |b| {
                b.iter(|| {
                    net.set_link_factor(fault_link, 0.5);
                    black_box(net.rate_of(probe).unwrap());
                    net.set_link_factor(fault_link, 1.0);
                    black_box(net.rate_of(probe).unwrap())
                })
            });
        }
        {
            let mut net = FlowNet::new(SegmentMap::new(topo));
            net.set_incremental_threshold(0.0);
            let probe = admit(&mut net);
            g.bench_function(&format!("full/fault_recompute_{tag}"), |b| {
                b.iter(|| {
                    net.set_link_factor(fault_link, 0.5);
                    black_box(net.rate_of(probe).unwrap());
                    net.set_link_factor(fault_link, 1.0);
                    black_box(net.rate_of(probe).unwrap())
                })
            });
        }
        g.finish();
    }
}

fn min_of(results: &[BenchResult], id: &str) -> f64 {
    results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("bench {id} did not run"))
        .min_ns
}

fn try_min_of(results: &[BenchResult], id: &str) -> Option<f64> {
    results.iter().find(|r| r.id == id).map(|r| r.min_ns)
}

/// The flow-count axis of a bench id, from its `_64`/`_1k`/… suffix.
fn flows_of(id: &str) -> usize {
    for &(n, tag) in SCALES {
        if id.ends_with(&format!("_{tag}")) {
            return n;
        }
    }
    FLOWS
}

fn render_report(results: &[BenchResult]) -> String {
    let mut root = Map::new();
    root.insert("schema", Value::from("ifsim-bench-fabric-v2"));
    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            let mut row = Map::new();
            row.insert("id", Value::from(r.id.as_str()));
            row.insert("flows", Value::from(flows_of(&r.id)));
            row.insert("mean_ns", Value::from(r.mean_ns));
            row.insert("min_ns", Value::from(r.min_ns));
            row.insert("iters", Value::from(r.iters));
            Value::from(row)
        })
        .collect();
    root.insert("results", Value::from(rows));
    // Speedups compare fastest iterations: both benches are deterministic,
    // so background load can only inflate a sample, and the per-iteration
    // minimum is the robust estimator of true cost on a shared machine.
    let mut speedups = Map::new();
    for (name, engine, reference) in [
        (
            "add_drain_cycle_64",
            "engine/add_drain_cycle_64",
            "reference/add_drain_cycle_64",
        ),
        (
            "admission_64",
            "engine/batched_admission_64",
            "reference/serial_admission_64",
        ),
        (
            "recompute_64",
            "engine/steady_recompute_64",
            "reference/steady_recompute_64",
        ),
        (
            "peek_completion_64",
            "engine/peek_completion_64",
            "reference/peek_completion_64",
        ),
    ] {
        speedups.insert(
            name,
            Value::from(min_of(results, reference) / min_of(results, engine)),
        );
    }
    // Scaling-sweep ratios: incremental engine vs the same engine forced to
    // full water-fills. Pairs whose members were capped out of the run
    // (BENCH_FABRIC_MAX_FLOWS, or the intentionally-skipped 100k full
    // add/drain baseline) are omitted rather than zero-filled.
    for &(_, tag) in SCALES {
        for kind in ["add_drain", "fault"] {
            let bench = match kind {
                "add_drain" => "add_drain_cycle",
                _ => "fault_recompute",
            };
            let (engine, full) = (
                format!("engine/{bench}_{tag}"),
                format!("full/{bench}_{tag}"),
            );
            if let (Some(e), Some(f)) = (try_min_of(results, &engine), try_min_of(results, &full)) {
                speedups.insert(
                    format!("incremental_vs_full_{kind}_{tag}"),
                    Value::from(f / e),
                );
            }
        }
    }
    root.insert("speedup", Value::from(speedups));
    json::to_string_pretty(&Value::from(root))
}

fn main() {
    let topo = NodeTopology::frontier();
    let specs = round(&topo);
    let mut c = Criterion::default();
    bench_add_drain_cycle(&mut c, &topo, &specs);
    bench_admission(&mut c, &topo, &specs);
    bench_recompute(&mut c, &topo, &specs);
    bench_peek(&mut c, &topo, &specs);
    bench_scaling(&mut c, &topo);

    let path = std::env::var_os("BENCH_FABRIC_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fabric.json")
        });
    let report = render_report(c.results());
    std::fs::write(&path, &report).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("wrote {}", path.display());
}
