#![warn(missing_docs)]

//! # ifsim-bench — benchmark harness
//!
//! Two entry points:
//!
//! - the **`repro`** binary regenerates every table and figure of the paper
//!   (`cargo run -p ifsim-bench --bin repro -- all`), printing the rows the
//!   paper reports and writing CSV artifacts plus a check summary;
//! - the **Criterion benches** (`cargo bench`) measure the simulator itself:
//!   per-figure end-to-end runs (`figures`), hot components (`components`),
//!   and the design-choice ablations called out in DESIGN.md (`ablations`).

pub use ifsim_core::telemetry;
pub use ifsim_core::{registry, BenchConfig, Experiment, ExperimentResult};

fn select(ids: &[String]) -> Vec<Experiment> {
    if ids.is_empty() {
        return registry::all();
    }
    ids.iter()
        .map(|id| {
            registry::by_id(id).unwrap_or_else(|| {
                panic!(
                    "unknown experiment '{id}'; available: {}",
                    registry::ids().join(", ")
                )
            })
        })
        .collect()
}

/// Run a list of experiment ids (or all when empty), returning results in
/// registry order. Unknown ids panic with the available set listed.
pub fn run_experiments(ids: &[String], cfg: &BenchConfig) -> Vec<ExperimentResult> {
    select(ids).iter().map(|e| e.run(cfg)).collect()
}

/// As [`run_experiments`], but each experiment runs under its own telemetry
/// collector; every result comes back paired with the merged timeline and
/// metrics of the simulators the experiment constructed.
pub fn run_experiments_instrumented(
    ids: &[String],
    cfg: &BenchConfig,
) -> Vec<(ExperimentResult, telemetry::CollectedTelemetry)> {
    select(ids)
        .iter()
        .map(|e| e.run_instrumented(cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_selected_experiments_in_order() {
        let cfg = BenchConfig::quick();
        let results = run_experiments(&["table1".into(), "fig6a".into()], &cfg);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "table1");
        assert_eq!(results[1].id, "fig6a");
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics_with_listing() {
        let cfg = BenchConfig::quick();
        let _ = run_experiments(&["fig99".into()], &cfg);
    }

    #[test]
    fn instrumented_run_pairs_results_with_telemetry() {
        let mut cfg = BenchConfig::quick();
        cfg.reps = 1;
        let pairs = run_experiments_instrumented(&["fig6b".into()], &cfg);
        assert_eq!(pairs.len(), 1);
        let (r, t) = &pairs[0];
        assert_eq!(r.id, "fig6b");
        assert!(t.sims() > 0, "the experiment's runtimes were observed");
        assert!(t.events().iter().any(|e| e.cat == "hip_op"));
    }
}
