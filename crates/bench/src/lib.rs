#![warn(missing_docs)]

//! # ifsim-bench — benchmark harness
//!
//! Two entry points:
//!
//! - the **`repro`** binary regenerates every table and figure of the paper
//!   (`cargo run -p ifsim-bench --bin repro -- all`), printing the rows the
//!   paper reports and writing CSV artifacts plus a check summary;
//! - the **Criterion benches** (`cargo bench`) measure the simulator itself:
//!   per-figure end-to-end runs (`figures`), hot components (`components`),
//!   and the design-choice ablations called out in DESIGN.md (`ablations`).

pub use ifsim_core::telemetry;
pub use ifsim_core::{registry, BenchConfig, Experiment, ExperimentResult};
pub use ifsim_scenario as scenario;

/// Resolve registry ids into experiments (empty selects everything),
/// panicking on unknown ids with the available set listed — the CLI
/// contract `repro` and `mgpu-bench exp` share.
pub fn select_experiments(ids: &[String]) -> Vec<Experiment> {
    select(ids)
}

/// Read, parse, and compile a scenario file into a runnable experiment.
/// Errors carry the file path and the offending field.
pub fn load_scenario(path: &std::path::Path) -> Result<Experiment, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let s = ifsim_scenario::Scenario::from_str(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    ifsim_scenario::compile(&s).map_err(|e| format!("{}: {e}", path.display()))
}

fn select(ids: &[String]) -> Vec<Experiment> {
    if ids.is_empty() {
        return registry::all();
    }
    ids.iter()
        .map(|id| {
            registry::by_id(id).unwrap_or_else(|| {
                panic!(
                    "unknown experiment '{id}'; available: {}",
                    registry::ids().join(", ")
                )
            })
        })
        .collect()
}

/// Run a list of experiment ids (or all when empty), returning results in
/// registry order. Unknown ids panic with the available set listed.
pub fn run_experiments(ids: &[String], cfg: &BenchConfig) -> Vec<ExperimentResult> {
    select(ids).iter().map(|e| e.run(cfg)).collect()
}

/// As [`run_experiments`], but each experiment runs under its own telemetry
/// collector; every result comes back paired with the merged timeline and
/// metrics of the simulators the experiment constructed.
pub fn run_experiments_instrumented(
    ids: &[String],
    cfg: &BenchConfig,
) -> Vec<(ExperimentResult, telemetry::CollectedTelemetry)> {
    select(ids)
        .iter()
        .map(|e| e.run_instrumented(cfg))
        .collect()
}

/// Fan the selected experiments out over a worker pool and hand the results
/// back in registry order, exactly as the serial driver would. Experiments
/// are independent by construction — each builds its own simulators from
/// `cfg` (same seed, same jitter stream regardless of scheduling) — so the
/// only parallelism-visible effect is wall-clock time.
fn run_pooled<T, F>(exps: Vec<Experiment>, cfg: &BenchConfig, jobs: usize, run: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&Experiment, &BenchConfig) -> T + Copy + Send + 'static,
{
    if jobs <= 1 || exps.len() <= 1 {
        return exps.iter().map(|e| run(e, cfg)).collect();
    }
    let pool = threadpool::ThreadPool::new(jobs.min(exps.len()));
    let (tx, rx) = std::sync::mpsc::channel();
    let n = exps.len();
    for (i, e) in exps.into_iter().enumerate() {
        let tx = tx.clone();
        let cfg = cfg.clone();
        pool.execute(move || {
            // A send can only fail if the receiver bailed early, which it
            // never does below; ignore the error to keep panics meaningful.
            let _ = tx.send((i, run(&e, &cfg)));
        });
    }
    drop(tx);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    pool.join();
    assert_eq!(pool.panic_count(), 0, "an experiment worker panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every index reported a result"))
        .collect()
}

/// As [`run_experiments`], with up to `jobs` experiments in flight at once.
/// Results come back in registry order; `jobs <= 1` degenerates to the
/// serial driver.
pub fn run_experiments_jobs(
    ids: &[String],
    cfg: &BenchConfig,
    jobs: usize,
) -> Vec<ExperimentResult> {
    run_pooled(select(ids), cfg, jobs, |e, cfg| e.run(cfg))
}

/// Run an explicit experiment set — registry selections, compiled
/// scenarios, or a mix — over the worker pool, results in submission
/// order. The set-based twin of [`run_experiments_jobs`].
pub fn run_set_jobs(
    exps: Vec<Experiment>,
    cfg: &BenchConfig,
    jobs: usize,
) -> Vec<ExperimentResult> {
    run_pooled(exps, cfg, jobs, |e, cfg| e.run(cfg))
}

/// Set-based twin of [`run_experiments_instrumented_jobs`].
pub fn run_set_instrumented_jobs(
    exps: Vec<Experiment>,
    cfg: &BenchConfig,
    jobs: usize,
) -> Vec<(ExperimentResult, telemetry::CollectedTelemetry)> {
    run_pooled(exps, cfg, jobs, |e, cfg| e.run_instrumented(cfg))
}

/// Set-based twin of [`run_experiments_dag_jobs`].
pub fn run_set_dag_jobs(
    exps: Vec<Experiment>,
    cfg: &BenchConfig,
    jobs: usize,
) -> Vec<(ExperimentResult, telemetry::CollectedTelemetry)> {
    run_pooled(exps, cfg, jobs, |e, cfg| e.run_instrumented_dag(cfg))
}

/// As [`run_experiments_instrumented`], with up to `jobs` experiments in
/// flight at once. The telemetry collector stack is thread-local, so each
/// worker installs its own per-experiment collector — parallel runs gather
/// exactly the telemetry the serial driver would.
pub fn run_experiments_instrumented_jobs(
    ids: &[String],
    cfg: &BenchConfig,
    jobs: usize,
) -> Vec<(ExperimentResult, telemetry::CollectedTelemetry)> {
    run_pooled(select(ids), cfg, jobs, |e, cfg| e.run_instrumented(cfg))
}

/// As [`run_experiments_instrumented_jobs`], additionally capturing each
/// run's causal dependency DAG (`Experiment::run_instrumented_dag`). The
/// graphs ride each experiment's `CollectedTelemetry` — workers gather
/// them under thread-local collectors and they survive the forwarding
/// absorb — so `--critpath-out` behaves identically under `--jobs N`.
pub fn run_experiments_dag_jobs(
    ids: &[String],
    cfg: &BenchConfig,
    jobs: usize,
) -> Vec<(ExperimentResult, telemetry::CollectedTelemetry)> {
    run_pooled(select(ids), cfg, jobs, |e, cfg| e.run_instrumented_dag(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_selected_experiments_in_order() {
        let cfg = BenchConfig::quick();
        let results = run_experiments(&["table1".into(), "fig6a".into()], &cfg);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "table1");
        assert_eq!(results[1].id, "fig6a");
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics_with_listing() {
        let cfg = BenchConfig::quick();
        let _ = run_experiments(&["fig99".into()], &cfg);
    }

    #[test]
    fn parallel_driver_matches_serial_results_and_order() {
        let mut cfg = BenchConfig::quick();
        cfg.reps = 1;
        let ids: Vec<String> = ["fig6b", "table1", "fig6a"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let serial = run_experiments(&ids, &cfg);
        let parallel = run_experiments_jobs(&ids, &cfg, 3);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.id, p.id);
            assert_eq!(s.report(), p.report(), "{} diverged under --jobs", s.id);
            assert_eq!(s.csv, p.csv, "{} CSV diverged under --jobs", s.id);
        }
    }

    #[test]
    fn parallel_instrumented_driver_collects_per_experiment_telemetry() {
        let mut cfg = BenchConfig::quick();
        cfg.reps = 1;
        let ids: Vec<String> = ["fig6a", "fig6b"].iter().map(|s| s.to_string()).collect();
        let pairs = run_experiments_instrumented_jobs(&ids, &cfg, 2);
        assert_eq!(pairs.len(), 2);
        for ((r, _), want) in pairs.iter().zip(&ids) {
            assert_eq!(r.id, want.as_str(), "submission order preserved");
        }
        // fig6b is the experiment known to construct observed runtimes (the
        // serial test above relies on the same fact): its telemetry must
        // arrive even though the collector lived on a worker thread.
        assert!(pairs[1].1.sims() > 0, "fig6b telemetry observed off-thread");
    }

    #[test]
    fn dag_jobs_driver_forwards_graphs_from_workers() {
        let mut cfg = BenchConfig::quick();
        cfg.reps = 1;
        let ids: Vec<String> = ["fig6a", "fig6b"].iter().map(|s| s.to_string()).collect();
        let serial = run_experiments_dag_jobs(&ids, &cfg, 1);
        let parallel = run_experiments_dag_jobs(&ids, &cfg, 2);
        assert_eq!(serial.len(), parallel.len());
        for ((rs, ts), (rp, tp)) in serial.iter().zip(&parallel) {
            assert_eq!(rs.report(), rp.report(), "{} diverged under --jobs", rs.id);
            assert_eq!(
                ts.dags().len(),
                tp.dags().len(),
                "{} graph count diverged under --jobs",
                rs.id
            );
        }
        // fig6b constructs observed runtimes, so graphs must be present —
        // and each analyzes to a path partitioning its makespan.
        let (_, t) = &parallel[1];
        assert!(!t.dags().is_empty(), "fig6b produced dependency graphs");
        for g in t.dags() {
            let p = telemetry::critpath::analyze(g);
            let sum: f64 = p.steps.iter().map(|s| s.end_ns - s.start_ns).sum();
            assert!((sum - p.makespan_ns).abs() <= 1e-6 * p.makespan_ns.max(1.0));
        }
    }

    #[test]
    fn instrumented_run_pairs_results_with_telemetry() {
        let mut cfg = BenchConfig::quick();
        cfg.reps = 1;
        let pairs = run_experiments_instrumented(&["fig6b".into()], &cfg);
        assert_eq!(pairs.len(), 1);
        let (r, t) = &pairs[0];
        assert_eq!(r.id, "fig6b");
        assert!(t.sims() > 0, "the experiment's runtimes were observed");
        assert!(t.events().iter().any(|e| e.cat == "hip_op"));
    }
}
