//! `ifsim-analyze` — critical-path causal profiler and what-if engine.
//!
//! Runs one registry experiment with causal DAG capture on, reconstructs
//! the critical path (`ifsim_telemetry::critpath`), and — COZ-style —
//! re-runs the experiment with individual calibration constants scaled by
//! a factor grid to *measure* (not model) how the makespan would move if
//! a link class were faster or slower:
//!
//! ```text
//! ifsim-analyze EXPERIMENT [--quick] [--seed N] [--reps N] [--warmup N]
//!               [--fields F1,F2,...] [--factors 0.5,1.25,2.0] [--top K]
//!               [--out FILE.json] [--report FILE.md] [--no-whatif]
//!               [--list-fields]
//! ```
//!
//! The markdown report goes to stdout (or `--report`); `--out` writes the
//! `ifsim-critpath-v1` JSON document that `telemetry-lint --critpath`
//! validates. Exit status: 0 on success, 1 if the critical-path
//! invariants fail to hold (path total must equal the summed makespan at
//! 1e-6), 2 on usage errors.

use ifsim_core::hip::Calibration;
use ifsim_core::microbench::BenchConfig;
use ifsim_core::registry;
use ifsim_core::telemetry::critpath;
use ifsim_core::telemetry::json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    quick: bool,
    seed: Option<u64>,
    reps: Option<usize>,
    warmup: Option<usize>,
    fields: Vec<String>,
    factors: Vec<f64>,
    top: usize,
    out: Option<PathBuf>,
    report: Option<PathBuf>,
    whatif: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ifsim-analyze EXPERIMENT [--quick] [--seed N] [--reps N] [--warmup N]\n\
         \x20                  [--fields F1,F2,...] [--factors 0.5,1.25,2.0] [--top K]\n\
         \x20                  [--out FILE.json] [--report FILE.md] [--no-whatif] [--list-fields]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        quick: false,
        seed: None,
        reps: None,
        warmup: None,
        // Defaults sweep the two xGMI link classes: SDMA-driven copies and
        // kernel-driven remote-memory traffic. Both `Calibration` F64 fields.
        fields: vec!["eff_sdma_xgmi".into(), "eff_kernel_xgmi".into()],
        factors: vec![0.5, 1.25, 2.0],
        top: 10,
        out: None,
        report: None,
        whatif: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = Some(
                    next("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed")),
                )
            }
            "--reps" => {
                args.reps = Some(
                    next("--reps")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --reps")),
                )
            }
            "--warmup" => {
                args.warmup = Some(
                    next("--warmup")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --warmup")),
                )
            }
            "--fields" => {
                args.fields = next("--fields").split(',').map(str::to_string).collect();
                for f in &args.fields {
                    if !Calibration::f64_field_names().any(|name| name == f) {
                        usage(&format!(
                            "unknown calibration field '{f}'; try --list-fields"
                        ));
                    }
                }
            }
            "--factors" => {
                args.factors = next("--factors")
                    .split(',')
                    .map(|s| {
                        s.parse::<f64>()
                            .unwrap_or_else(|_| usage(&format!("bad factor '{s}'")))
                    })
                    .collect();
                if args.factors.iter().any(|&f| f <= 0.0 || !f.is_finite()) {
                    usage("factors must be positive");
                }
            }
            "--top" => args.top = next("--top").parse().unwrap_or_else(|_| usage("bad --top")),
            "--out" => args.out = Some(PathBuf::from(next("--out"))),
            "--report" => args.report = Some(PathBuf::from(next("--report"))),
            "--no-whatif" => args.whatif = false,
            "--list-fields" => {
                for name in Calibration::f64_field_names() {
                    println!("{name}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage("help requested"),
            other if !other.starts_with('-') && args.experiment.is_empty() => {
                args.experiment = other.to_string();
            }
            other => usage(&format!("unknown option {other}")),
        }
    }
    if args.experiment.is_empty() {
        usage(&format!(
            "an experiment id is required; available: {}",
            registry::ids().join(", ")
        ));
    }
    args
}

fn config(args: &Args) -> BenchConfig {
    let mut cfg = if args.quick {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if let Some(reps) = args.reps {
        cfg.reps = reps;
    }
    if let Some(warmup) = args.warmup {
        cfg.warmup = warmup;
    }
    cfg
}

/// Sum of the captured runs' makespans — "the run's makespan" for a
/// multi-runtime experiment.
fn total_makespan(dags: &[ifsim_core::telemetry::DepGraph]) -> f64 {
    dags.iter().map(|g| g.makespan_ns()).sum()
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(exp) = registry::by_id(&args.experiment) else {
        usage(&format!(
            "unknown experiment '{}'; available: {}",
            args.experiment,
            registry::ids().join(", ")
        ));
    };
    let cfg = config(&args);

    eprintln!("analyzing {} (dag-instrumented baseline)...", exp.id);
    let (result, telemetry) = exp.run_instrumented_dag(&cfg);
    let dags = telemetry.dags();
    if dags.is_empty() {
        eprintln!(
            "error: {} constructed no observed runtimes; nothing to analyze",
            exp.id
        );
        return ExitCode::from(2);
    }
    let baseline_ns = total_makespan(dags);
    let mut report = critpath::report(dags, args.top);

    // Invariant checks — the whole point of the partition construction.
    // A violation means the capture or the walk is broken, so fail loudly.
    let tol = 1e-6 * baseline_ns.max(1.0);
    if (report.total_ns - baseline_ns).abs() > tol {
        eprintln!(
            "INVARIANT VIOLATED: critical-path total {:.3} ns != makespan {:.3} ns",
            report.total_ns, baseline_ns
        );
        return ExitCode::FAILURE;
    }
    let cat_sum: f64 = report.by_category.values().sum();
    if (cat_sum - report.total_ns).abs() > tol {
        eprintln!(
            "INVARIANT VIOLATED: category slacks {:.3} ns do not partition total {:.3} ns",
            cat_sum, report.total_ns
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "  {} run(s), makespan {:.3} ms, {} path steps",
        report.runs,
        baseline_ns / 1e6,
        report.per_run.iter().map(|r| r.steps).sum::<usize>()
    );

    if args.whatif {
        for field in &args.fields {
            let mut ran: Vec<f64> = Vec::new();
            for &factor in &args.factors {
                let mut cfg2 = cfg.clone();
                let slot = cfg2
                    .calib
                    .f64_field_mut(field)
                    .expect("validated in parse_args");
                let base = *slot;
                *slot *= factor;
                let mut effective = factor;
                // Efficiency constants are fractions of the physical link
                // rate; the fabric model rejects values above 1.0. Cap the
                // sweep at the ceiling and record the factor we really ran.
                let is_efficiency = field.starts_with("eff_") || field.ends_with("_eff");
                if is_efficiency && *slot > 1.0 {
                    *slot = 1.0;
                    effective = 1.0 / base;
                    eprintln!(
                        "what-if: {field} x{factor} clamped to the efficiency \
                         ceiling (effective x{effective:.3})"
                    );
                }
                if ran.iter().any(|&r| (r - effective).abs() < 1e-12) {
                    continue; // two requested factors clamped to the same point
                }
                ran.push(effective);
                eprintln!("what-if: {field} x{effective:.3} ...");
                let (_, t2) = exp.run_instrumented_dag(&cfg2);
                let makespan = total_makespan(t2.dags());
                report.whatif.push(critpath::whatif_entry(
                    field,
                    effective,
                    makespan,
                    baseline_ns,
                ));
            }
        }
    }

    let crosscheck = critpath::attribution_crosscheck(telemetry.metrics(), &report);

    let mut markdown = critpath::render_critpath(&report);
    let cross_text = critpath::render_crosscheck(&crosscheck);
    if !cross_text.is_empty() {
        markdown.push('\n');
        markdown.push_str(&cross_text);
    }
    markdown.push('\n');
    markdown.push_str(&format!(
        "_Experiment: {} — {} ({}/{} checks passed)._\n",
        exp.id,
        exp.title,
        result.checks.iter().filter(|c| c.passed).count(),
        result.checks.len()
    ));

    match &args.report {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &markdown) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("report written to {}", path.display());
        }
        None => print!("{markdown}"),
    }
    if let Some(path) = &args.out {
        let text = json::to_string_pretty(&critpath::critpath_json(&report));
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("critpath JSON written to {}", path.display());
    }
    ExitCode::SUCCESS
}
