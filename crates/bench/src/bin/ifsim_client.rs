//! `ifsim-client` — submit one request to a running `ifsim-serve`.
//!
//! ```text
//! ifsim-client (--socket PATH | --tcp HOST:PORT) COMMAND
//!
//! commands:
//!   ping                        liveness probe
//!   stats [--raw] [--watch SECS]
//!                               server statistics (--raw prints the JSON
//!                               snapshot, lintable via telemetry-lint --serve;
//!                               --watch polls every SECS seconds and redraws
//!                               in place until interrupted)
//!   shutdown                    ask the server to drain and exit
//!   exp <id> [RUN OPTIONS]      run (or replay from cache) one experiment
//!   exp --scenario FILE [RUN OPTIONS]
//!                               upload a scenario file (ifsim-scenario-v1)
//!                               and run it server-side; the id is optional
//!                               and defaults to scenario:<name>
//!
//! run options:
//!   --quick            start from the quick configuration (2 reps, no warmup)
//!   --seed U64         jitter seed override
//!   --reps N           measured repetitions override
//!   --warmup N         warmup repetitions override
//!   --calib F=X        multiply calibration field F by X (repeatable;
//!                      names as printed by `ifsim-drift --list-fields`)
//!   --artifact NAME    only return the named CSV artifact (repeatable)
//!   --csv DIR          save returned CSV artifacts into DIR
//!   --no-report        don't print the rendered report
//!   --analyze          run with causal DAG capture and print the top-5
//!                      critical-path entries from the server's
//!                      ifsim-critpath-v1 report
//!   --scenario FILE    parse FILE locally (early errors) and upload its
//!                      canonical form as the request's inline scenario
//! ```
//!
//! Exit codes: 0 ok, 1 server-side error (including Overloaded), 2 usage.

use ifsim_serve::proto::RunRequest;
use ifsim_serve::{ClientAddr, Connection, Status};
use serde_json::Value;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ifsim-client (--socket PATH | --tcp HOST:PORT) \
         (ping | stats [--raw] [--watch SECS] | shutdown | exp ID [RUN OPTIONS])"
    );
    std::process::exit(2)
}

struct Args {
    addr: ClientAddr,
    command: Command,
}

enum Command {
    Ping,
    Stats { raw: bool, watch: Option<f64> },
    Shutdown,
    Exp(Box<ExpArgs>),
}

struct ExpArgs {
    request: RunRequest,
    csv_dir: Option<PathBuf>,
    print_report: bool,
}

fn parse_args() -> Args {
    let mut addr: Option<ClientAddr> = None;
    let mut words: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                let path = it.next().unwrap_or_else(|| usage("--socket needs a path"));
                #[cfg(unix)]
                {
                    addr = Some(ClientAddr::Unix(PathBuf::from(path)));
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    usage("--socket requires a Unix platform; use --tcp");
                }
            }
            "--tcp" => {
                addr = Some(ClientAddr::Tcp(
                    it.next().unwrap_or_else(|| usage("--tcp needs HOST:PORT")),
                ))
            }
            "--help" | "-h" => usage("help requested"),
            _ => words.push(a),
        }
    }
    let Some(addr) = addr else {
        usage("one of --socket or --tcp is required");
    };
    let mut words = words.into_iter();
    let command = match words.next().as_deref() {
        Some("ping") => Command::Ping,
        Some("stats") => {
            let mut raw = false;
            let mut watch = None;
            while let Some(w) = words.next() {
                match w.as_str() {
                    "--raw" => raw = true,
                    "--watch" => {
                        let secs: f64 = words
                            .next()
                            .unwrap_or_else(|| usage("--watch needs SECS"))
                            .parse()
                            .unwrap_or_else(|_| usage("bad --watch value"));
                        if !(secs > 0.0 && secs.is_finite()) {
                            usage("--watch must be a positive number of seconds");
                        }
                        watch = Some(secs);
                    }
                    other => usage(&format!("unknown stats option {other}")),
                }
            }
            Command::Stats { raw, watch }
        }
        Some("shutdown") => Command::Shutdown,
        Some("exp") => {
            // The id may be omitted when a --scenario file names itself.
            let mut rest: Vec<String> = words.collect();
            let id = if rest.first().is_some_and(|w| !w.starts_with('-')) {
                rest.remove(0)
            } else {
                String::new()
            };
            let mut exp = ExpArgs {
                request: RunRequest::new(id),
                csv_dir: None,
                print_report: true,
            };
            let mut rest = rest.into_iter();
            while let Some(w) = rest.next() {
                let mut next = |name: &str| {
                    rest.next()
                        .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                };
                match w.as_str() {
                    "--quick" => exp.request.overrides.quick = true,
                    "--seed" => {
                        exp.request.overrides.seed = Some(
                            next("--seed")
                                .parse()
                                .unwrap_or_else(|_| usage("bad --seed value")),
                        )
                    }
                    "--reps" => {
                        exp.request.overrides.reps = Some(
                            next("--reps")
                                .parse()
                                .unwrap_or_else(|_| usage("bad --reps value")),
                        )
                    }
                    "--warmup" => {
                        exp.request.overrides.warmup = Some(
                            next("--warmup")
                                .parse()
                                .unwrap_or_else(|_| usage("bad --warmup value")),
                        )
                    }
                    "--calib" => {
                        let v = next("--calib");
                        let (field, factor) = v
                            .split_once('=')
                            .unwrap_or_else(|| usage("--calib wants FIELD=FACTOR"));
                        let factor: f64 = factor
                            .parse()
                            .unwrap_or_else(|_| usage(&format!("bad factor '{factor}'")));
                        exp.request
                            .overrides
                            .calib
                            .push((field.to_string(), factor));
                    }
                    "--artifact" => exp.request.artifacts.push(next("--artifact")),
                    "--csv" => exp.csv_dir = Some(PathBuf::from(next("--csv"))),
                    "--no-report" => exp.print_report = false,
                    "--analyze" => exp.request.analyze = true,
                    "--scenario" => {
                        let path = PathBuf::from(next("--scenario"));
                        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                            usage(&format!("cannot read {}: {e}", path.display()))
                        });
                        // Parse locally so a malformed file fails before
                        // any bytes hit the server, then upload the
                        // canonical form.
                        let s = ifsim_bench::scenario::Scenario::from_str(&text)
                            .unwrap_or_else(|e| usage(&format!("{}: {e}", path.display())));
                        if exp.request.experiment_id.is_empty() {
                            exp.request.experiment_id = format!("scenario:{}", s.name);
                        }
                        exp.request.scenario = Some(s.to_json());
                    }
                    other => usage(&format!("unknown exp option {other}")),
                }
            }
            if exp.request.experiment_id.is_empty() && exp.request.scenario.is_none() {
                usage("exp needs an id or --scenario FILE");
            }
            Command::Exp(Box::new(exp))
        }
        Some(other) => usage(&format!("unknown command '{other}'")),
        None => usage("a command is required (ping|stats|shutdown|exp)"),
    };
    Args { addr, command }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut conn = match Connection::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.command {
        Command::Ping => match conn.ping() {
            Ok(()) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ping failed: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Stats { raw, watch } => loop {
            match conn.stats() {
                Ok(stats) => {
                    if watch.is_some() {
                        // Clear and home, like a tiny `watch(1)`.
                        print!("\x1b[2J\x1b[H");
                    }
                    if raw {
                        println!("{}", serde_json::to_string_pretty(&stats));
                    } else {
                        print_stats(&stats);
                    }
                }
                Err(e) => {
                    eprintln!("stats failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match watch {
                Some(secs) => std::thread::sleep(std::time::Duration::from_secs_f64(secs)),
                None => return ExitCode::SUCCESS,
            }
        },
        Command::Shutdown => match conn.shutdown() {
            Ok(_) => {
                println!("server draining");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Exp(exp) => run_exp(&mut conn, &exp),
    }
}

fn run_exp(conn: &mut Connection, exp: &ExpArgs) -> ExitCode {
    let resp = match conn.run(&exp.request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if resp.status != Status::Ok {
        eprintln!(
            "{} ({}): {}",
            resp.status.as_str(),
            resp.status.code(),
            resp.error.as_deref().unwrap_or("no detail")
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{} — digest {} — {} ({}/{} checks)",
        resp.experiment_id,
        resp.digest,
        if resp.cached { "cache hit" } else { "computed" },
        resp.checks_passed,
        resp.checks_total
    );
    if exp.print_report {
        if let Some(report) = &resp.report {
            println!("{report}");
        }
    }
    if exp.request.analyze {
        match &resp.critpath {
            Some(critpath) => print_critpath(critpath),
            None => {
                eprintln!("server returned no critical-path report");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &exp.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (name, contents) in &resp.csv {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
    }
    if resp.checks_passed == resp.checks_total {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Print the headline of an `ifsim-critpath-v1` report: where the time
/// went by category, then the top-5 binding intervals.
fn print_critpath(v: &Value) {
    let total = v.get("total_ns").and_then(Value::as_f64).unwrap_or(0.0);
    println!(
        "critical path: {:.3} ms across {} run(s)",
        total / 1e6,
        v.get("runs").and_then(Value::as_u64).unwrap_or(0)
    );
    if let Some(cats) = v.get("categories").and_then(Value::as_object) {
        let line: Vec<String> = cats
            .iter()
            .map(|(name, ns)| {
                let ns = ns.as_f64().unwrap_or(0.0);
                format!("{name} {:.1}%", 100.0 * ns / total.max(1e-9))
            })
            .collect();
        println!("  {}", line.join(" · "));
    }
    let Some(top) = v.get("top").and_then(Value::as_array) else {
        return;
    };
    for (i, entry) in top.iter().take(5).enumerate() {
        println!(
            "  #{} {} [{}] {:.3} ms ({:.1}%)",
            i + 1,
            entry.get("label").and_then(Value::as_str).unwrap_or("?"),
            entry.get("category").and_then(Value::as_str).unwrap_or("?"),
            entry.get("ns").and_then(Value::as_f64).unwrap_or(0.0) / 1e6,
            100.0 * entry.get("share").and_then(Value::as_f64).unwrap_or(0.0)
        );
    }
}

fn print_stats(stats: &Value) {
    let f = |path: &[&str]| -> f64 {
        let mut v = stats;
        for p in path {
            match v.get(p) {
                Some(next) => v = next,
                None => return f64::NAN,
            }
        }
        v.as_f64().unwrap_or(f64::NAN)
    };
    println!(
        "uptime {:.1}s · draining: {}",
        f(&["uptime_ns"]) / 1e9,
        stats
            .get("draining")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    );
    println!(
        "cache: {}/{} entries · {} hits / {} misses (hit rate {:.1}%)",
        f(&["cache", "entries"]),
        f(&["cache", "capacity"]),
        f(&["cache", "hits"]),
        f(&["cache", "misses"]),
        f(&["cache", "hit_rate"]) * 100.0
    );
    println!(
        "queue: {} in flight of {} capacity ({} workers + {} queue)",
        f(&["queue", "in_flight"]),
        f(&["queue", "capacity"]),
        f(&["queue", "workers"]),
        f(&["queue", "queue_depth"])
    );
    println!("pool:  {} panicked jobs", f(&["pool", "panicked_jobs"]));
}
