//! `ifsim-chaos` — fault-injection harness for the `ifsim-serve` daemon.
//!
//! ```text
//! ifsim-chaos --script NAME [OPTIONS]
//!
//!   --script NAME      fault script to run (repeatable):
//!                        kill-mid-write   SIGKILL the daemon while it
//!                                         computes and persists, leave
//!                                         torn tmp debris, restart, and
//!                                         demand byte-identical replays
//!                        corrupt-cache    truncate + bit-flip committed
//!                                         entries between daemon lives;
//!                                         corrupt entries must be
//!                                         quarantined, never served
//!                        singleflight     8 concurrent cold requests
//!                                         must coalesce onto exactly
//!                                         one computation
//!                        deadline-storm   a burst of tiny-deadline
//!                                         requests answers Ok or 504,
//!                                         never 500, and the daemon
//!                                         survives
//!                        socket-reset     half-written lines, garbage
//!                                         bytes, and abrupt disconnects
//!                                         must not wedge the daemon
//!                        signal-drain     SIGINT drains gracefully
//!                                         (exit 0); a double signal
//!                                         forces exit 130
//!                        all              every script above
//!   --seed U64         fault-timing seed (default 0xC4A05); the same
//!                      seed replays the same kill points and corruption
//!                      offsets
//!   --serve-bin PATH   ifsim-serve binary (default: sibling of this one)
//!   --workdir DIR      scratch directory (default: under the temp dir;
//!                      removed on success, kept on failure)
//! ```
//!
//! Every script asserts *correctness under faults*, not liveness alone:
//! responses after a crash/restart are compared byte-for-byte against an
//! in-process ground-truth run of the same registry experiment — the
//! same bytes a one-shot `repro` invocation would produce. Exit code 0
//! only when every requested script passes.

use ifsim_serve::proto::RunRequest;
use ifsim_serve::store::{self, QUARANTINE_DIR};
use ifsim_serve::{ClientAddr, Connection, Status};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ifsim-chaos --script (kill-mid-write|corrupt-cache|singleflight|\
         deadline-storm|socket-reset|signal-drain|all) [--seed U64] \
         [--serve-bin PATH] [--workdir DIR]"
    );
    std::process::exit(2)
}

struct Args {
    scripts: Vec<String>,
    seed: u64,
    serve_bin: PathBuf,
    workdir: PathBuf,
}

const ALL_SCRIPTS: &[&str] = &[
    "kill-mid-write",
    "corrupt-cache",
    "singleflight",
    "deadline-storm",
    "socket-reset",
    "signal-drain",
];

fn parse_args() -> Args {
    let mut scripts = Vec::new();
    let mut seed = 0xC4A05u64;
    let mut serve_bin: Option<PathBuf> = None;
    let mut workdir: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--script" => {
                let s = next("--script");
                if s == "all" {
                    scripts.extend(ALL_SCRIPTS.iter().map(|s| s.to_string()));
                } else if ALL_SCRIPTS.contains(&s.as_str()) {
                    scripts.push(s);
                } else {
                    usage(&format!("unknown script '{s}'"));
                }
            }
            "--seed" => {
                let raw = next("--seed");
                // Decimal or 0x-prefixed hex, matching how the default
                // seed is documented.
                seed = raw
                    .strip_prefix("0x")
                    .or_else(|| raw.strip_prefix("0X"))
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| raw.parse())
                    .unwrap_or_else(|_| usage("bad --seed"));
            }
            "--serve-bin" => serve_bin = Some(PathBuf::from(next("--serve-bin"))),
            "--workdir" => workdir = Some(PathBuf::from(next("--workdir"))),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown option {other}")),
        }
    }
    if scripts.is_empty() {
        usage("at least one --script is required");
    }
    let serve_bin = serve_bin.unwrap_or_else(|| {
        // The chaos harness and the daemon build into the same target
        // profile directory; default to the sibling binary.
        std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("ifsim-serve")))
            .unwrap_or_else(|| PathBuf::from("ifsim-serve"))
    });
    let workdir = workdir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ifsim-chaos-{}", std::process::id()))
    });
    Args {
        scripts,
        seed,
        serve_bin,
        workdir,
    }
}

/// SplitMix64 — the repo's standard seeded generator; fault timings and
/// corruption offsets all come from this one stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One daemon life: the spawned child plus how to reach and kill it.
struct Daemon {
    child: Child,
    addr: ClientAddr,
}

impl Daemon {
    /// Spawn `ifsim-serve` on a fresh Unix socket (TCP on non-Unix) and
    /// wait until it answers pings.
    fn spawn(bin: &Path, dir: &Path, extra: &[String]) -> Result<Daemon, String> {
        let mut cmd = Command::new(bin);
        #[cfg(unix)]
        let addr = {
            let sock = dir.join("chaos.sock");
            let _ = std::fs::remove_file(&sock);
            cmd.arg("--socket").arg(&sock);
            ClientAddr::Unix(sock)
        };
        #[cfg(not(unix))]
        let addr = {
            cmd.arg("--tcp").arg("127.0.0.1:47631");
            ClientAddr::Tcp("127.0.0.1:47631".into())
        };
        cmd.args(extra).stdout(Stdio::null()).stderr(Stdio::null());
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
        let daemon = Daemon { child, addr };
        daemon.wait_ready(Duration::from_secs(10))?;
        Ok(daemon)
    }

    fn wait_ready(&self, timeout: Duration) -> Result<(), String> {
        let t0 = Instant::now();
        loop {
            if let Ok(mut conn) = Connection::connect(&self.addr) {
                if conn.ping().is_ok() {
                    return Ok(());
                }
            }
            if t0.elapsed() > timeout {
                return Err("daemon did not become ready".into());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn connect(&self) -> Result<Connection, String> {
        Connection::connect(&self.addr).map_err(|e| format!("connect: {e}"))
    }

    /// SIGKILL — the crash being simulated. Never graceful.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful exit via the shutdown op; returns the exit status.
    fn shutdown(&mut self) -> Result<std::process::ExitStatus, String> {
        self.connect()?
            .shutdown()
            .map_err(|e| format!("shutdown: {e}"))?;
        self.child.wait().map_err(|e| format!("wait: {e}"))
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A quick single-rep request for `exp` under `seed` — the workload unit
/// every script drives.
fn quick_req(exp: &str, seed: u64) -> RunRequest {
    let mut req = RunRequest::new(exp);
    req.overrides.quick = true;
    req.overrides.reps = Some(1);
    req.overrides.seed = Some(seed);
    req
}

/// Ground truth: run the same experiment in-process — identical to what
/// a one-shot `repro` run would print — and return (report, csv).
fn ground_truth(req: &RunRequest) -> Result<(String, Vec<(String, String)>), String> {
    let exp = ifsim_core::registry::by_id(&req.experiment_id)
        .ok_or_else(|| format!("unknown experiment {}", req.experiment_id))?;
    let cfg = req.overrides.resolve().map_err(|e| e.to_string())?;
    let result = exp.run(&cfg);
    Ok((result.report(), result.csv))
}

/// Demand that a served response carries exactly the one-shot bytes.
fn assert_byte_identical(req: &RunRequest, conn: &mut Connection) -> Result<bool, String> {
    let resp = conn.run(req).map_err(|e| format!("run: {e}"))?;
    if resp.status != Status::Ok {
        return Err(format!(
            "{}: {} ({}): {}",
            req.experiment_id,
            resp.status.as_str(),
            resp.status.code(),
            resp.error.unwrap_or_default()
        ));
    }
    let (report, csv) = ground_truth(req)?;
    if resp.report.as_deref() != Some(report.as_str()) {
        return Err(format!(
            "{}: served report differs from one-shot ground truth",
            req.experiment_id
        ));
    }
    if resp.csv != csv {
        return Err(format!(
            "{}: served csv differs from one-shot ground truth",
            req.experiment_id
        ));
    }
    Ok(resp.cached)
}

/// The corpus each persistence script populates the cache with.
fn corpus() -> Vec<RunRequest> {
    vec![
        quick_req("fig1", 11),
        quick_req("table1", 22),
        quick_req("table2", 33),
        quick_req("fig6a", 44),
    ]
}

fn cache_args(cache_dir: &Path) -> Vec<String> {
    vec![
        "--cache-dir".into(),
        cache_dir.display().to_string(),
        "--workers".into(),
        "2".into(),
    ]
}

/// Entry files currently committed under digest names (quarantine and
/// tmp debris excluded).
fn committed_entries(cache_dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(cache_dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = rd
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && !p
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("tmp-"))
        })
        .collect();
    out.sort();
    out
}

/// SIGKILL the daemon while it computes and persists a fresh digest,
/// drop torn tmp debris like an interrupted `put` would leave, restart
/// onto the same cache directory, and demand: no tmp files survive the
/// recovery scan, every previously committed digest replays
/// byte-identical from cache, and the interrupted digest is recomputed
/// correctly — never served corrupt.
fn script_kill_mid_write(args: &Args, dir: &Path, rng: &mut u64) -> Result<(), String> {
    let cache_dir = dir.join("cache-kill");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut daemon = Daemon::spawn(&args.serve_bin, dir, &cache_args(&cache_dir))?;
    let mut conn = daemon.connect()?;
    for req in corpus() {
        let cached = assert_byte_identical(&req, &mut conn)?;
        if cached {
            return Err(format!("{}: cold digest served cached", req.experiment_id));
        }
    }
    let committed = committed_entries(&cache_dir);
    if committed.len() != corpus().len() {
        return Err(format!(
            "expected {} committed entries, found {}",
            corpus().len(),
            committed.len()
        ));
    }

    // Fire a request for a fresh digest from a side thread and SIGKILL
    // the daemon at a seeded point while it computes/persists. The
    // response may never arrive; the crash is the point.
    drop(conn);
    let victim = quick_req("fig1", 9999);
    let firing = {
        let addr = daemon.addr.clone();
        let victim = victim.clone();
        std::thread::spawn(move || {
            if let Ok(mut c) = Connection::connect(&addr) {
                let _ = c.run(&victim); // EOF mid-wait is expected
            }
        })
    };
    std::thread::sleep(Duration::from_millis(splitmix64(rng) % 40));
    daemon.kill();
    let _ = firing.join();

    // Torn tmp debris a mid-`put` crash leaves: a prefix of real entry
    // bytes under a tmp name.
    let torn = store::encode_entry(&ifsim_serve::CachedRun {
        digest: "deadbeefdeadbeefdeadbeefdeadbeef".into(),
        report: "torn".into(),
        csv: vec![],
        checks_passed: 0,
        checks_total: 0,
        critpath: None,
    });
    let cut = 1 + (splitmix64(rng) as usize % (torn.len() - 1));
    std::fs::write(cache_dir.join("tmp-chaos-1"), &torn[..cut]).map_err(|e| e.to_string())?;

    // Restart onto the same directory.
    let daemon2 = Daemon::spawn(&args.serve_bin, dir, &cache_args(&cache_dir))?;
    let mut conn = daemon2.connect()?;

    // The recovery scan swept the debris.
    let tmp_left = std::fs::read_dir(&cache_dir)
        .map_err(|e| e.to_string())?
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("tmp-"))
        .count();
    if tmp_left != 0 {
        return Err(format!("{tmp_left} tmp files survived the recovery scan"));
    }

    // Every committed digest replays byte-identical, from cache, with
    // zero recomputation.
    for req in corpus() {
        if !assert_byte_identical(&req, &mut conn)? {
            return Err(format!(
                "{}: previously committed digest was recomputed after restart",
                req.experiment_id
            ));
        }
    }
    // The interrupted digest: cached (its write completed before the
    // kill) or recomputed (it did not) — byte-identical either way.
    assert_byte_identical(&victim, &mut conn)?;

    let stats = daemon2
        .connect()?
        .stats()
        .map_err(|e| format!("stats: {e}"))?;
    let leaders = stats
        .get("singleflight")
        .and_then(|s| s.get("leaders"))
        .and_then(Value::as_u64)
        .ok_or("stats missing singleflight.leaders")?;
    if leaders > 1 {
        return Err(format!(
            "restart recomputed {leaders} digests; expected at most the interrupted one"
        ));
    }
    Ok(())
}

/// Corrupt committed entries between daemon lives (truncate one,
/// bit-flip another at seeded offsets). The restarted daemon must
/// quarantine them — keeping the evidence — and serve every digest
/// byte-identical: intact ones from cache, corrupted ones recomputed.
fn script_corrupt_cache(args: &Args, dir: &Path, rng: &mut u64) -> Result<(), String> {
    let cache_dir = dir.join("cache-corrupt");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut daemon = Daemon::spawn(&args.serve_bin, dir, &cache_args(&cache_dir))?;
    let mut conn = daemon.connect()?;
    for req in corpus() {
        assert_byte_identical(&req, &mut conn)?;
    }
    drop(conn);
    daemon.shutdown()?;

    let committed = committed_entries(&cache_dir);
    if committed.len() < 3 {
        return Err(format!(
            "need ≥ 3 committed entries, have {}",
            committed.len()
        ));
    }
    // Truncate the first, bit-flip the second, leave the rest intact.
    let bytes = std::fs::read(&committed[0]).map_err(|e| e.to_string())?;
    let cut = splitmix64(rng) as usize % bytes.len();
    std::fs::write(&committed[0], &bytes[..cut]).map_err(|e| e.to_string())?;
    let mut bytes = std::fs::read(&committed[1]).map_err(|e| e.to_string())?;
    let pos = splitmix64(rng) as usize % bytes.len();
    bytes[pos] ^= 1 << (splitmix64(rng) % 8);
    std::fs::write(&committed[1], &bytes).map_err(|e| e.to_string())?;

    let daemon2 = Daemon::spawn(&args.serve_bin, dir, &cache_args(&cache_dir))?;
    let mut conn = daemon2.connect()?;
    let mut recomputed = 0;
    for req in corpus() {
        if !assert_byte_identical(&req, &mut conn)? {
            recomputed += 1;
        }
    }
    if recomputed != 2 {
        return Err(format!(
            "expected exactly the 2 corrupted digests recomputed, saw {recomputed}"
        ));
    }
    let stats = conn.stats().map_err(|e| format!("stats: {e}"))?;
    let quarantined = stats
        .get("cache")
        .and_then(|c| c.get("quarantined"))
        .and_then(Value::as_u64)
        .ok_or("stats missing cache.quarantined")?;
    if quarantined != 2 {
        return Err(format!(
            "expected 2 quarantined entries, stats says {quarantined}"
        ));
    }
    let evidence = std::fs::read_dir(cache_dir.join(QUARANTINE_DIR))
        .map(|d| d.count())
        .unwrap_or(0);
    if evidence != 2 {
        return Err(format!("expected 2 quarantine files, found {evidence}"));
    }
    Ok(())
}

/// 8 concurrent connections fire the same cold request; the daemon must
/// run exactly one computation and answer all 8 byte-identically.
fn script_singleflight(args: &Args, dir: &Path, rng: &mut u64) -> Result<(), String> {
    let daemon = Daemon::spawn(
        &args.serve_bin,
        dir,
        &[
            "--workers".into(),
            "4".into(),
            "--queue-depth".into(),
            "16".into(),
        ],
    )?;
    let req = quick_req("fig6a", 1000 + splitmix64(rng) % 1000);
    let mut threads = Vec::new();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
    for _ in 0..8 {
        let addr = daemon.addr.clone();
        let req = req.clone();
        let barrier = std::sync::Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || -> Result<String, String> {
            let mut conn = Connection::connect(&addr).map_err(|e| format!("connect: {e}"))?;
            barrier.wait();
            let mut resp = conn.run(&req).map_err(|e| format!("run: {e}"))?;
            if resp.status != Status::Ok {
                return Err(format!("status {}", resp.status.as_str()));
            }
            resp.cached = false; // stragglers may legitimately hit cache
            resp.trace_id.clear(); // per-request, unique by design
            Ok(serde_json::to_string(&resp.to_json()))
        }));
    }
    let mut bodies = Vec::new();
    for t in threads {
        bodies.push(t.join().map_err(|_| "worker panicked")??);
    }
    if bodies.iter().any(|b| b != &bodies[0]) {
        return Err("concurrent responses disagree".into());
    }
    let (report, _) = ground_truth(&req)?;
    let first: Value = serde_json::from_str(&bodies[0]).map_err(|e| e.to_string())?;
    if first.get("report").and_then(Value::as_str) != Some(report.as_str()) {
        return Err("coalesced response differs from ground truth".into());
    }
    let stats = daemon
        .connect()?
        .stats()
        .map_err(|e| format!("stats: {e}"))?;
    let leaders = stats
        .get("singleflight")
        .and_then(|s| s.get("leaders"))
        .and_then(Value::as_u64)
        .ok_or("stats missing singleflight.leaders")?;
    if leaders != 1 {
        return Err(format!(
            "expected exactly 1 computation, leaders = {leaders}"
        ));
    }
    Ok(())
}

/// A burst of tiny (and zero) deadlines mixed with sane ones: every
/// answer is Ok-and-byte-identical or an explicit 504 — never a 500,
/// never a wedged connection — and the daemon survives the storm.
fn script_deadline_storm(args: &Args, dir: &Path, rng: &mut u64) -> Result<(), String> {
    let daemon = Daemon::spawn(
        &args.serve_bin,
        dir,
        &[
            "--workers".into(),
            "2".into(),
            "--request-timeout-ms".into(),
            "30000".into(),
        ],
    )?;
    let mut conn = daemon.connect()?;
    let mut ok = 0u64;
    let mut expired = 0u64;
    for i in 0..40u64 {
        let mut req = quick_req("fig1", 100 + i % 5);
        req.deadline_ms = match splitmix64(rng) % 3 {
            0 => Some(0),                   // dead on arrival
            1 => Some(splitmix64(rng) % 4), // a few ms: races compute
            _ => Some(60_000),              // generous
        };
        let resp = conn.run(&req).map_err(|e| format!("run: {e}"))?;
        match resp.status {
            Status::Ok => ok += 1,
            Status::DeadlineExceeded => expired += 1,
            other => return Err(format!("unexpected status {}", other.as_str())),
        }
    }
    if ok == 0 {
        return Err("no request survived the storm; deadlines over-shed".into());
    }
    if expired == 0 {
        return Err("no deadline fired; the storm tested nothing".into());
    }
    // The daemon is intact and still serves correct bytes.
    assert_byte_identical(&quick_req("fig1", 104), &mut conn)?;
    let stats = conn.stats().map_err(|e| format!("stats: {e}"))?;
    let exceeded = stats
        .get("deadline")
        .and_then(|d| d.get("exceeded"))
        .and_then(Value::as_u64)
        .ok_or("stats missing deadline.exceeded")?;
    if exceeded != expired {
        return Err(format!(
            "stats counted {exceeded} deadline failures, client saw {expired}"
        ));
    }
    Ok(())
}

/// Half-written request lines, garbage bytes, and abrupt disconnects:
/// none may wedge the daemon or poison later, well-formed requests.
fn script_socket_reset(args: &Args, dir: &Path, rng: &mut u64) -> Result<(), String> {
    use std::io::Write as _;
    let daemon = Daemon::spawn(&args.serve_bin, dir, &[])?;
    #[cfg(unix)]
    let connect_raw = |daemon: &Daemon| -> Result<std::os::unix::net::UnixStream, String> {
        match &daemon.addr {
            ClientAddr::Unix(p) => {
                std::os::unix::net::UnixStream::connect(p).map_err(|e| e.to_string())
            }
            ClientAddr::Tcp(_) => Err("unix expected".into()),
        }
    };
    #[cfg(unix)]
    for round in 0..10 {
        let mut raw = connect_raw(&daemon)?;
        match splitmix64(rng) % 3 {
            0 => {
                // Half a request line, then hang up mid-message.
                let line = serde_json::to_string(&quick_req("fig1", round).to_json());
                let cut = 1 + splitmix64(rng) as usize % (line.len() - 1);
                let _ = raw.write_all(&line.as_bytes()[..cut]);
            }
            1 => {
                // Garbage (including NULs), newline-terminated: the
                // daemon must answer 400, not die.
                let _ = raw.write_all(b"\x00\xff{{{ not json\n");
            }
            _ => {
                // Connect and vanish without a byte.
            }
        }
        drop(raw); // abrupt disconnect
    }
    // After the abuse: a clean connection still gets correct bytes.
    let mut conn = daemon.connect()?;
    assert_byte_identical(&quick_req("fig1", 77), &mut conn)?;
    conn.ping().map_err(|e| format!("ping after abuse: {e}"))?;
    Ok(())
}

/// One SIGINT drains gracefully (exit 0, socket removed); two in a row
/// force an immediate exit with code 130.
fn script_signal_drain(args: &Args, dir: &Path, _rng: &mut u64) -> Result<(), String> {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGINT_NO: i32 = 2;

        // Graceful: one SIGINT.
        let mut daemon = Daemon::spawn(&args.serve_bin, dir, &[])?;
        let pid = daemon.child.id() as i32;
        unsafe { kill(pid, SIGINT_NO) };
        let status = daemon.child.wait().map_err(|e| e.to_string())?;
        if status.code() != Some(0) {
            return Err(format!("single SIGINT: expected exit 0, got {status:?}"));
        }
        if let ClientAddr::Unix(sock) = &daemon.addr {
            if sock.exists() {
                return Err("graceful drain left the socket file behind".into());
            }
        }

        // Forced: two SIGINTs. Back-to-back signals coalesce (standard
        // signals don't queue), so pin the daemon in its drain first —
        // graceful shutdown waits for open connections to hang up, and
        // we deliberately keep one open — then space the signals out.
        // The second must abandon the drain and exit immediately.
        let mut daemon = Daemon::spawn(&args.serve_bin, dir, &[])?;
        let mut held = daemon.connect()?; // keeps the drain waiting
        held.ping().map_err(|e| format!("held ping: {e}"))?;
        let pid = daemon.child.id() as i32;
        unsafe { kill(pid, SIGINT_NO) };
        std::thread::sleep(Duration::from_millis(80));
        unsafe { kill(pid, SIGINT_NO) };
        let t0 = Instant::now();
        let status = loop {
            if let Some(s) = daemon.child.try_wait().map_err(|e| e.to_string())? {
                break s;
            }
            if t0.elapsed() > Duration::from_secs(5) {
                daemon.kill();
                return Err("double SIGINT: daemon did not exit within 5s".into());
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        if status.code() != Some(130) {
            return Err(format!("double SIGINT: expected exit 130, got {status:?}"));
        }
        drop(held);
        Ok(())
    }
    #[cfg(not(unix))]
    {
        let _ = (args, dir);
        println!("  (signal-drain skipped: requires Unix signals)");
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if std::fs::create_dir_all(&args.workdir).is_err() {
        eprintln!("cannot create workdir {}", args.workdir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "ifsim-chaos: {} script(s), seed {:#x}, serve bin {}, workdir {}",
        args.scripts.len(),
        args.seed,
        args.serve_bin.display(),
        args.workdir.display()
    );
    let mut rng = args.seed;
    let mut failures = 0;
    for script in &args.scripts {
        let t0 = Instant::now();
        let result = match script.as_str() {
            "kill-mid-write" => script_kill_mid_write(&args, &args.workdir, &mut rng),
            "corrupt-cache" => script_corrupt_cache(&args, &args.workdir, &mut rng),
            "singleflight" => script_singleflight(&args, &args.workdir, &mut rng),
            "deadline-storm" => script_deadline_storm(&args, &args.workdir, &mut rng),
            "socket-reset" => script_socket_reset(&args, &args.workdir, &mut rng),
            "signal-drain" => script_signal_drain(&args, &args.workdir, &mut rng),
            other => Err(format!("unknown script {other}")),
        };
        match result {
            Ok(()) => println!("  PASS {script} ({:.2}s)", t0.elapsed().as_secs_f64()),
            Err(e) => {
                println!("  FAIL {script}: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        let _ = std::fs::remove_dir_all(&args.workdir);
        println!("ifsim-chaos: all scripts passed");
        ExitCode::SUCCESS
    } else {
        println!(
            "ifsim-chaos: {failures} script(s) failed; evidence kept in {}",
            args.workdir.display()
        );
        ExitCode::FAILURE
    }
}
