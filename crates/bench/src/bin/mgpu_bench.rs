//! `mgpu-bench` — the paper's benchmark tools as one CLI, mirroring the
//! interfaces of the original suites (CommScope, STREAM,
//! p2pBandwidthLatencyTest, OSU micro-benchmarks, RCCL-tests) against the
//! simulated node.
//!
//! ```text
//! mgpu-bench h2d [--size BYTES]          CommScope host-to-device cases
//! mgpu-bench stream [--devices 0,2,4,6]  multi-GCD CPU-GPU STREAM
//! mgpu-bench p2p [--latency|--bandwidth|--bidir]
//! mgpu-bench osu-bw --dst N [--no-sdma]  MPI point-to-point bandwidth
//! mgpu-bench osu-latency --dst N         MPI ping-pong latency
//! mgpu-bench osu-coll --coll allreduce --ranks N [--size BYTES]
//! mgpu-bench rccl --coll allreduce --ranks N [--size BYTES]
//! mgpu-bench doctor [--derate A,B,F]     link health probe
//! mgpu-bench exp <id>... [--jobs N]      run registry experiments
//! mgpu-bench exp --list                  list registry experiments
//! mgpu-bench exp --scenario FILE         run a compiled scenario file
//! ```
//!
//! Global options: `--seed <u64>`, `--reps <n>`, and the telemetry flags
//! `--trace-out <file>` / `--metrics-out <file>` / `--attr-out <file>` /
//! `--attr-json <file>` / `--timeseries-out <file>` / `--critpath-out
//! <file>`, which observe whatever command runs and write the merged
//! Chrome trace-event timeline, the metrics snapshot, the
//! bottleneck-attribution report (markdown / JSON), the flight recorder's
//! link-utilization series as long-format CSV, and the critical-path
//! report reconstructed from captured dependency DAGs (JSON, schema
//! `ifsim-critpath-v1`; see docs/OBSERVABILITY.md). `exp` accepts several
//! ids and `--jobs N` to run them concurrently; reports and telemetry
//! still come out in the order the ids were given.

use ifsim_core::coll::Collective;
use ifsim_core::des::units::{fmt_bytes, pow2_sweep, GIB, KIB, MIB};
use ifsim_core::hip::{EnvConfig, GcdId};
use ifsim_core::microbench::{
    comm_scope, doctor, osu, p2p_matrix, rccl_tests, report, stream, BenchConfig,
};
use ifsim_core::registry;
use ifsim_core::telemetry::{self, Collector};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    cmd: String,
    ids: Vec<String>,
    scenarios: Vec<PathBuf>,
    list: bool,
    cfg: BenchConfig,
    jobs: usize,
    size: Option<u64>,
    devices: Vec<usize>,
    dst: usize,
    ranks: usize,
    coll: Collective,
    no_sdma: bool,
    p2p_mode: &'static str,
    derate: Option<(u8, u8, f64)>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    attr_out: Option<PathBuf>,
    attr_json: Option<PathBuf>,
    timeseries_out: Option<PathBuf>,
    critpath_out: Option<PathBuf>,
}

impl Cli {
    /// Whether any requested artifact needs an installed collector.
    fn wants_telemetry(&self) -> bool {
        self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.attr_out.is_some()
            || self.attr_json.is_some()
            || self.timeseries_out.is_some()
            || self.critpath_out.is_some()
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: mgpu-bench <h2d|stream|p2p|osu-bw|osu-latency|osu-coll|rccl|doctor|exp> [options]\n\
         run `mgpu-bench <cmd> --help` conventions: --size BYTES --devices LIST --dst N\n\
         --ranks N --coll NAME --no-sdma --latency/--bandwidth/--bidir --derate A,B,F\n\
         --seed U64 --reps N --jobs N --trace-out FILE --metrics-out FILE\n\
         --attr-out FILE --attr-json FILE --timeseries-out FILE --critpath-out FILE"
    );
    std::process::exit(2)
}

fn parse_collective(s: &str) -> Collective {
    match s.to_ascii_lowercase().as_str() {
        "reduce" => Collective::Reduce,
        "broadcast" | "bcast" => Collective::Broadcast,
        "allreduce" => Collective::AllReduce,
        "reducescatter" | "reduce_scatter" => Collective::ReduceScatter,
        "allgather" => Collective::AllGather,
        other => {
            eprintln!("unknown collective '{other}'");
            std::process::exit(2)
        }
    }
}

fn parse() -> Cli {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut cli = Cli {
        cmd,
        ids: Vec::new(),
        scenarios: Vec::new(),
        list: false,
        cfg: BenchConfig::quick(),
        jobs: 1,
        size: None,
        devices: (0..8).collect(),
        dst: 1,
        ranks: 8,
        coll: Collective::AllReduce,
        no_sdma: false,
        p2p_mode: "bandwidth",
        derate: None,
        trace_out: None,
        metrics_out: None,
        attr_out: None,
        attr_json: None,
        timeseries_out: None,
        critpath_out: None,
    };
    while let Some(a) = args.next() {
        let mut next = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2)
            })
        };
        match a.as_str() {
            "--size" => cli.size = Some(next("--size").parse().unwrap_or_else(|_| usage())),
            "--seed" => cli.cfg.seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--reps" => cli.cfg.reps = next("--reps").parse().unwrap_or_else(|_| usage()),
            "--jobs" => {
                cli.jobs = next("--jobs").parse().unwrap_or_else(|_| usage());
                if cli.jobs == 0 {
                    eprintln!("error: --jobs must be at least 1 (0 would start no workers)");
                    std::process::exit(2);
                }
            }
            "--devices" => {
                cli.devices = next("--devices")
                    .split(',')
                    .map(|d| d.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--dst" => cli.dst = next("--dst").parse().unwrap_or_else(|_| usage()),
            "--ranks" => cli.ranks = next("--ranks").parse().unwrap_or_else(|_| usage()),
            "--coll" => cli.coll = parse_collective(&next("--coll")),
            "--no-sdma" => cli.no_sdma = true,
            "--latency" => cli.p2p_mode = "latency",
            "--bandwidth" => cli.p2p_mode = "bandwidth",
            "--bidir" => cli.p2p_mode = "bidir",
            "--derate" => {
                let v = next("--derate");
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 3 {
                    usage();
                }
                cli.derate = Some((
                    parts[0].parse().unwrap_or_else(|_| usage()),
                    parts[1].parse().unwrap_or_else(|_| usage()),
                    parts[2].parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--scenario" => cli.scenarios.push(PathBuf::from(next("--scenario"))),
            "--list" => cli.list = true,
            "--trace-out" => cli.trace_out = Some(PathBuf::from(next("--trace-out"))),
            "--metrics-out" => cli.metrics_out = Some(PathBuf::from(next("--metrics-out"))),
            "--attr-out" => cli.attr_out = Some(PathBuf::from(next("--attr-out"))),
            "--attr-json" => cli.attr_json = Some(PathBuf::from(next("--attr-json"))),
            "--timeseries-out" => {
                cli.timeseries_out = Some(PathBuf::from(next("--timeseries-out")))
            }
            "--critpath-out" => cli.critpath_out = Some(PathBuf::from(next("--critpath-out"))),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => cli.ids.push(other.to_string()),
            other => {
                eprintln!("unknown option {other}");
                usage()
            }
        }
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse();
    // With a telemetry artifact requested, every runtime the dispatched
    // command constructs self-observes and feeds this collector; the
    // critical-path report additionally needs causal DAG capture on.
    let collector = cli.wants_telemetry().then(|| {
        if cli.critpath_out.is_some() {
            Collector::install_with_dag()
        } else {
            Collector::install()
        }
    });
    let code = dispatch(&cli);
    if let Some(collector) = collector {
        let t = collector.take();
        let critpath = telemetry::critpath::report(t.dags(), 10);
        let artifacts: [(&Option<PathBuf>, String); 6] = [
            (&cli.trace_out, t.chrome_trace_string()),
            (&cli.metrics_out, t.metrics_json_string()),
            (&cli.attr_out, telemetry::render_attribution(&t)),
            (
                &cli.attr_json,
                telemetry::json::to_string_pretty(&telemetry::attribution_json(&t)),
            ),
            (&cli.timeseries_out, telemetry::timeseries_csv(&t)),
            (
                &cli.critpath_out,
                telemetry::json::to_string_pretty(&telemetry::critpath_json(&critpath)),
            ),
        ];
        for (path, contents) in artifacts {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, contents) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    code
}

fn dispatch(cli: &Cli) -> ExitCode {
    match cli.cmd.as_str() {
        "h2d" => {
            let sizes = match cli.size {
                Some(s) => vec![s],
                None => pow2_sweep(4 * KIB, GIB),
            };
            let series = comm_scope::h2d_all_interfaces(&cli.cfg, &sizes);
            print!(
                "{}",
                report::render_series_table(
                    "# CommScope-style host-to-device bandwidth",
                    "size",
                    &series
                )
            );
        }
        "stream" => {
            let bytes = cli.size.unwrap_or(64 * MIB);
            let bw = stream::multi_gpu_host_stream(&cli.cfg, &cli.devices, bytes);
            println!(
                "# multi-GCD CPU-GPU STREAM, {} per buffer, devices {:?}",
                fmt_bytes(bytes),
                cli.devices
            );
            println!("total bidirectional bandwidth: {bw:.1} GB/s");
            println!(
                "theoretical: {:.1} GB/s ({:.1} %)",
                cli.devices.len() as f64 * 72.0,
                100.0 * bw / (cli.devices.len() as f64 * 72.0)
            );
        }
        "p2p" => match cli.p2p_mode {
            "latency" => print!("{}", p2p_matrix::latency_matrix(&cli.cfg).render()),
            "bidir" => print!(
                "{}",
                p2p_matrix::bandwidth_matrix_bidir(&cli.cfg, cli.size.unwrap_or(128 * MIB))
                    .render()
            ),
            _ => print!(
                "{}",
                p2p_matrix::bandwidth_matrix(&cli.cfg, cli.size.unwrap_or(256 * MIB)).render()
            ),
        },
        "osu-bw" => {
            let bytes = cli.size.unwrap_or(GIB);
            let bw = osu::osu_p2p_bw(&cli.cfg, cli.dst, bytes, !cli.no_sdma);
            println!("# OSU-style MPI bandwidth, GCD0 -> GCD{}", cli.dst);
            println!("{:>12} {:>14}", "Size", "Bandwidth (GB/s)");
            println!("{:>12} {bw:>14.2}", fmt_bytes(bytes));
        }
        "osu-latency" => {
            let bytes = cli.size.unwrap_or(8);
            let us = osu::osu_p2p_latency(&cli.cfg, cli.dst, bytes);
            println!("# OSU-style MPI latency, GCD0 <-> GCD{}", cli.dst);
            println!("{:>12} {:>14}", "Size", "Latency (us)");
            println!("{:>12} {us:>14.2}", fmt_bytes(bytes));
        }
        "osu-coll" => {
            let bytes = cli.size.unwrap_or(MIB);
            let us = osu::mpi_collective_latency(&cli.cfg, cli.coll, cli.ranks, bytes);
            println!(
                "# OSU-style MPI {} latency, {} ranks, {}",
                cli.coll.name(),
                cli.ranks,
                fmt_bytes(bytes)
            );
            println!("Avg Latency (us): {us:.2}");
        }
        "rccl" => {
            let bytes = cli.size.unwrap_or(MIB);
            let us = rccl_tests::rccl_collective_latency(&cli.cfg, cli.coll, cli.ranks, bytes);
            println!(
                "# rccl-tests-style {} latency, {} GPUs, {}",
                cli.coll.name(),
                cli.ranks,
                fmt_bytes(bytes)
            );
            println!("time (us): {us:.2}");
        }
        "doctor" => {
            let mut hip = cli.cfg.runtime(EnvConfig::default());
            if let Some((a, b, f)) = cli.derate {
                println!("injected fault: GCD{a}-GCD{b} at {:.0} %\n", f * 100.0);
                if let Err(e) = hip.derate_xgmi_link(GcdId(a), GcdId(b), f) {
                    eprintln!("cannot derate: {e}");
                    return ExitCode::from(2);
                }
            }
            let health = doctor::probe_links(&mut hip, cli.size.unwrap_or(64 * MIB));
            print!("{}", doctor::render_report(&health, 0.1));
            if health.iter().any(|h| !h.healthy(0.1)) {
                return ExitCode::FAILURE;
            }
        }
        "exp" => {
            if cli.list {
                for e in registry::all() {
                    println!("{:<8} {} — {}", e.id, e.title, e.description);
                }
                return ExitCode::SUCCESS;
            }
            if cli.ids.is_empty() && cli.scenarios.is_empty() {
                eprintln!(
                    "exp needs at least one experiment id or --scenario FILE; \
                     see `mgpu-bench exp --list`"
                );
                return ExitCode::from(2);
            }
            let mut exps: Vec<ifsim_bench::Experiment> = Vec::new();
            for id in &cli.ids {
                match registry::by_id(id) {
                    Some(e) => exps.push(e),
                    None => {
                        eprintln!(
                            "unknown experiment '{id}'; available: {}",
                            registry::ids().join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            for path in &cli.scenarios {
                match ifsim_bench::load_scenario(path) {
                    Ok(e) => exps.push(e),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            let mut all_passed = true;
            if cli.jobs > 1 && exps.len() > 1 {
                // Workers run off-thread, out of reach of the main-thread
                // collector installed above; gather per-experiment bundles
                // and forward them so --trace-out/--metrics-out still see
                // everything, in id order. The DAG driver captures graphs
                // on the workers too, so --critpath-out composes with
                // --jobs.
                let pairs = if cli.critpath_out.is_some() {
                    ifsim_bench::run_set_dag_jobs(exps, &cli.cfg, cli.jobs)
                } else {
                    ifsim_bench::run_set_instrumented_jobs(exps, &cli.cfg, cli.jobs)
                };
                for (r, t) in pairs {
                    print!("{}", r.report());
                    all_passed &= r.all_passed();
                    ifsim_core::telemetry::collector::contribute_collected(t);
                }
            } else {
                for e in &exps {
                    let r = e.run(&cli.cfg);
                    print!("{}", r.report());
                    all_passed &= r.all_passed();
                }
            }
            if !all_passed {
                return ExitCode::FAILURE;
            }
        }
        _ => usage(),
    }
    ExitCode::SUCCESS
}
