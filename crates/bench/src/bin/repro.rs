//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] [IDS...]
//!
//!   IDS              experiment ids (fig1, table1, table2, fig2..fig12);
//!                    'all' or no ids runs everything
//!   --quick          2 repetitions, no warmup (smoke run)
//!   --seed <u64>     jitter seed (default 0xC0FFEE)
//!   --reps <n>       measured repetitions per point
//!   --csv <dir>      write CSV artifacts into <dir> (plus one
//!                    <id>.metrics.json telemetry snapshot per experiment)
//!   --trace-out <f>  write the merged Chrome trace-event timeline to <f>
//!   --metrics-out <f> write the merged metrics snapshot (JSON) to <f>
//!   --attr-out <f>   write the bottleneck-attribution report (markdown)
//!   --attr-json <f>  write the attribution as JSON (schema ifsim-attr-v1)
//!   --timeseries-out <f> write the flight recorder's link-utilization
//!                    counter series as long-format CSV
//!   --critpath-out <f> capture causal dependency DAGs and write the
//!                    critical-path report as JSON (schema ifsim-critpath-v1)
//!   --jobs <n>       run up to <n> experiments concurrently; every
//!                    artifact is byte-identical to a serial run
//!   --scenario <f>   compile a scenario file (schema ifsim-scenario-v1)
//!                    and run it alongside any ids; repeatable
//!   --list           list experiments and exit
//! ```

use ifsim_bench::telemetry::{
    attribution_json, json, render_attribution, timeseries_csv, CollectedTelemetry,
};
use ifsim_bench::{
    load_scenario, run_set_dag_jobs, run_set_instrumented_jobs, run_set_jobs, select_experiments,
    BenchConfig, Experiment,
};
use ifsim_core::registry;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    all: bool,
    scenarios: Vec<PathBuf>,
    cfg: BenchConfig,
    csv_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    attr_out: Option<PathBuf>,
    attr_json: Option<PathBuf>,
    timeseries_out: Option<PathBuf>,
    critpath_out: Option<PathBuf>,
    jobs: usize,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        all: false,
        scenarios: Vec::new(),
        cfg: BenchConfig::default(),
        csv_dir: None,
        trace_out: None,
        metrics_out: None,
        attr_out: None,
        attr_json: None,
        timeseries_out: None,
        critpath_out: None,
        jobs: 1,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.cfg = BenchConfig::quick(),
            "--list" => args.list = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.cfg.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                args.cfg.reps = v.parse().map_err(|e| format!("bad reps: {e}"))?;
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a directory")?;
                args.csv_dir = Some(PathBuf::from(v));
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a file")?;
                args.trace_out = Some(PathBuf::from(v));
            }
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out needs a file")?;
                args.metrics_out = Some(PathBuf::from(v));
            }
            "--attr-out" => {
                let v = it.next().ok_or("--attr-out needs a file")?;
                args.attr_out = Some(PathBuf::from(v));
            }
            "--attr-json" => {
                let v = it.next().ok_or("--attr-json needs a file")?;
                args.attr_json = Some(PathBuf::from(v));
            }
            "--timeseries-out" => {
                let v = it.next().ok_or("--timeseries-out needs a file")?;
                args.timeseries_out = Some(PathBuf::from(v));
            }
            "--critpath-out" => {
                let v = it.next().ok_or("--critpath-out needs a file")?;
                args.critpath_out = Some(PathBuf::from(v));
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|e| format!("bad jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--scenario" => {
                let v = it.next().ok_or("--scenario needs a file")?;
                args.scenarios.push(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--seed N] [--reps N] [--csv DIR] \
                     [--trace-out FILE] [--metrics-out FILE] [--attr-out FILE] \
                     [--attr-json FILE] [--timeseries-out FILE] [--critpath-out FILE] \
                     [--jobs N] [--scenario FILE]... [--list] [IDS...]"
                );
                println!("experiments: {}", registry::ids().join(", "));
                std::process::exit(0);
            }
            "all" => {
                args.all = true;
                args.ids.clear();
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            other => args.ids.push(other.to_string()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for e in registry::all() {
            println!("{:<8} {} — {}", e.id, e.title, e.description);
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "ifsim repro — seed {:#x}, {} reps + {} warmup\n",
        args.cfg.seed, args.cfg.reps, args.cfg.warmup
    );
    // Instrument as soon as any telemetry artifact is requested: the merged
    // trace/metrics files, or the per-experiment snapshots beside the CSVs.
    let instrument = args.trace_out.is_some()
        || args.metrics_out.is_some()
        || args.attr_out.is_some()
        || args.attr_json.is_some()
        || args.timeseries_out.is_some()
        || args.csv_dir.is_some();
    // Scenario files alone narrow the run to just them; ids or an explicit
    // 'all' bring registry experiments into the same set. Compiled
    // scenarios run under every driver below exactly like registry
    // entries.
    let mut exps: Vec<Experiment> =
        if !args.all && args.ids.is_empty() && !args.scenarios.is_empty() {
            Vec::new()
        } else {
            select_experiments(&args.ids)
        };
    for path in &args.scenarios {
        match load_scenario(path) {
            Ok(e) => exps.push(e),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Results come back in registry order regardless of --jobs, and each
    // experiment seeds its simulators from the config alone, so the loop
    // below emits byte-identical artifacts whether the run was parallel
    // or serial.
    let results: Vec<(ifsim_bench::ExperimentResult, Option<CollectedTelemetry>)> =
        if args.critpath_out.is_some() {
            // DAG capture subsumes plain instrumentation, so one driver serves
            // every artifact when the critical-path report is requested.
            run_set_dag_jobs(exps, &args.cfg, args.jobs)
                .into_iter()
                .map(|(r, t)| (r, Some(t)))
                .collect()
        } else if instrument {
            run_set_instrumented_jobs(exps, &args.cfg, args.jobs)
                .into_iter()
                .map(|(r, t)| (r, Some(t)))
                .collect()
        } else {
            run_set_jobs(exps, &args.cfg, args.jobs)
                .into_iter()
                .map(|r| (r, None))
                .collect()
        };

    let mut failed = 0usize;
    let mut total_checks = 0usize;
    let mut merged = CollectedTelemetry::new();
    for (r, telemetry) in results.iter() {
        println!("{}", r.report());
        total_checks += r.checks.len();
        failed += r.checks.iter().filter(|c| !c.passed).count();
        if let Some(dir) = &args.csv_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for (name, contents) in &r.csv {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, contents) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if let Some(t) = telemetry {
                let path = dir.join(format!("{}.metrics.json", r.id));
                let text = json::to_string_pretty(&t.metrics_json_labeled(r.id));
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(t) = telemetry {
            merged.absorb(t.clone());
        }
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::write(path, merged.chrome_trace_string()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, merged.metrics_json_string()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.attr_out {
        if let Err(e) = std::fs::write(path, render_attribution(&merged)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.attr_json {
        if let Err(e) = std::fs::write(path, json::to_string_pretty(&attribution_json(&merged))) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.timeseries_out {
        if let Err(e) = std::fs::write(path, timeseries_csv(&merged)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.critpath_out {
        let report = ifsim_bench::telemetry::critpath::report(merged.dags(), 10);
        let text = json::to_string_pretty(&ifsim_bench::telemetry::critpath_json(&report));
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "summary: {} experiments, {}/{} checks passed",
        results.len(),
        total_checks - failed,
        total_checks
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
