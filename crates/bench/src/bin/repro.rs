//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] [IDS...]
//!
//!   IDS              experiment ids (fig1, table1, table2, fig2..fig12);
//!                    'all' or no ids runs everything
//!   --quick          2 repetitions, no warmup (smoke run)
//!   --seed <u64>     jitter seed (default 0xC0FFEE)
//!   --reps <n>       measured repetitions per point
//!   --csv <dir>      write CSV artifacts into <dir>
//!   --list           list experiments and exit
//! ```

use ifsim_bench::{run_experiments, BenchConfig};
use ifsim_core::registry;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    cfg: BenchConfig,
    csv_dir: Option<PathBuf>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        cfg: BenchConfig::default(),
        csv_dir: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.cfg = BenchConfig::quick(),
            "--list" => args.list = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.cfg.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                args.cfg.reps = v.parse().map_err(|e| format!("bad reps: {e}"))?;
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a directory")?;
                args.csv_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--seed N] [--reps N] [--csv DIR] [--list] [IDS...]"
                );
                println!("experiments: {}", registry::ids().join(", "));
                std::process::exit(0);
            }
            "all" => args.ids.clear(),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            other => args.ids.push(other.to_string()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for e in registry::all() {
            println!("{:<8} {} — {}", e.id, e.title, e.description);
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "ifsim repro — seed {:#x}, {} reps + {} warmup\n",
        args.cfg.seed, args.cfg.reps, args.cfg.warmup
    );
    let results = run_experiments(&args.ids, &args.cfg);

    let mut failed = 0usize;
    let mut total_checks = 0usize;
    for r in &results {
        println!("{}", r.report());
        total_checks += r.checks.len();
        failed += r.checks.iter().filter(|c| !c.passed).count();
        if let Some(dir) = &args.csv_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for (name, contents) in &r.csv {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, contents) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    println!(
        "summary: {} experiments, {}/{} checks passed",
        results.len(),
        total_checks - failed,
        total_checks
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
