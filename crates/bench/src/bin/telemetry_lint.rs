//! `telemetry-lint` — schema smoke test for the telemetry artifacts that
//! `repro` and `mgpu-bench` emit via `--trace-out` / `--metrics-out`.
//!
//! ```text
//! telemetry-lint [--trace FILE] [--metrics FILE]
//! ```
//!
//! Validates structure only, no golden values: the trace must be Chrome
//! trace-event JSON (a `traceEvents` array whose records all carry
//! name/ph/ts/pid/tid, with `dur` on complete spans and `args.name` on
//! metadata records), and the metrics snapshot must hold counter/gauge
//! arrays plus histograms carrying count/sum/min/max/mean/p50/p95/p99.
//! Exit code 0 when every given file passes, 1 otherwise.

use ifsim_core::telemetry::json::{self, Value};
use std::path::PathBuf;
use std::process::ExitCode;

fn load(path: &PathBuf) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::from_str(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

fn lint_trace(v: &Value) -> Result<usize, String> {
    let events = v
        .get("traceEvents")
        .and_then(|t| t.as_array())
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    for (i, ev) in events.iter().enumerate() {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(field).is_none() {
                return Err(format!("event #{i} missing {field}: {ev:?}"));
            }
        }
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                if ev.get("dur").is_none() {
                    return Err(format!("complete span #{i} missing dur"));
                }
            }
            Some("i") | Some("M") => {
                if ev.get("ph").and_then(|p| p.as_str()) == Some("M")
                    && ev.get("args").and_then(|a| a.get("name")).is_none()
                {
                    return Err(format!("metadata record #{i} missing args.name"));
                }
            }
            other => return Err(format!("event #{i} has unexpected phase {other:?}")),
        }
    }
    Ok(events.len())
}

fn lint_metrics(v: &Value) -> Result<usize, String> {
    // Accept both the bare registry snapshot and the per-experiment
    // `{id, metrics}` wrapper.
    let root = v.get("metrics").unwrap_or(v);
    let mut entries = 0usize;
    for section in ["counters", "gauges"] {
        let items = root
            .get(section)
            .and_then(|s| s.as_array())
            .ok_or_else(|| format!("missing {section} array"))?;
        for (i, item) in items.iter().enumerate() {
            for field in ["name", "labels", "value"] {
                if item.get(field).is_none() {
                    return Err(format!("{section} #{i} missing {field}: {item:?}"));
                }
            }
        }
        entries += items.len();
    }
    let hists = root
        .get("histograms")
        .and_then(|s| s.as_array())
        .ok_or("missing histograms array")?;
    for (i, item) in hists.iter().enumerate() {
        for field in [
            "name", "labels", "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        ] {
            if item.get(field).is_none() {
                return Err(format!("histogram #{i} missing {field}: {item:?}"));
            }
        }
    }
    entries += hists.len();
    if entries == 0 {
        return Err("metrics snapshot is empty".into());
    }
    Ok(entries)
}

fn main() -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace = it.next().map(PathBuf::from),
            "--metrics" => metrics = it.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: telemetry-lint [--trace FILE] [--metrics FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if trace.is_none() && metrics.is_none() {
        eprintln!("nothing to lint: pass --trace and/or --metrics");
        return ExitCode::from(2);
    }
    let mut ok = true;
    if let Some(path) = trace {
        match load(&path).and_then(|v| lint_trace(&v)) {
            Ok(n) => println!("trace   OK: {} — {n} events", path.display()),
            Err(e) => {
                eprintln!("trace   FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = metrics {
        match load(&path).and_then(|v| lint_metrics(&v)) {
            Ok(n) => println!("metrics OK: {} — {n} entries", path.display()),
            Err(e) => {
                eprintln!("metrics FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
