//! `telemetry-lint` — schema smoke test for the telemetry artifacts that
//! `repro` and `mgpu-bench` emit via `--trace-out` / `--metrics-out` /
//! `--attr-json`, and for the engine-bench summary
//! `cargo bench --bench fabric_engine` writes.
//!
//! ```text
//! telemetry-lint [--trace FILE] [--metrics FILE] [--bench FILE] [--attr FILE]
//!                [--serve FILE] [--prom FILE] [--critpath FILE]
//!                [--scenario FILE]
//! ```
//!
//! Validates structure only, no golden values: the trace must be Chrome
//! trace-event JSON (a `traceEvents` array whose records all carry
//! name/ph/ts/pid/tid, with `dur` on complete spans, `args.name` on
//! metadata records, and — for the flight recorder's `ph: "C"` counter
//! tracks — a numeric `args.value`, a `fabric util <link>` name matching
//! a real Frontier-topology segment label, and non-decreasing timestamps
//! per `(pid, name)` track); the metrics snapshot must hold counter/gauge
//! arrays plus histograms carrying count/sum/min/max/mean/p50/p95/p99;
//! the attribution document must be schema `ifsim-attr-v1` with a
//! consistent cap/link split; and the bench summary must be
//! `ifsim-bench-fabric-v2` (v1, which lacked the per-result `flows`
//! column, is rejected as superseded): non-empty `results` rows with an
//! id, a positive flow count, positive timings, and at least one
//! iteration, plus a `speedup` object of positive ratios; and the serve
//! stats snapshot must be
//! `ifsim-serve-stats-v2` with numeric cache/queue/pool/singleflight/deadline accounting and an
//! embedded metrics registry carrying the serve request counters and
//! latency histograms; and `--prom` validates a Prometheus text
//! exposition (such as `curl /metrics` from `ifsim-serve --http`, `-`
//! reads stdin so it can sit at the end of a pipe): every line must
//! parse, every sampled family needs `# HELP` and `# TYPE` headers
//! declared before its first sample, counters must be finite and
//! non-negative, histogram `le` buckets must be strictly increasing with
//! non-decreasing cumulative counts closed by `le="+Inf"` whose count
//! equals the family's `_count`, and no series (name + label set) may
//! appear twice; and `--critpath` validates an `ifsim-critpath-v1`
//! report (from `ifsim-analyze --out` or `--critpath-out`): the four
//! category slacks must partition `total_ns` at 1e-6, the per-run
//! makespans must sum back to `total_ns`, top entries need
//! label/category/ns/count/share with shares in [0, 1], and what-if rows
//! (when present) need field/factor/makespan_ns/delta_ns/speedup with
//! positive factors and speedups; and `--scenario` validates an
//! `ifsim-scenario-v1` scenario file (strict parse: unknown fields are
//! rejected with their field path, trace-record dependency graphs are
//! checked for cycles, sweep axes for bounds and parameter validity, and
//! faults/calibration against the frontier topology and calibration
//! table). Exit code 0 when every given file passes, 1 otherwise.

use ifsim_core::fabric::SegmentMap;
use ifsim_core::telemetry::json::{self, Value};
use ifsim_core::topology::NodeTopology;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::ExitCode;

fn load(path: &PathBuf) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::from_str(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

/// Directed-link segment labels of the Frontier topology — the universe
/// the flight recorder samples, and therefore the only names a
/// `fabric util <link>` counter track may carry.
fn known_link_labels() -> BTreeSet<String> {
    let segmap = SegmentMap::new(&NodeTopology::frontier());
    segmap
        .dir_segments()
        .map(|(_, _, seg)| segmap.label(seg).to_string())
        .collect()
}

fn lint_trace(v: &Value) -> Result<usize, String> {
    let events = v
        .get("traceEvents")
        .and_then(|t| t.as_array())
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let known = known_link_labels();
    // Last timestamp seen per (pid, counter-name) track.
    let mut last_ts: BTreeMap<(u64, String), f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(field).is_none() {
                return Err(format!("event #{i} missing {field}: {ev:?}"));
            }
        }
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                if ev.get("dur").is_none() {
                    return Err(format!("complete span #{i} missing dur"));
                }
            }
            Some("i") | Some("M") => {
                if ev.get("ph").and_then(|p| p.as_str()) == Some("M")
                    && ev.get("args").and_then(|a| a.get("name")).is_none()
                {
                    return Err(format!("metadata record #{i} missing args.name"));
                }
            }
            Some("C") => {
                if ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_f64())
                    .is_none()
                {
                    return Err(format!("counter #{i} missing numeric args.value: {ev:?}"));
                }
                let name = ev.get("name").and_then(|n| n.as_str()).unwrap_or("");
                let link = name
                    .strip_prefix("fabric util ")
                    .ok_or_else(|| format!("counter #{i} has non-recorder name '{name}'"))?;
                if !known.contains(link) {
                    return Err(format!("counter #{i} references unknown link '{link}'"));
                }
                let pid = ev.get("pid").and_then(|p| p.as_u64()).unwrap_or(0);
                let ts = ev.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0);
                let key = (pid, name.to_string());
                if let Some(&prev) = last_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "counter track (pid {pid}, '{name}') goes back in time: \
                             {ts} after {prev}"
                        ));
                    }
                }
                last_ts.insert(key, ts);
            }
            other => return Err(format!("event #{i} has unexpected phase {other:?}")),
        }
    }
    Ok(events.len())
}

/// Validate an `--attr-json` document (schema `ifsim-attr-v1`): numeric,
/// non-negative aggregates; segment rows carrying segment/bound_ns/share;
/// and a cap + link split that sums back to the total flow-time.
fn lint_attr(v: &Value) -> Result<usize, String> {
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("ifsim-attr-v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    let num = |field: &str| -> Result<f64, String> {
        match v.get(field).and_then(|x| x.as_f64()) {
            Some(x) if x >= 0.0 && x.is_finite() => Ok(x),
            other => Err(format!("bad {field}: {other:?}")),
        }
    };
    let total = num("total_ns")?;
    let cap = num("cap_bound_ns")?;
    let link = num("link_bound_ns")?;
    num("flows")?;
    let segments = v
        .get("segments")
        .and_then(|s| s.as_array())
        .ok_or("missing segments array")?;
    let mut seg_sum = 0.0;
    for (i, s) in segments.iter().enumerate() {
        if s.get("segment").and_then(|x| x.as_str()).is_none() {
            return Err(format!("segment #{i} missing segment label"));
        }
        let bound = match s.get("bound_ns").and_then(|x| x.as_f64()) {
            Some(b) if b >= 0.0 => b,
            other => return Err(format!("segment #{i} has bad bound_ns {other:?}")),
        };
        match s.get("share").and_then(|x| x.as_f64()) {
            Some(sh) if (0.0..=1.0 + 1e-9).contains(&sh) => {}
            other => return Err(format!("segment #{i} has bad share {other:?}")),
        }
        seg_sum += bound;
    }
    let tol = 1e-6 * total.max(1.0);
    if (seg_sum - link).abs() > tol {
        return Err(format!(
            "segment bound times sum to {seg_sum}, but link_bound_ns is {link}"
        ));
    }
    if (cap + link) > total + tol {
        return Err(format!(
            "cap ({cap}) + link ({link}) exceeds total flow-time ({total})"
        ));
    }
    Ok(segments.len())
}

fn lint_metrics(v: &Value) -> Result<usize, String> {
    // Accept both the bare registry snapshot and the per-experiment
    // `{id, metrics}` wrapper.
    let root = v.get("metrics").unwrap_or(v);
    let mut entries = 0usize;
    for section in ["counters", "gauges"] {
        let items = root
            .get(section)
            .and_then(|s| s.as_array())
            .ok_or_else(|| format!("missing {section} array"))?;
        for (i, item) in items.iter().enumerate() {
            for field in ["name", "labels", "value"] {
                if item.get(field).is_none() {
                    return Err(format!("{section} #{i} missing {field}: {item:?}"));
                }
            }
        }
        entries += items.len();
    }
    let hists = root
        .get("histograms")
        .and_then(|s| s.as_array())
        .ok_or("missing histograms array")?;
    for (i, item) in hists.iter().enumerate() {
        for field in [
            "name", "labels", "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        ] {
            if item.get(field).is_none() {
                return Err(format!("histogram #{i} missing {field}: {item:?}"));
            }
        }
    }
    entries += hists.len();
    if entries == 0 {
        return Err("metrics snapshot is empty".into());
    }
    Ok(entries)
}

/// Validate the `BENCH_fabric.json` summary the `fabric_engine` bench
/// target writes. Returns the number of result rows.
fn lint_bench(v: &Value) -> Result<usize, String> {
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("ifsim-bench-fabric-v2") => {}
        Some("ifsim-bench-fabric-v1") => {
            return Err("schema ifsim-bench-fabric-v1 is superseded; expected v2 \
                 (per-result flows column from the scaling sweep)"
                .into())
        }
        other => return Err(format!("unexpected schema {other:?}")),
    }
    let rows = v
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or("missing results array")?;
    if rows.is_empty() {
        return Err("results is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        if row.get("id").and_then(|s| s.as_str()).is_none() {
            return Err(format!("result #{i} missing id"));
        }
        match row.get("flows").and_then(|n| n.as_u64()) {
            Some(n) if n >= 1 => {}
            other => return Err(format!("result #{i} has bad flows {other:?}")),
        }
        for field in ["mean_ns", "min_ns"] {
            match row.get(field).and_then(|m| m.as_f64()) {
                Some(ns) if ns > 0.0 => {}
                other => return Err(format!("result #{i} has bad {field} {other:?}")),
            }
        }
        match row.get("iters").and_then(|n| n.as_u64()) {
            Some(n) if n >= 1 => {}
            other => return Err(format!("result #{i} has bad iters {other:?}")),
        }
    }
    let speedups = v
        .get("speedup")
        .and_then(|s| s.as_object())
        .ok_or("missing speedup object")?;
    if speedups.is_empty() {
        return Err("speedup object is empty".into());
    }
    for (name, ratio) in speedups.iter() {
        match ratio.as_f64() {
            Some(r) if r > 0.0 => {}
            other => return Err(format!("speedup {name} has bad ratio {other:?}")),
        }
    }
    Ok(rows.len())
}

/// Validate an `ifsim-serve` stats snapshot (`ifsim-serve-stats-v2`): the
/// cache/queue/pool accounting blocks plus an embedded metrics registry
/// that must itself lint clean and carry the serve request counters and
/// latency histograms (p50/p95/p99 come with the histogram schema).
fn lint_serve(v: &Value) -> Result<usize, String> {
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("ifsim-serve-stats-v2") => {}
        Some("ifsim-serve-stats-v1") => {
            return Err("schema ifsim-serve-stats-v1 is superseded; expected v2 \
                 (singleflight/deadline/quarantine accounting)"
                .into())
        }
        other => return Err(format!("unexpected schema {other:?}")),
    }
    let section = |name: &str, fields: &[&str]| -> Result<(), String> {
        let block = v
            .get(name)
            .and_then(|b| b.as_object())
            .ok_or_else(|| format!("missing {name} object"))?;
        for field in fields {
            match block.get(field).and_then(|x| x.as_f64()) {
                Some(x) if x >= 0.0 && x.is_finite() => {}
                other => return Err(format!("{name}.{field} is not a number: {other:?}")),
            }
        }
        Ok(())
    };
    section(
        "cache",
        &[
            "entries",
            "capacity",
            "bytes",
            "bytes_capacity",
            "hits",
            "disk_hits",
            "misses",
            "hit_rate",
            "disk_entries",
            "disk_bytes",
            "quarantined",
        ],
    )?;
    section(
        "queue",
        &["in_flight", "capacity", "workers", "queue_depth"],
    )?;
    section("pool", &["panicked_jobs"])?;
    section("singleflight", &["leaders", "followers"])?;
    section("deadline", &["exceeded", "shed", "cancelled"])?;
    if v.get("cache")
        .and_then(|c| c.get("persistent"))
        .and_then(|x| x.as_bool())
        .is_none()
    {
        return Err("cache.persistent is not a bool".into());
    }
    let in_flight = v
        .get("queue")
        .and_then(|q| q.get("in_flight"))
        .and_then(|x| x.as_f64())
        .unwrap_or(0.0);
    let capacity = v
        .get("queue")
        .and_then(|q| q.get("capacity"))
        .and_then(|x| x.as_f64())
        .unwrap_or(0.0);
    if in_flight > capacity {
        return Err(format!(
            "queue.in_flight ({in_flight}) exceeds queue.capacity ({capacity})"
        ));
    }
    let metrics = v.get("metrics").ok_or("missing metrics snapshot")?;
    let entries = lint_metrics(metrics)?;
    let has = |section: &str, name: &str| -> bool {
        metrics
            .get(section)
            .and_then(|s| s.as_array())
            .is_some_and(|items| {
                items
                    .iter()
                    .any(|i| i.get("name").and_then(|n| n.as_str()) == Some(name))
            })
    };
    if !has("counters", "serve_requests_total") {
        return Err("metrics missing serve_requests_total counter".into());
    }
    if !has("histograms", "serve_request_latency_ns") {
        return Err("metrics missing serve_request_latency_ns histogram".into());
    }
    for counter in [
        "serve_singleflight_leaders",
        "serve_singleflight_followers",
        "serve_deadline_exceeded_total",
        "serve_deadline_shed_total",
        "serve_cancelled_jobs_total",
        "serve_cache_quarantined_total",
    ] {
        if !has("counters", counter) {
            return Err(format!("metrics missing {counter} counter"));
        }
    }
    Ok(entries)
}

/// Validate an `ifsim-critpath-v1` critical-path report. Returns the
/// number of top binding entries.
fn lint_critpath(v: &Value) -> Result<usize, String> {
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("ifsim-critpath-v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    let runs = match v.get("runs").and_then(|x| x.as_u64()) {
        Some(n) if n >= 1 => n,
        other => return Err(format!("bad runs {other:?}")),
    };
    let total = match v.get("total_ns").and_then(|x| x.as_f64()) {
        Some(t) if t >= 0.0 && t.is_finite() => t,
        other => return Err(format!("bad total_ns {other:?}")),
    };
    let tol = 1e-6 * total.max(1.0);
    let cats = v
        .get("categories")
        .and_then(|c| c.as_object())
        .ok_or("missing categories object")?;
    let expected = ["compute", "transfer", "sync", "queue"];
    let mut cat_sum = 0.0;
    for name in expected {
        match cats.get(name).and_then(|x| x.as_f64()) {
            Some(ns) if ns >= 0.0 && ns.is_finite() => cat_sum += ns,
            other => return Err(format!("category {name} has bad value {other:?}")),
        }
    }
    if cats.len() != expected.len() {
        return Err(format!(
            "categories carries {} entries, expected exactly {:?}",
            cats.len(),
            expected
        ));
    }
    if (cat_sum - total).abs() > tol {
        return Err(format!(
            "category slacks sum to {cat_sum}, but total_ns is {total} \
             (the path must partition the makespan)"
        ));
    }
    let top = v
        .get("top")
        .and_then(|t| t.as_array())
        .ok_or("missing top array")?;
    for (i, entry) in top.iter().enumerate() {
        if entry.get("label").and_then(|x| x.as_str()).is_none() {
            return Err(format!("top #{i} missing label"));
        }
        match entry.get("category").and_then(|x| x.as_str()) {
            Some(c) if expected.contains(&c) => {}
            other => return Err(format!("top #{i} has bad category {other:?}")),
        }
        match entry.get("ns").and_then(|x| x.as_f64()) {
            Some(ns) if ns >= 0.0 && ns.is_finite() => {}
            other => return Err(format!("top #{i} has bad ns {other:?}")),
        }
        match entry.get("count").and_then(|x| x.as_u64()) {
            Some(n) if n >= 1 => {}
            other => return Err(format!("top #{i} has bad count {other:?}")),
        }
        match entry.get("share").and_then(|x| x.as_f64()) {
            Some(s) if (0.0..=1.0 + 1e-9).contains(&s) => {}
            other => return Err(format!("top #{i} has bad share {other:?}")),
        }
    }
    let per_run = v
        .get("per_run")
        .and_then(|p| p.as_array())
        .ok_or("missing per_run array")?;
    if per_run.len() != runs as usize {
        return Err(format!(
            "per_run has {} entries but runs is {runs}",
            per_run.len()
        ));
    }
    let mut run_sum = 0.0;
    for (i, run) in per_run.iter().enumerate() {
        match run.get("makespan_ns").and_then(|x| x.as_f64()) {
            Some(ns) if ns >= 0.0 && ns.is_finite() => run_sum += ns,
            other => return Err(format!("per_run #{i} has bad makespan_ns {other:?}")),
        }
        if run.get("steps").and_then(|x| x.as_u64()).is_none() {
            return Err(format!("per_run #{i} missing steps"));
        }
    }
    if (run_sum - total).abs() > tol {
        return Err(format!(
            "per-run makespans sum to {run_sum}, but total_ns is {total}"
        ));
    }
    if let Some(whatif) = v.get("whatif") {
        let rows = whatif.as_array().ok_or("whatif is not an array")?;
        for (i, w) in rows.iter().enumerate() {
            if w.get("field").and_then(|x| x.as_str()).is_none() {
                return Err(format!("whatif #{i} missing field"));
            }
            match w.get("factor").and_then(|x| x.as_f64()) {
                Some(f) if f > 0.0 && f.is_finite() => {}
                other => return Err(format!("whatif #{i} has bad factor {other:?}")),
            }
            match w.get("makespan_ns").and_then(|x| x.as_f64()) {
                Some(ns) if ns >= 0.0 && ns.is_finite() => {}
                other => return Err(format!("whatif #{i} has bad makespan_ns {other:?}")),
            }
            match w.get("delta_ns").and_then(|x| x.as_f64()) {
                Some(d) if d.is_finite() => {}
                other => return Err(format!("whatif #{i} has bad delta_ns {other:?}")),
            }
            match w.get("speedup").and_then(|x| x.as_f64()) {
                Some(s) if s > 0.0 && s.is_finite() => {}
                other => return Err(format!("whatif #{i} has bad speedup {other:?}")),
            }
        }
    }
    Ok(top.len())
}

/// One parsed exposition sample: `name{labels} value`, exemplar suffix
/// (if any) already validated and stripped.
struct PromSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse the inside of a `{...}` label block, honouring `\\`, `\"`, and
/// `\n` escapes in values.
fn parse_prom_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        // Label name up to '='.
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            if !(c.is_ascii_alphanumeric() || c == '_' || c == ':') {
                return Err(format!("bad character '{c}' in label name"));
            }
            name.push(c);
            chars.next();
        }
        if name.is_empty() {
            return Err("empty label name".into());
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("label {name} is not =\"...\" shaped"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape \\{other:?} in label {name}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated value for label {name}")),
            }
        }
        labels.push((name, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(other) => return Err(format!("expected ',' between labels, got '{other}'")),
        }
    }
    Ok(labels)
}

/// Parse a Prometheus sample value: decimal, `+Inf`, `-Inf`, or `NaN`.
fn parse_prom_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("unparseable value '{other}'")),
    }
}

/// Parse one non-comment exposition line; validates and strips an
/// OpenMetrics exemplar suffix (` # {trace_id="..."} value`) if present.
fn parse_prom_sample(line: &str) -> Result<PromSample, String> {
    let (base, exemplar) = match line.find(" # ") {
        Some(pos) => (&line[..pos], Some(&line[pos + 3..])),
        None => (line, None),
    };
    if let Some(ex) = exemplar {
        let inner = ex
            .strip_prefix('{')
            .and_then(|r| r.split_once('}'))
            .ok_or("exemplar suffix is not '{...} value' shaped")?;
        let labels = parse_prom_labels(inner.0)?;
        if !labels.iter().any(|(k, _)| k == "trace_id") {
            return Err("exemplar carries no trace_id label".into());
        }
        parse_prom_value(inner.1.trim())?;
    }
    let (series, value_text) = if let Some(open) = base.find('{') {
        let rest = &base[open + 1..];
        let close = rest.rfind('}').ok_or("unterminated label block")?;
        let labels = parse_prom_labels(&rest[..close])?;
        ((base[..open].to_string(), labels), rest[close + 1..].trim())
    } else {
        let mut parts = base.splitn(2, ' ');
        let name = parts.next().unwrap_or("").to_string();
        ((name, Vec::new()), parts.next().unwrap_or("").trim())
    };
    let (name, labels) = series;
    if name.is_empty()
        || name.chars().enumerate().any(|(i, c)| {
            !(c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit()))
        })
    {
        return Err(format!("bad metric name '{name}'"));
    }
    // A trailing timestamp is allowed by the format; take the first token.
    let value_token = value_text.split_whitespace().next().unwrap_or("");
    let value = parse_prom_value(value_token)?;
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// Validate a Prometheus text exposition. Returns the sample count.
fn lint_prom(text: &str) -> Result<usize, String> {
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<PromSample> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let at = |e: String| format!("line {}: {e}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if name.is_empty() {
                return Err(at("HELP names no metric".into()));
            }
            if !helped.insert(name.to_string()) {
                return Err(at(format!("duplicate HELP for {name}")));
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(at(format!("TYPE {name} has unknown kind '{kind}'")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(at(format!("duplicate TYPE for {name}")));
            }
        } else if line.starts_with('#') {
            // Free comment: legal, carries nothing to check.
        } else {
            let sample = parse_prom_sample(line).map_err(at)?;
            // The declared family: histograms sample via _bucket/_sum/_count.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .filter_map(|suf| sample.name.strip_suffix(suf))
                .find(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                .unwrap_or(&sample.name)
                .to_string();
            if !types.contains_key(&family) {
                return Err(at(format!(
                    "sample {} precedes any TYPE for {family}",
                    sample.name
                )));
            }
            if !helped.contains(&family) {
                return Err(at(format!("family {family} has no HELP")));
            }
            let mut key: Vec<String> = sample
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect();
            key.sort();
            let series_id = format!("{} {}", sample.name, key.join(","));
            if !seen_series.insert(series_id.clone()) {
                return Err(at(format!("duplicate series {series_id}")));
            }
            if types.get(&family).map(String::as_str) == Some("counter")
                && !(sample.value.is_finite() && sample.value >= 0.0)
            {
                return Err(at(format!(
                    "counter {} has non-monotone-capable value {}",
                    sample.name, sample.value
                )));
            }
            samples.push(sample);
        }
    }
    // Histogram coherence: per (family, labels-minus-le) group the le
    // buckets must increase, counts must be cumulative, the family must
    // close at +Inf, and +Inf must equal _count.
    type Group = (Vec<(f64, f64)>, Option<f64>, Option<f64>); // buckets, sum, count
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for s in &samples {
        let Some((base, part)) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| s.name.strip_suffix(suf).map(|b| (b.to_string(), *suf)))
        else {
            continue;
        };
        if types.get(&base).map(String::as_str) != Some("histogram") {
            continue;
        }
        let mut key_labels: Vec<String> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        key_labels.sort();
        let group = groups
            .entry(format!("{base}{{{}}}", key_labels.join(",")))
            .or_insert((Vec::new(), None, None));
        match part {
            "_bucket" => {
                let le_text = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("{} bucket has no le label", s.name))?;
                group.0.push((parse_prom_value(le_text)?, s.value));
            }
            "_sum" => group.1 = Some(s.value),
            _ => group.2 = Some(s.value),
        }
    }
    for (gname, (buckets, sum, count)) in &groups {
        if buckets.is_empty() {
            return Err(format!("histogram {gname} has no buckets"));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = -1.0;
        for &(le, c) in buckets {
            if le <= prev_le {
                return Err(format!(
                    "histogram {gname}: le buckets not increasing ({le} after {prev_le})"
                ));
            }
            if c < prev_count {
                return Err(format!(
                    "histogram {gname}: cumulative count decreases ({c} after {prev_count})"
                ));
            }
            prev_le = le;
            prev_count = c;
        }
        let (last_le, last_count) = *buckets.last().unwrap();
        if last_le.is_finite() {
            return Err(format!("histogram {gname} is not closed by le=\"+Inf\""));
        }
        let count = count.ok_or_else(|| format!("histogram {gname} has no _count"))?;
        sum.ok_or_else(|| format!("histogram {gname} has no _sum"))?;
        if last_count != count {
            return Err(format!(
                "histogram {gname}: +Inf bucket ({last_count}) != _count ({count})"
            ));
        }
    }
    if samples.is_empty() {
        return Err("exposition carries no samples".into());
    }
    Ok(samples.len())
}

/// Validate a scenario file against the `ifsim-scenario-v1` schema.
/// Returns a one-line summary of what the scenario describes.
fn lint_scenario(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let s = ifsim_scenario::Scenario::from_str(&text).map_err(|e| e.to_string())?;
    let workload = match &s.workload {
        ifsim_scenario::Workload::Registry { id } => format!("registry '{id}'"),
        ifsim_scenario::Workload::Trace { records } => {
            format!("trace ({} records)", records.len())
        }
        ifsim_scenario::Workload::Generator(g) => g.kind_name().to_string(),
    };
    let mut extras = Vec::new();
    if !s.sweep.is_empty() {
        extras.push(format!("{} sweep axes", s.sweep.len()));
    }
    if !s.faults.is_empty() {
        extras.push(format!("{} faults", s.faults.len()));
    }
    let suffix = if extras.is_empty() {
        String::new()
    } else {
        format!(" with {}", extras.join(", "))
    };
    Ok(format!("'{}' runs {workload}{suffix}", s.name))
}

fn main() -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut bench: Option<PathBuf> = None;
    let mut attr: Option<PathBuf> = None;
    let mut serve: Option<PathBuf> = None;
    let mut prom: Option<String> = None;
    let mut critpath: Option<PathBuf> = None;
    let mut scenarios: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace = it.next().map(PathBuf::from),
            "--metrics" => metrics = it.next().map(PathBuf::from),
            "--bench" => bench = it.next().map(PathBuf::from),
            "--attr" => attr = it.next().map(PathBuf::from),
            "--serve" => serve = it.next().map(PathBuf::from),
            "--prom" => prom = it.next(),
            "--critpath" => critpath = it.next().map(PathBuf::from),
            "--scenario" => scenarios.extend(it.next().map(PathBuf::from)),
            "--help" | "-h" => {
                println!(
                    "usage: telemetry-lint [--trace FILE] [--metrics FILE] \
                     [--bench FILE] [--attr FILE] [--serve FILE] \
                     [--prom FILE|-] [--critpath FILE] [--scenario FILE]..."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if trace.is_none()
        && metrics.is_none()
        && bench.is_none()
        && attr.is_none()
        && serve.is_none()
        && prom.is_none()
        && critpath.is_none()
        && scenarios.is_empty()
    {
        eprintln!(
            "nothing to lint: pass --trace, --metrics, --bench, --attr, \
             --serve, --prom, --critpath, and/or --scenario"
        );
        return ExitCode::from(2);
    }
    let mut ok = true;
    if let Some(path) = trace {
        match load(&path).and_then(|v| lint_trace(&v)) {
            Ok(n) => println!("trace   OK: {} — {n} events", path.display()),
            Err(e) => {
                eprintln!("trace   FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = metrics {
        match load(&path).and_then(|v| lint_metrics(&v)) {
            Ok(n) => println!("metrics OK: {} — {n} entries", path.display()),
            Err(e) => {
                eprintln!("metrics FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = bench {
        match load(&path).and_then(|v| lint_bench(&v)) {
            Ok(n) => println!("bench   OK: {} — {n} results", path.display()),
            Err(e) => {
                eprintln!("bench   FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = attr {
        match load(&path).and_then(|v| lint_attr(&v)) {
            Ok(n) => println!("attr    OK: {} — {n} segments", path.display()),
            Err(e) => {
                eprintln!("attr    FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = serve {
        match load(&path).and_then(|v| lint_serve(&v)) {
            Ok(n) => println!("serve   OK: {} — {n} metric entries", path.display()),
            Err(e) => {
                eprintln!("serve   FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = critpath {
        match load(&path).and_then(|v| lint_critpath(&v)) {
            Ok(n) => println!("critpath OK: {} — {n} top entries", path.display()),
            Err(e) => {
                eprintln!("critpath FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    for path in &scenarios {
        match lint_scenario(path) {
            Ok(summary) => println!("scenario OK: {} — {summary}", path.display()),
            Err(e) => {
                eprintln!("scenario FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(src) = prom {
        let text = if src == "-" {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map(|_| buf)
                .map_err(|e| format!("cannot read stdin: {e}"))
        } else {
            std::fs::read_to_string(&src).map_err(|e| format!("cannot read {src}: {e}"))
        };
        match text.and_then(|t| lint_prom(&t)) {
            Ok(n) => println!("prom    OK: {src} — {n} samples"),
            Err(e) => {
                eprintln!("prom    FAIL: {src} — {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
