//! `telemetry-lint` — schema smoke test for the telemetry artifacts that
//! `repro` and `mgpu-bench` emit via `--trace-out` / `--metrics-out`, and
//! for the engine-bench summary `cargo bench --bench fabric_engine` writes.
//!
//! ```text
//! telemetry-lint [--trace FILE] [--metrics FILE] [--bench FILE]
//! ```
//!
//! Validates structure only, no golden values: the trace must be Chrome
//! trace-event JSON (a `traceEvents` array whose records all carry
//! name/ph/ts/pid/tid, with `dur` on complete spans and `args.name` on
//! metadata records), the metrics snapshot must hold counter/gauge
//! arrays plus histograms carrying count/sum/min/max/mean/p50/p95/p99,
//! and the bench summary must be `ifsim-bench-fabric-v1`: non-empty
//! `results` rows with an id, positive timings, and at least one
//! iteration, plus a `speedup` object of positive ratios.
//! Exit code 0 when every given file passes, 1 otherwise.

use ifsim_core::telemetry::json::{self, Value};
use std::path::PathBuf;
use std::process::ExitCode;

fn load(path: &PathBuf) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::from_str(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

fn lint_trace(v: &Value) -> Result<usize, String> {
    let events = v
        .get("traceEvents")
        .and_then(|t| t.as_array())
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    for (i, ev) in events.iter().enumerate() {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(field).is_none() {
                return Err(format!("event #{i} missing {field}: {ev:?}"));
            }
        }
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                if ev.get("dur").is_none() {
                    return Err(format!("complete span #{i} missing dur"));
                }
            }
            Some("i") | Some("M") => {
                if ev.get("ph").and_then(|p| p.as_str()) == Some("M")
                    && ev.get("args").and_then(|a| a.get("name")).is_none()
                {
                    return Err(format!("metadata record #{i} missing args.name"));
                }
            }
            other => return Err(format!("event #{i} has unexpected phase {other:?}")),
        }
    }
    Ok(events.len())
}

fn lint_metrics(v: &Value) -> Result<usize, String> {
    // Accept both the bare registry snapshot and the per-experiment
    // `{id, metrics}` wrapper.
    let root = v.get("metrics").unwrap_or(v);
    let mut entries = 0usize;
    for section in ["counters", "gauges"] {
        let items = root
            .get(section)
            .and_then(|s| s.as_array())
            .ok_or_else(|| format!("missing {section} array"))?;
        for (i, item) in items.iter().enumerate() {
            for field in ["name", "labels", "value"] {
                if item.get(field).is_none() {
                    return Err(format!("{section} #{i} missing {field}: {item:?}"));
                }
            }
        }
        entries += items.len();
    }
    let hists = root
        .get("histograms")
        .and_then(|s| s.as_array())
        .ok_or("missing histograms array")?;
    for (i, item) in hists.iter().enumerate() {
        for field in [
            "name", "labels", "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        ] {
            if item.get(field).is_none() {
                return Err(format!("histogram #{i} missing {field}: {item:?}"));
            }
        }
    }
    entries += hists.len();
    if entries == 0 {
        return Err("metrics snapshot is empty".into());
    }
    Ok(entries)
}

/// Validate the `BENCH_fabric.json` summary the `fabric_engine` bench
/// target writes. Returns the number of result rows.
fn lint_bench(v: &Value) -> Result<usize, String> {
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("ifsim-bench-fabric-v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    if v.get("flows").and_then(|f| f.as_u64()).is_none() {
        return Err("missing flows count".into());
    }
    let rows = v
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or("missing results array")?;
    if rows.is_empty() {
        return Err("results is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        if row.get("id").and_then(|s| s.as_str()).is_none() {
            return Err(format!("result #{i} missing id"));
        }
        for field in ["mean_ns", "min_ns"] {
            match row.get(field).and_then(|m| m.as_f64()) {
                Some(ns) if ns > 0.0 => {}
                other => return Err(format!("result #{i} has bad {field} {other:?}")),
            }
        }
        match row.get("iters").and_then(|n| n.as_u64()) {
            Some(n) if n >= 1 => {}
            other => return Err(format!("result #{i} has bad iters {other:?}")),
        }
    }
    let speedups = v
        .get("speedup")
        .and_then(|s| s.as_object())
        .ok_or("missing speedup object")?;
    if speedups.is_empty() {
        return Err("speedup object is empty".into());
    }
    for (name, ratio) in speedups.iter() {
        match ratio.as_f64() {
            Some(r) if r > 0.0 => {}
            other => return Err(format!("speedup {name} has bad ratio {other:?}")),
        }
    }
    Ok(rows.len())
}

fn main() -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut bench: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace = it.next().map(PathBuf::from),
            "--metrics" => metrics = it.next().map(PathBuf::from),
            "--bench" => bench = it.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: telemetry-lint [--trace FILE] [--metrics FILE] [--bench FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if trace.is_none() && metrics.is_none() && bench.is_none() {
        eprintln!("nothing to lint: pass --trace, --metrics, and/or --bench");
        return ExitCode::from(2);
    }
    let mut ok = true;
    if let Some(path) = trace {
        match load(&path).and_then(|v| lint_trace(&v)) {
            Ok(n) => println!("trace   OK: {} — {n} events", path.display()),
            Err(e) => {
                eprintln!("trace   FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = metrics {
        match load(&path).and_then(|v| lint_metrics(&v)) {
            Ok(n) => println!("metrics OK: {} — {n} entries", path.display()),
            Err(e) => {
                eprintln!("metrics FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if let Some(path) = bench {
        match load(&path).and_then(|v| lint_bench(&v)) {
            Ok(n) => println!("bench   OK: {} — {n} results", path.display()),
            Err(e) => {
                eprintln!("bench   FAIL: {} — {e}", path.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
