//! `ifsim-loadgen` — closed-loop load generator for `ifsim-serve`.
//!
//! ```text
//! ifsim-loadgen (--socket PATH | --tcp HOST:PORT) [OPTIONS]
//!
//!   --concurrency K    closed-loop worker connections (default 8)
//!   --requests N       total requests in the mix (default 100)
//!   --seed U64         mix seed (default 0xC0FFEE); the same seed
//!                      replays byte-for-byte the same request sequence,
//!                      so a second run exercises the server's cache
//!   --retries N        max retries per request on Overloaded, with
//!                      seeded decorrelated-jitter backoff (default 50)
//!   --stats-interval SECS
//!                      print a live progress line every SECS seconds
//!                      while the run is in flight (fractional ok)
//!   --out FILE         write a machine-readable JSON summary
//!                      (schema ifsim-loadgen-v1) at the end of the run
//! ```
//!
//! The mix draws uniformly (seeded SplitMix64) from a pool of cheap
//! registry experiments crossed with a handful of jitter seeds — the
//! paper-sweep shape: many repeated configurations. Reports throughput
//! and latency percentiles via the simulator's own `Summary` machinery,
//! plus the observed cache hit rate. Exit code 0 when every request
//! eventually succeeded.

use ifsim_core::des::Summary;
use ifsim_core::telemetry::json::{self, Value};
use ifsim_serve::proto::RunRequest;
use ifsim_serve::{ClientAddr, Connection, Status};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Cheap, check-clean experiments for the request mix. Crossed with
/// `SEED_POOL` this gives 20 distinct cache keys per mix seed.
const EXPERIMENT_POOL: &[&str] = &["fig1", "table1", "table2", "fig6a"];
const SEED_POOL: &[u64] = &[11, 22, 33, 44, 55];

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ifsim-loadgen (--socket PATH | --tcp HOST:PORT) \
         [--concurrency K] [--requests N] [--seed U64] [--retries N] \
         [--stats-interval SECS] [--out FILE]"
    );
    std::process::exit(2)
}

struct Args {
    addr: ClientAddr,
    concurrency: usize,
    requests: usize,
    seed: u64,
    retries: usize,
    stats_interval: Option<Duration>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut addr: Option<ClientAddr> = None;
    let mut args = Args {
        addr: ClientAddr::Tcp(String::new()), // placeholder, replaced below
        concurrency: 8,
        requests: 100,
        seed: 0xC0FFEE,
        retries: 50,
        stats_interval: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--socket" => {
                let path = next("--socket");
                #[cfg(unix)]
                {
                    addr = Some(ClientAddr::Unix(PathBuf::from(path)));
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    usage("--socket requires a Unix platform; use --tcp");
                }
            }
            "--tcp" => addr = Some(ClientAddr::Tcp(next("--tcp"))),
            "--concurrency" => {
                args.concurrency = next("--concurrency")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --concurrency value"));
                if args.concurrency == 0 {
                    usage("--concurrency must be at least 1");
                }
            }
            "--requests" => {
                args.requests = next("--requests")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --requests value"));
            }
            "--seed" => {
                args.seed = next("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed value"));
            }
            "--retries" => {
                args.retries = next("--retries")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --retries value"));
            }
            "--stats-interval" => {
                let secs: f64 = next("--stats-interval")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --stats-interval value"));
                if !(secs > 0.0 && secs.is_finite()) {
                    usage("--stats-interval must be a positive number of seconds");
                }
                args.stats_interval = Some(Duration::from_secs_f64(secs));
            }
            "--out" => args.out = Some(PathBuf::from(next("--out"))),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown option {other}")),
        }
    }
    match addr {
        Some(a) => args.addr = a,
        None => usage("one of --socket or --tcp is required"),
    }
    args
}

/// Backoff bounds for Overloaded retries (decorrelated jitter).
const BACKOFF_BASE_MS: u64 = 2;
const BACKOFF_CAP_MS: u64 = 250;

/// Decorrelated-jitter backoff (the AWS recipe): the next sleep is drawn
/// uniformly from `[base, min(cap, prev * 3))`. Seeded through the
/// worker's own SplitMix64 stream, so a fixed `--seed` replays the exact
/// same backoff schedule — load tests stay reproducible — while
/// concurrent workers still decorrelate instead of thundering back in
/// lockstep the way the old `5ms * attempt` linear ramp did.
fn next_backoff_ms(rng: &mut u64, prev_ms: u64) -> u64 {
    let hi = prev_ms
        .saturating_mul(3)
        .clamp(BACKOFF_BASE_MS + 1, BACKOFF_CAP_MS);
    BACKOFF_BASE_MS + splitmix64(rng) % (hi - BACKOFF_BASE_MS)
}

/// SplitMix64 — the same tiny deterministic generator the simulator's
/// jitter model uses, so the mix is reproducible everywhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The seeded request mix: `n` quick single-rep runs drawn from the
/// experiment × seed pools.
fn build_mix(seed: u64, n: usize) -> Vec<RunRequest> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let exp =
                EXPERIMENT_POOL[(splitmix64(&mut state) % EXPERIMENT_POOL.len() as u64) as usize];
            let jitter_seed = SEED_POOL[(splitmix64(&mut state) % SEED_POOL.len() as u64) as usize];
            let mut req = RunRequest::new(exp);
            req.overrides.quick = true;
            req.overrides.reps = Some(1);
            req.overrides.seed = Some(jitter_seed);
            req
        })
        .collect()
}

/// One request's outcome, reported back to the aggregator.
struct Outcome {
    latency_ns: f64,
    cached: bool,
    overloaded_retries: usize,
    /// Final wire response code (0 for transport errors).
    code: u64,
    error: Option<String>,
}

fn main() -> ExitCode {
    let args = parse_args();
    let mix = Arc::new(build_mix(args.seed, args.requests));
    println!(
        "ifsim-loadgen: {} requests over {} distinct configs, concurrency {}, mix seed {:#x}",
        mix.len(),
        EXPERIMENT_POOL.len() * SEED_POOL.len(),
        args.concurrency,
        args.seed
    );

    let cursor = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<Outcome>();
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for worker in 0..args.concurrency {
        let mix = Arc::clone(&mix);
        let cursor = Arc::clone(&cursor);
        let tx = tx.clone();
        let addr = args.addr.clone();
        let retries = args.retries;
        // Per-worker jitter stream: derived from the mix seed so runs
        // replay deterministically, distinct per worker so they don't
        // share a backoff schedule.
        let mut rng = args.seed ^ (worker as u64).wrapping_mul(0x9E3779B97F4A7C15);
        workers.push(std::thread::spawn(move || {
            let mut conn = match Connection::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    let _ = tx.send(Outcome {
                        latency_ns: 0.0,
                        cached: false,
                        overloaded_retries: 0,
                        code: 0,
                        error: Some(format!("cannot connect: {e}")),
                    });
                    return;
                }
            };
            loop {
                let i = cursor.fetch_add(1, Ordering::SeqCst);
                let Some(req) = mix.get(i) else {
                    return;
                };
                let _ = tx.send(drive_one(&mut conn, req, retries, &mut rng));
            }
        }));
    }
    drop(tx);

    let mut latencies = Vec::with_capacity(mix.len());
    let mut cached = 0usize;
    let mut overloaded_retries = 0usize;
    let mut errors = Vec::new();
    let mut codes: BTreeMap<u64, usize> = BTreeMap::new();
    // Live progress: tick every --stats-interval while outcomes stream
    // in; without the flag the timeout is effectively "wait for work".
    let mut finished = 0usize;
    let mut tick_done = 0usize;
    let mut tick_at = Instant::now();
    loop {
        let timeout = args
            .stats_interval
            .map(|iv| iv.saturating_sub(tick_at.elapsed()))
            .unwrap_or(Duration::from_secs(3600));
        let outcome = match rx.recv_timeout(timeout) {
            Ok(o) => Some(o),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        if let Some(outcome) = outcome {
            finished += 1;
            overloaded_retries += outcome.overloaded_retries;
            *codes.entry(outcome.code).or_insert(0) += 1;
            match outcome.error {
                Some(e) => errors.push(e),
                None => {
                    latencies.push(outcome.latency_ns);
                    if outcome.cached {
                        cached += 1;
                    }
                }
            }
        }
        if let Some(iv) = args.stats_interval {
            if tick_at.elapsed() >= iv {
                let rate = (finished - tick_done) as f64 / tick_at.elapsed().as_secs_f64();
                println!(
                    "[{:6.1}s] {finished}/{} done · {rate:.1} req/s · \
                     {cached} cached · {overloaded_retries} overload retries · {} errors",
                    t0.elapsed().as_secs_f64(),
                    mix.len(),
                    errors.len()
                );
                tick_done = finished;
                tick_at = Instant::now();
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
    let wall = t0.elapsed();

    if latencies.is_empty() {
        eprintln!("no request succeeded; first error: {:?}", errors.first());
        return ExitCode::FAILURE;
    }
    let summary = Summary::from_samples(&latencies);
    let done = latencies.len();
    println!(
        "completed {done}/{} ok ({cached} cache hits, hit rate {:.1}%) \
         with {overloaded_retries} overloaded retries, {} errors",
        mix.len(),
        100.0 * cached as f64 / done as f64,
        errors.len()
    );
    println!(
        "wall {:.2}s · throughput {:.1} req/s",
        wall.as_secs_f64(),
        done as f64 / wall.as_secs_f64()
    );
    let ms = 1e6;
    println!(
        "latency ms: p50 {:.2} · p95 {:.2} · p99 {:.2} · max {:.2}",
        summary.median / ms,
        summary.p95 / ms,
        summary.p99 / ms,
        summary.max / ms
    );
    for e in errors.iter().take(3) {
        eprintln!("error: {e}");
    }
    if let Some(path) = &args.out {
        let doc = summary_json(
            &args,
            &summary,
            done,
            cached,
            overloaded_retries,
            &codes,
            &errors,
            wall,
        );
        if let Err(e) = std::fs::write(path, json::to_string_pretty(&doc)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("summary written to {}", path.display());
    }
    if errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--out` document (schema `ifsim-loadgen-v1`): run parameters,
/// totals, a per-code breakdown, and latency percentiles in nanoseconds.
#[allow(clippy::too_many_arguments)]
fn summary_json(
    args: &Args,
    summary: &Summary,
    done: usize,
    cached: usize,
    overloaded_retries: usize,
    codes: &BTreeMap<u64, usize>,
    errors: &[String],
    wall: Duration,
) -> Value {
    let mut params = json::Map::new();
    params.insert("concurrency", Value::from(args.concurrency));
    params.insert("requests", Value::from(args.requests));
    // Full-range u64 travels as a decimal string, like the wire protocol.
    params.insert("seed", Value::from(args.seed.to_string()));
    params.insert("retries", Value::from(args.retries));
    let mut latency = json::Map::new();
    latency.insert("p50_ns", Value::from(summary.median));
    latency.insert("p95_ns", Value::from(summary.p95));
    latency.insert("p99_ns", Value::from(summary.p99));
    latency.insert("max_ns", Value::from(summary.max));
    latency.insert("mean_ns", Value::from(summary.mean));
    let mut by_code = json::Map::new();
    for (code, n) in codes {
        by_code.insert(code.to_string(), Value::from(*n));
    }
    let mut m = json::Map::new();
    m.insert("schema", Value::from("ifsim-loadgen-v1"));
    m.insert("params", Value::Object(params));
    m.insert("completed", Value::from(done));
    m.insert("cached", Value::from(cached));
    m.insert(
        "cache_hit_rate",
        Value::from(cached as f64 / done.max(1) as f64),
    );
    m.insert("overloaded_retries", Value::from(overloaded_retries));
    m.insert("errors", Value::from(errors.len()));
    m.insert("codes", Value::Object(by_code));
    m.insert("wall_seconds", Value::from(wall.as_secs_f64()));
    m.insert(
        "throughput_rps",
        Value::from(done as f64 / wall.as_secs_f64().max(1e-9)),
    );
    m.insert("latency", Value::Object(latency));
    Value::Object(m)
}

/// Issue one request, retrying Overloaded answers with seeded
/// decorrelated-jitter backoff.
fn drive_one(conn: &mut Connection, req: &RunRequest, retries: usize, rng: &mut u64) -> Outcome {
    let mut overloaded_retries = 0usize;
    let mut backoff_ms = BACKOFF_BASE_MS;
    let t0 = Instant::now();
    loop {
        match conn.run(req) {
            Ok(resp) if resp.status == Status::Ok => {
                return Outcome {
                    latency_ns: t0.elapsed().as_nanos() as f64,
                    cached: resp.cached,
                    overloaded_retries,
                    code: resp.status.code(),
                    error: None,
                };
            }
            Ok(resp) if resp.status == Status::Overloaded => {
                if overloaded_retries >= retries {
                    return Outcome {
                        latency_ns: 0.0,
                        cached: false,
                        overloaded_retries,
                        code: resp.status.code(),
                        error: Some(format!(
                            "{}: still overloaded after {retries} retries",
                            req.experiment_id
                        )),
                    };
                }
                overloaded_retries += 1;
                backoff_ms = next_backoff_ms(rng, backoff_ms);
                std::thread::sleep(Duration::from_millis(backoff_ms));
            }
            Ok(resp) => {
                return Outcome {
                    latency_ns: 0.0,
                    cached: false,
                    overloaded_retries,
                    code: resp.status.code(),
                    error: Some(format!(
                        "{}: {} ({}): {}",
                        req.experiment_id,
                        resp.status.as_str(),
                        resp.status.code(),
                        resp.error.unwrap_or_default()
                    )),
                };
            }
            Err(e) => {
                return Outcome {
                    latency_ns: 0.0,
                    cached: false,
                    overloaded_retries,
                    code: 0,
                    error: Some(format!("{}: transport: {e}", req.experiment_id)),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_seed_deterministic() {
        let mut a = 0xC0FFEEu64;
        let mut b = 0xC0FFEEu64;
        let mut prev_a = BACKOFF_BASE_MS;
        let mut prev_b = BACKOFF_BASE_MS;
        for _ in 0..1000 {
            prev_a = next_backoff_ms(&mut a, prev_a);
            prev_b = next_backoff_ms(&mut b, prev_b);
            assert_eq!(prev_a, prev_b, "same seed, same schedule");
            assert!((BACKOFF_BASE_MS..BACKOFF_CAP_MS).contains(&prev_a));
        }
        let mut c = 0xDEADBEEFu64;
        let schedule_c: Vec<u64> = (0..8)
            .scan(BACKOFF_BASE_MS, |p, _| {
                *p = next_backoff_ms(&mut c, *p);
                Some(*p)
            })
            .collect();
        let mut a = 0xC0FFEEu64;
        let schedule_a: Vec<u64> = (0..8)
            .scan(BACKOFF_BASE_MS, |p, _| {
                *p = next_backoff_ms(&mut a, *p);
                Some(*p)
            })
            .collect();
        assert_ne!(schedule_a, schedule_c, "different seeds decorrelate");
    }

    #[test]
    fn mix_is_seed_deterministic() {
        let a = build_mix(7, 32);
        let b = build_mix(7, 32);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        let c = build_mix(8, 32);
        assert!(a.iter().zip(&c).any(|(x, y)| x != y));
    }
}
