//! `ifsim-drift` — the paper-drift watchdog.
//!
//! Re-runs the golden-pinned registry experiments under the pinned
//! configuration (`BenchConfig::quick()` with `reps = 1`, default seed),
//! diffs every CSV cell against `golden/`, and reports the maximum
//! relative drift per figure against a per-figure tolerance:
//!
//! ```text
//! ifsim-drift [--golden DIR] [--figures fig6a,fig7,...]
//!             [--perturb FIELD=FACTOR] [--metrics-out FILE] [--list-fields]
//! ```
//!
//! Exit status: 0 when every figure is within tolerance, 1 when any
//! drifts past it (the worst offender is named), 2 on usage errors.
//!
//! `--perturb` multiplies one `Calibration` field by a factor before the
//! run — the self-test CI uses it to prove the watchdog actually trips
//! (`--perturb eff_sdma_xgmi=1.1` must fail fig6c/fig7). `--metrics-out`
//! writes `drift_max_rel{figure=...}` gauges for dashboards.

use ifsim_core::hip::Calibration;
use ifsim_core::microbench::BenchConfig;
use ifsim_core::registry;
use ifsim_core::telemetry::{json, MetricKey, MetricsRegistry};
use std::path::PathBuf;
use std::process::ExitCode;

/// Figures pinned under `golden/`, with their drift tolerance. Hop counts
/// (fig6a) are integers — any change is drift; the timing figures allow a
/// small relative band so a legitimate ±2 % calibration nudge is reported
/// as drift only when it actually moves a figure.
const FIGURES: &[(&str, f64)] = &[
    ("fig6a", 1e-9),
    ("fig6b", 0.02),
    ("fig6c", 0.02),
    ("fig7", 0.02),
];

struct Args {
    golden: PathBuf,
    figures: Vec<String>,
    perturb: Option<(String, f64)>,
    metrics_out: Option<PathBuf>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ifsim-drift [--golden DIR] [--figures LIST] \
         [--perturb FIELD=FACTOR] [--metrics-out FILE] [--list-fields]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        golden: PathBuf::from("golden"),
        figures: FIGURES.iter().map(|(f, _)| f.to_string()).collect(),
        perturb: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--golden" => args.golden = PathBuf::from(next("--golden")),
            "--figures" => {
                args.figures = next("--figures").split(',').map(str::to_string).collect();
                for f in &args.figures {
                    if !FIGURES.iter().any(|(name, _)| name == f) {
                        usage(&format!(
                            "unknown figure '{f}'; pinned: {}",
                            FIGURES
                                .iter()
                                .map(|(n, _)| *n)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            "--perturb" => {
                let v = next("--perturb");
                let (field, factor) = v
                    .split_once('=')
                    .unwrap_or_else(|| usage("--perturb wants FIELD=FACTOR"));
                let factor: f64 = factor
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad factor '{factor}'")));
                if !Calibration::f64_field_names().any(|name| name == field) {
                    usage(&format!(
                        "unknown calibration field '{field}'; try --list-fields"
                    ));
                }
                args.perturb = Some((field.to_string(), factor));
            }
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(next("--metrics-out"))),
            "--list-fields" => {
                for name in Calibration::f64_field_names() {
                    println!("{name}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown option {other}")),
        }
    }
    args
}

/// Worst relative difference between two CSV artifacts, cell by cell.
/// Numeric cells compare relatively; anything else (headers, the blank
/// diagonal) must match exactly, and structural mismatches — extra rows,
/// missing columns — count as infinite drift.
fn max_rel_drift(current: &str, golden: &str) -> (f64, String) {
    let cur: Vec<&str> = current.lines().collect();
    let gold: Vec<&str> = golden.lines().collect();
    if cur.len() != gold.len() {
        return (
            f64::INFINITY,
            format!("row count {} vs golden {}", cur.len(), gold.len()),
        );
    }
    let mut worst = 0.0f64;
    let mut site = String::from("no drift");
    for (li, (c, g)) in cur.iter().zip(&gold).enumerate() {
        let cc: Vec<&str> = c.split(',').collect();
        let gc: Vec<&str> = g.split(',').collect();
        if cc.len() != gc.len() {
            return (f64::INFINITY, format!("column count differs on line {li}"));
        }
        for (ci, (a, b)) in cc.iter().zip(&gc).enumerate() {
            match (a.parse::<f64>(), b.parse::<f64>()) {
                (Ok(x), Ok(y)) => {
                    let rel = (x - y).abs() / y.abs().max(1e-12);
                    if rel > worst {
                        worst = rel;
                        site = format!("line {li}, column {ci}: {x} vs golden {y}");
                    }
                }
                _ => {
                    if a != b {
                        return (
                            f64::INFINITY,
                            format!("non-numeric cell changed on line {li}: '{a}' vs '{b}'"),
                        );
                    }
                }
            }
        }
    }
    (worst, site)
}

fn main() -> ExitCode {
    let args = parse_args();
    // The exact configuration golden/ was generated with (see
    // tests/golden_outputs.rs): quick, one rep, default seed.
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;
    if let Some((field, factor)) = &args.perturb {
        *cfg.calib
            .f64_field_mut(field)
            .expect("validated in parse_args") *= factor;
        println!("perturbed {field} by ×{factor}");
    }

    let mut metrics = MetricsRegistry::new();
    let mut worst: Option<(String, f64, f64)> = None; // (figure, rel, tol)
    let mut failed = 0usize;
    for fig in &args.figures {
        let tol = FIGURES
            .iter()
            .find(|(name, _)| name == fig)
            .expect("validated in parse_args")
            .1;
        let exp = match registry::by_id(fig) {
            Some(e) => e,
            None => {
                eprintln!("{fig}: not in the experiment registry");
                return ExitCode::from(2);
            }
        };
        let result = exp.run(&cfg);
        if result.csv.is_empty() {
            eprintln!("{fig}: experiment produced no CSV artifacts");
            return ExitCode::from(2);
        }
        for (name, contents) in &result.csv {
            let path = args.golden.join(name);
            let golden = match std::fs::read_to_string(&path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("{fig}: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let (rel, site) = max_rel_drift(contents, &golden);
            let pass = rel <= tol;
            let verdict = if pass {
                "ok".to_string()
            } else {
                format!("FAIL at {site}")
            };
            println!("{fig} ({name}): max rel drift {rel:.3e} (tol {tol:.1e}) — {verdict}");
            metrics.gauge_set(
                MetricKey::new("drift_max_rel").with("figure", fig.clone()),
                rel,
            );
            metrics.gauge_set(
                MetricKey::new("drift_tolerance").with("figure", fig.clone()),
                tol,
            );
            if !pass {
                failed += 1;
                metrics.counter_add(MetricKey::new("drift_failures"), 1.0);
            }
            if worst.as_ref().is_none_or(|(_, w, _)| rel > *w) {
                worst = Some((fig.clone(), rel, tol));
            }
        }
    }

    if let Some(path) = &args.metrics_out {
        let text = json::to_string_pretty(&metrics.to_json());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if failed > 0 {
        let (fig, rel, tol) = worst.expect("a failure implies a worst figure");
        eprintln!(
            "drift check FAILED: {failed} artifact(s) out of tolerance; \
             worst is {fig} at {rel:.3e} (tol {tol:.1e})"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "drift check passed: {} figure(s) within tolerance",
        args.figures.len()
    );
    ExitCode::SUCCESS
}
