//! Built-in trace generators: common multi-GPU communication motifs
//! expanded into explicit [`TraceRecord`] DAGs, so they replay through the
//! exact machinery user-supplied traces use. Record ids are stable,
//! zero-padded strings — the canonical replay order is reproducible and
//! diffs of generated traces stay readable.

use crate::format::GeneratorSpec;
use crate::trace::{TraceOp, TraceRecord};
use ifsim_apps::train::{step_pattern, StepOp, TrainConfig};

/// Expand a generator into its trace.
pub fn expand(spec: &GeneratorSpec) -> Vec<TraceRecord> {
    match *spec {
        GeneratorSpec::MoeAllToAll {
            ranks,
            bytes_per_pair,
            steps,
            compute_bytes,
        } => moe_alltoall(ranks, bytes_per_pair, steps, compute_bytes),
        GeneratorSpec::ParamServer {
            ranks,
            server,
            push_bytes,
            pull_bytes,
            steps,
            apply_bytes,
        } => param_server(ranks, server, push_bytes, pull_bytes, steps, apply_bytes),
        GeneratorSpec::Halo {
            grid,
            halo_bytes,
            iters,
            compute_bytes,
        } => halo(grid, halo_bytes, iters, compute_bytes),
        GeneratorSpec::TrainStep {
            ranks,
            params,
            batch_bytes,
            steps,
            compute_passes,
        } => train_step(ranks, params, batch_bytes, steps, compute_passes),
    }
}

fn rec(id: String, op: TraceOp, depends_on: Vec<String>) -> TraceRecord {
    TraceRecord { id, op, depends_on }
}

/// Mixture-of-experts layer: per step, a gating kernel on every rank, a
/// pairwise all-to-all dispatch (round `r` sends `rank -> rank+r mod n`),
/// an expert kernel gated on every incoming shard, and the mirror-image
/// combine all-to-all. Step `s+1`'s gate waits for step `s`'s combine
/// shards to land — the pattern that makes MoE latency-bound on the
/// all-to-all rather than on expert FLOPs.
fn moe_alltoall(
    n: usize,
    bytes_per_pair: u64,
    steps: usize,
    compute_bytes: u64,
) -> Vec<TraceRecord> {
    let gate_bytes = (compute_bytes / 4).max(8);
    let mut out = Vec::new();
    for s in 0..steps {
        for r in 0..n {
            // Gate waits on last step's combine shards arriving here.
            let deps = if s == 0 {
                Vec::new()
            } else {
                (1..n)
                    .map(|round| {
                        let src = (r + n - round % n) % n;
                        format!("s{:02}.comb{round:02}.r{src}", s - 1)
                    })
                    .collect()
            };
            out.push(rec(
                format!("s{s:02}.gate.r{r}"),
                TraceOp::Kernel {
                    gcd: r as u8,
                    bytes: gate_bytes,
                },
                deps,
            ));
        }
        for round in 1..n {
            for src in 0..n {
                out.push(rec(
                    format!("s{s:02}.disp{round:02}.r{src}"),
                    TraceOp::Copy {
                        src: src as u8,
                        dst: ((src + round) % n) as u8,
                        bytes: bytes_per_pair,
                    },
                    vec![format!("s{s:02}.gate.r{src}")],
                ));
            }
        }
        for r in 0..n {
            // Expert waits on every shard dispatched to this rank.
            let deps = (1..n)
                .map(|round| {
                    let src = (r + n - round % n) % n;
                    format!("s{s:02}.disp{round:02}.r{src}")
                })
                .collect();
            out.push(rec(
                format!("s{s:02}.expert.r{r}"),
                TraceOp::Kernel {
                    gcd: r as u8,
                    bytes: compute_bytes,
                },
                deps,
            ));
        }
        for round in 1..n {
            for src in 0..n {
                out.push(rec(
                    format!("s{s:02}.comb{round:02}.r{src}"),
                    TraceOp::Copy {
                        src: src as u8,
                        dst: ((src + round) % n) as u8,
                        bytes: bytes_per_pair,
                    },
                    vec![format!("s{s:02}.expert.r{src}")],
                ));
            }
        }
    }
    out
}

/// Parameter-server push/pull: every worker pushes gradients to the
/// server rank, an apply kernel folds them in, workers pull fresh
/// parameters. The server's ingress link is the deliberate hotspot.
fn param_server(
    n: usize,
    server: usize,
    push_bytes: u64,
    pull_bytes: u64,
    steps: usize,
    apply_bytes: u64,
) -> Vec<TraceRecord> {
    let workers: Vec<usize> = (0..n).filter(|&r| r != server).collect();
    let mut out = Vec::new();
    for s in 0..steps {
        for &w in &workers {
            let deps = if s == 0 {
                Vec::new()
            } else {
                vec![format!("s{:02}.pull.r{w}", s - 1)]
            };
            out.push(rec(
                format!("s{s:02}.push.r{w}"),
                TraceOp::Copy {
                    src: w as u8,
                    dst: server as u8,
                    bytes: push_bytes,
                },
                deps,
            ));
        }
        out.push(rec(
            format!("s{s:02}.apply"),
            TraceOp::Kernel {
                gcd: server as u8,
                bytes: apply_bytes,
            },
            workers
                .iter()
                .map(|w| format!("s{s:02}.push.r{w}"))
                .collect(),
        ));
        for &w in &workers {
            out.push(rec(
                format!("s{s:02}.pull.r{w}"),
                TraceOp::Copy {
                    src: server as u8,
                    dst: w as u8,
                    bytes: pull_bytes,
                },
                vec![format!("s{s:02}.apply")],
            ));
        }
    }
    out
}

/// 2-D halo exchange on a `gx x gy` rank grid, row-major on devices,
/// 4-neighborhood, non-periodic: each iteration computes, then trades
/// halos with direct neighbors; the next compute waits on the halos
/// arriving. The canonical stencil overlap pattern at node scale.
fn halo(
    grid: (usize, usize),
    halo_bytes: u64,
    iters: usize,
    compute_bytes: u64,
) -> Vec<TraceRecord> {
    let (gx, gy) = grid;
    let rank = |x: usize, y: usize| y * gx + x;
    let neighbors = |x: usize, y: usize| {
        let mut v = Vec::new();
        if x > 0 {
            v.push(rank(x - 1, y));
        }
        if x + 1 < gx {
            v.push(rank(x + 1, y));
        }
        if y > 0 {
            v.push(rank(x, y - 1));
        }
        if y + 1 < gy {
            v.push(rank(x, y + 1));
        }
        v
    };
    let mut out = Vec::new();
    for it in 0..iters {
        for y in 0..gy {
            for x in 0..gx {
                let r = rank(x, y);
                // Compute waits for last iteration's halos to arrive.
                let deps = if it == 0 {
                    Vec::new()
                } else {
                    neighbors(x, y)
                        .into_iter()
                        .map(|nb| format!("i{:02}.halo.r{nb}.to{r}", it - 1))
                        .collect()
                };
                out.push(rec(
                    format!("i{it:02}.comp.r{r}"),
                    TraceOp::Kernel {
                        gcd: r as u8,
                        bytes: compute_bytes,
                    },
                    deps,
                ));
            }
        }
        for y in 0..gy {
            for x in 0..gx {
                let r = rank(x, y);
                for nb in neighbors(x, y) {
                    out.push(rec(
                        format!("i{it:02}.halo.r{r}.to{nb}"),
                        TraceOp::Copy {
                            src: r as u8,
                            dst: nb as u8,
                            bytes: halo_bytes,
                        },
                        vec![format!("i{it:02}.comp.r{r}")],
                    ));
                }
            }
        }
    }
    out
}

/// Data-parallel training-step replay, reusing the op pattern the
/// `ifsim-apps` trainer executes ([`step_pattern`]): ingest, compute, the
/// `2(n-1)`-round ring AllReduce, and the optimizer. Dependencies follow
/// the ring's data flow: a rank forwards in round `r` the chunk it
/// received in round `r-1`.
fn train_step(
    ranks: usize,
    params: usize,
    batch_bytes: u64,
    steps: usize,
    compute_passes: usize,
) -> Vec<TraceRecord> {
    let n = ranks;
    let cfg = TrainConfig {
        devices: (0..n).collect(),
        params,
        batch_bytes,
        steps: 1, // the pattern is per step; we stitch steps here
        compute_passes,
        overlap_ingestion: false,
    };
    let pattern = step_pattern(&cfg);
    let last_round = 2 * n.saturating_sub(1) - 1;
    let mut out = Vec::new();
    for s in 0..steps {
        for op in &pattern {
            match *op {
                StepOp::Ingest { rank, bytes } => {
                    let deps = if s == 0 {
                        Vec::new()
                    } else {
                        vec![format!("s{:02}.opt.r{rank}", s - 1)]
                    };
                    out.push(rec(
                        format!("s{s:02}.in.r{rank}"),
                        TraceOp::H2D {
                            dst: rank as u8,
                            bytes,
                        },
                        deps,
                    ));
                }
                StepOp::Compute { rank, bytes } => {
                    out.push(rec(
                        format!("s{s:02}.fb.r{rank}"),
                        TraceOp::Kernel {
                            gcd: rank as u8,
                            bytes,
                        },
                        vec![format!("s{s:02}.in.r{rank}")],
                    ));
                }
                StepOp::RingCopy {
                    src,
                    dst,
                    bytes,
                    round,
                } => {
                    let deps = if round == 0 {
                        vec![format!("s{s:02}.fb.r{src}")]
                    } else {
                        // Forward the chunk that arrived last round from
                        // the ring predecessor.
                        let pred = (src + n - 1) % n;
                        vec![format!("s{s:02}.ring{:02}.r{pred}", round - 1)]
                    };
                    out.push(rec(
                        format!("s{s:02}.ring{round:02}.r{src}"),
                        TraceOp::Copy {
                            src: src as u8,
                            dst: dst as u8,
                            bytes,
                        },
                        deps,
                    ));
                }
                StepOp::Optimizer { rank, bytes } => {
                    // The last chunk lands here from the ring predecessor.
                    let pred = (rank + n - 1) % n;
                    out.push(rec(
                        format!("s{s:02}.opt.r{rank}"),
                        TraceOp::Kernel {
                            gcd: rank as u8,
                            bytes,
                        },
                        vec![format!("s{s:02}.ring{last_round:02}.r{pred}")],
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;
    use ifsim_hip::{EnvConfig, HipSim};

    fn all_specs() -> Vec<GeneratorSpec> {
        vec![
            GeneratorSpec::MoeAllToAll {
                ranks: 4,
                bytes_per_pair: 1 << 20,
                steps: 2,
                compute_bytes: 4 << 20,
            },
            GeneratorSpec::ParamServer {
                ranks: 4,
                server: 0,
                push_bytes: 2 << 20,
                pull_bytes: 2 << 20,
                steps: 2,
                apply_bytes: 4 << 20,
            },
            GeneratorSpec::Halo {
                grid: (2, 2),
                halo_bytes: 1 << 20,
                iters: 2,
                compute_bytes: 4 << 20,
            },
            GeneratorSpec::TrainStep {
                ranks: 4,
                params: (4 << 20) / 4,
                batch_bytes: 4 << 20,
                steps: 2,
                compute_passes: 1,
            },
        ]
    }

    #[test]
    fn every_generator_expands_to_a_valid_trace_that_replays() {
        for spec in all_specs() {
            let records = expand(&spec);
            trace::validate(&records, 8).unwrap_or_else(|e| panic!("{}: {e}", spec.kind_name()));
            let mut hip = HipSim::new(EnvConfig::default());
            hip.mem_mut().set_phantom_threshold(0);
            let stats = trace::replay(&mut hip, &records)
                .unwrap_or_else(|e| panic!("{}: {e:?}", spec.kind_name()));
            assert!(stats.makespan.as_us() > 0.0, "{}", spec.kind_name());
        }
    }

    #[test]
    fn moe_alltoall_moves_the_expected_bytes() {
        let n = 4u64;
        let records = expand(&GeneratorSpec::MoeAllToAll {
            ranks: n as usize,
            bytes_per_pair: 1 << 20,
            steps: 3,
            compute_bytes: 4 << 20,
        });
        let copy_bytes: u64 = records
            .iter()
            .filter_map(|r| match r.op {
                TraceOp::Copy { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum();
        // Dispatch + combine: 2 all-to-alls of n*(n-1) pairwise shards.
        assert_eq!(copy_bytes, 3 * 2 * n * (n - 1) * (1 << 20));
    }

    #[test]
    fn steps_serialize_through_the_dependency_chain() {
        // In the param-server trace, step 1's pushes must depend on step
        // 0's pulls — no cross-step parallelism.
        let records = expand(&GeneratorSpec::ParamServer {
            ranks: 3,
            server: 1,
            push_bytes: 1 << 20,
            pull_bytes: 1 << 20,
            steps: 2,
            apply_bytes: 1 << 20,
        });
        let push1 = records.iter().find(|r| r.id == "s01.push.r0").unwrap();
        assert_eq!(push1.depends_on, vec!["s00.pull.r0".to_string()]);
    }

    #[test]
    fn train_step_ring_forwards_received_chunks() {
        let records = expand(&GeneratorSpec::TrainStep {
            ranks: 4,
            params: 1 << 20,
            batch_bytes: 1 << 20,
            steps: 1,
            compute_passes: 1,
        });
        let hop = records.iter().find(|r| r.id == "s00.ring01.r2").unwrap();
        // Rank 2 forwards in round 1 what rank 1 sent it in round 0.
        assert_eq!(hop.depends_on, vec!["s00.ring00.r1".to_string()]);
    }
}
