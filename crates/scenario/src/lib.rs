//! # ifsim-scenario — declarative scenarios and trace replay
//!
//! The workload frontend of the simulator: JSON scenario files
//! (schema `ifsim-scenario-v1`) describing *what to run* — topology
//! profile, calibration overrides, a fault schedule, a workload (registry
//! experiment, explicit trace DAG, or built-in generator), and sweep
//! axes — compiled into the [`ifsim_core::Experiment`] machinery, so every
//! existing driver (`repro`, `mgpu-bench --jobs N`, telemetry capture,
//! critical-path analysis, `ifsim-serve` caching) runs scenarios without
//! modification.
//!
//! ```
//! let text = r#"{
//!   "schema": "ifsim-scenario-v1",
//!   "name": "moe-demo",
//!   "workload": {"type": "moe-alltoall", "ranks": 4,
//!                "bytes_per_pair": 1048576, "steps": 1,
//!                "compute_bytes": 4194304},
//!   "config": {"reps": 2, "warmup": 0}
//! }"#;
//! let scenario = ifsim_scenario::Scenario::from_str(text).unwrap();
//! let exp = ifsim_scenario::compile(&scenario).unwrap();
//! let result = exp.run(&ifsim_core::BenchConfig::quick());
//! assert!(result.all_passed());
//! ```
//!
//! See `docs/SCENARIOS.md` for the format reference.

#![warn(missing_docs)]

pub mod compile;
pub mod format;
pub mod generators;
pub mod trace;

pub use compile::compile;
pub use format::{ConfigSection, FaultSpec, GeneratorSpec, Scenario, SweepAxis, Workload, SCHEMA};
pub use trace::{ReplayStats, TraceOp, TraceRecord};

use std::fmt;

/// A validation error annotated with the field path that caused it —
/// `workload.records[3].bytes`, `sweep[0].values[2]`, `calib.eff_sdma_xgmi`.
/// The serve daemon surfaces the path in its structured error responses;
/// `telemetry-lint --scenario` prints it.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldError {
    /// Dotted/indexed path of the offending field ("" for document-level
    /// problems such as invalid JSON).
    pub field: String,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.field.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "field '{}': {}", self.field, self.message)
        }
    }
}

impl std::error::Error for FieldError {}
