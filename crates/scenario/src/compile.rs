//! Compiling a [`Scenario`] into the [`Experiment`] machinery.
//!
//! The compiled experiment is indistinguishable from a registry entry to
//! every driver: it runs under `repro`, `mgpu-bench --jobs N`, telemetry
//! capture, DAG/critpath analysis, and `ifsim-serve` without those layers
//! knowing scenarios exist. The scenario's content digest travels in
//! `digest_extra`, so `config_digest` — and therefore every result cache —
//! keys on scenario *content*, not its name.

use crate::format::{Scenario, Workload};
use crate::generators;
use crate::trace::{self, TraceRecord};
use crate::FieldError;
use ifsim_core::experiment::{Check, Experiment, ExperimentResult};
use ifsim_core::{registry, BenchConfig};
use ifsim_des::Time;
use ifsim_fabric::FaultPlan;
use ifsim_hip::EnvConfig;
use std::fmt::Write as _;
use std::sync::Arc;

impl Scenario {
    /// The scenario's overrides applied on top of a driver-supplied base
    /// configuration. Infallible after [`Scenario::validate`].
    pub fn apply_config(&self, base: &BenchConfig) -> BenchConfig {
        let mut cfg = if self.config.quick {
            BenchConfig::quick()
        } else {
            base.clone()
        };
        if let Some(seed) = self.config.seed {
            cfg.seed = seed;
        }
        if let Some(reps) = self.config.reps {
            cfg.reps = reps;
        }
        if let Some(warmup) = self.config.warmup {
            cfg.warmup = warmup;
        }
        for (field, factor) in &self.calib {
            if let Some(v) = cfg.calib.f64_field_mut(field) {
                *v *= factor;
            }
        }
        cfg
    }

    /// The scheduled faults as a runtime fault plan.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            plan = plan.at(Time::from_ns(f.at_us * 1e3), f.kind);
        }
        plan
    }
}

/// Compile a scenario into an experiment. Registry workloads delegate to
/// the named registry entry (the scenario contributes configuration only,
/// so results are byte-identical to running the entry directly); trace and
/// generator workloads replay their record DAG, one sweep point at a time.
pub fn compile(s: &Scenario) -> Result<Experiment, FieldError> {
    s.validate()?;
    let id = format!("scenario:{}", s.name);
    let description = if s.description.is_empty() {
        format!(
            "scenario file '{}' ({})",
            s.name,
            workload_kind(&s.workload)
        )
    } else {
        s.description.clone()
    };
    let digest_extra = vec![("scenario".to_string(), s.digest())];
    let scenario = s.clone();
    let runner: Arc<dyn Fn(&BenchConfig) -> ExperimentResult + Send + Sync> = match &s.workload {
        Workload::Registry { id } => {
            // Existence was validated; resolve once at compile time.
            let inner = registry::by_id(id).ok_or_else(|| FieldError {
                field: "workload.id".into(),
                message: format!("unknown registry experiment '{id}'"),
            })?;
            Arc::new(move |cfg| inner.run(&scenario.apply_config(cfg)))
        }
        Workload::Trace { .. } | Workload::Generator(_) => {
            let exp_id = ifsim_core::experiment::intern(&id);
            let exp_title = ifsim_core::experiment::intern(&s.title);
            Arc::new(move |cfg| run_replay(&scenario, cfg, exp_id, exp_title))
        }
    };
    Ok(Experiment::dynamic(
        &id,
        &s.title,
        &description,
        digest_extra,
        runner,
    ))
}

fn workload_kind(w: &Workload) -> &'static str {
    match w {
        Workload::Registry { .. } => "registry delegate",
        Workload::Trace { .. } => "trace replay",
        Workload::Generator(g) => g.kind_name(),
    }
}

/// One sweep point: parameter assignments and the records they expand to.
struct SweepPoint {
    params: Vec<(String, f64)>,
    records: Vec<TraceRecord>,
}

fn sweep_points(s: &Scenario) -> Vec<SweepPoint> {
    match &s.workload {
        Workload::Registry { .. } => Vec::new(),
        Workload::Trace { records } => vec![SweepPoint {
            params: Vec::new(),
            records: records.clone(),
        }],
        Workload::Generator(g) => {
            if s.sweep.is_empty() {
                return vec![SweepPoint {
                    params: Vec::new(),
                    records: generators::expand(g),
                }];
            }
            // Cartesian product, first axis outermost.
            let mut assignments: Vec<Vec<(String, f64)>> = vec![Vec::new()];
            for axis in &s.sweep {
                let mut next = Vec::new();
                for base in &assignments {
                    for &v in &axis.values {
                        let mut a = base.clone();
                        a.push((axis.param.clone(), v));
                        next.push(a);
                    }
                }
                assignments = next;
            }
            assignments
                .into_iter()
                .map(|params| {
                    let mut spec = g.clone();
                    for (name, v) in &params {
                        // Validated against a probe clone at parse time.
                        let _ = spec.set_param(name, *v);
                    }
                    SweepPoint {
                        params,
                        records: generators::expand(&spec),
                    }
                })
                .collect()
        }
    }
}

/// Replay every sweep point `cfg.reps` times (after `cfg.warmup` discarded
/// reps), each rep in a fresh runtime with the fault plan re-armed and a
/// per-rep seed, and report mean makespans.
fn run_replay(
    s: &Scenario,
    cfg: &BenchConfig,
    exp_id: &'static str,
    exp_title: &'static str,
) -> ExperimentResult {
    let cfg = s.apply_config(cfg);
    let points = sweep_points(s);
    let mut rendered = String::new();
    let mut csv = String::from("point,records,bytes,makespan_us,gbps\n");
    let mut checks: Vec<Check> = Vec::new();
    let _ = writeln!(
        rendered,
        "{:<28} {:>8} {:>12} {:>14} {:>10}",
        "point", "records", "MiB", "makespan (us)", "GB/s"
    );
    let mut all_ok = true;
    for (pi, point) in points.iter().enumerate() {
        let label = if point.params.is_empty() {
            "baseline".to_string()
        } else {
            point
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let mut sum_us = 0.0;
        let mut bytes = 0u64;
        let mut failed: Option<String> = None;
        for rep in 0..cfg.warmup + cfg.reps {
            let mut rep_cfg = cfg.clone();
            rep_cfg.seed = cfg.seed.wrapping_add(rep as u64);
            let mut hip = rep_cfg.runtime(EnvConfig::default());
            if let Err(e) = hip.set_fault_plan(s.fault_plan()) {
                failed = Some(format!("fault plan rejected: {e:?}"));
                break;
            }
            match trace::replay(&mut hip, &point.records) {
                Ok(stats) => {
                    if rep >= cfg.warmup {
                        sum_us += stats.makespan.as_us();
                        bytes = stats.total_bytes();
                    }
                }
                Err(e) => {
                    failed = Some(format!("replay failed: {e:?}"));
                    break;
                }
            }
        }
        if let Some(msg) = failed {
            all_ok = false;
            let _ = writeln!(rendered, "{label:<28} {msg}");
            checks.push(Check::new(format!("point[{pi}] replays"), false, msg));
            continue;
        }
        let mean_us = sum_us / cfg.reps.max(1) as f64;
        let gbps = if mean_us > 0.0 {
            bytes as f64 / (mean_us * 1e-6) / 1e9
        } else {
            0.0
        };
        let _ = writeln!(
            rendered,
            "{:<28} {:>8} {:>12.1} {:>14.1} {:>10.2}",
            label,
            point.records.len(),
            bytes as f64 / (1 << 20) as f64,
            mean_us,
            gbps
        );
        let _ = writeln!(
            csv,
            "{},{},{},{:.3},{:.4}",
            label.replace(',', ";"),
            point.records.len(),
            bytes,
            mean_us,
            gbps
        );
        if mean_us <= 0.0 {
            all_ok = false;
        }
    }
    checks.push(Check::new(
        "replay completes",
        all_ok,
        format!(
            "{} point(s), {} rep(s) each, positive makespans",
            points.len(),
            cfg.reps
        ),
    ));
    ExperimentResult {
        id: exp_id,
        title: exp_title,
        rendered,
        csv: vec![(format!("scenario_{}.csv", s.name), csv)],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ConfigSection, GeneratorSpec};

    fn moe(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            title: name.into(),
            description: String::new(),
            topology: "frontier".into(),
            config: ConfigSection {
                quick: false,
                seed: Some(7),
                reps: Some(2),
                warmup: Some(0),
            },
            calib: Vec::new(),
            faults: Vec::new(),
            workload: Workload::Generator(GeneratorSpec::MoeAllToAll {
                ranks: 4,
                bytes_per_pair: 1 << 20,
                steps: 1,
                compute_bytes: 4 << 20,
            }),
            sweep: Vec::new(),
        }
    }

    #[test]
    fn compiled_scenarios_run_and_pass_their_checks() {
        let exp = compile(&moe("compile-smoke")).unwrap();
        assert_eq!(exp.id, "scenario:compile-smoke");
        let r = exp.run(&BenchConfig::quick());
        assert!(r.all_passed(), "{}", r.report());
        assert!(r.rendered.contains("baseline"));
        assert_eq!(r.csv.len(), 1);
    }

    #[test]
    fn digest_tracks_content_not_name() {
        let a = moe("same-name");
        let mut b = moe("same-name");
        if let Workload::Generator(GeneratorSpec::MoeAllToAll { bytes_per_pair, .. }) =
            &mut b.workload
        {
            *bytes_per_pair <<= 1;
        }
        let cfg = BenchConfig::default();
        let ea = compile(&a).unwrap();
        let eb = compile(&b).unwrap();
        assert_eq!(ea.id, eb.id);
        assert_ne!(ea.config_digest(&cfg), eb.config_digest(&cfg));
        // Same content -> same digest, regardless of compile order.
        let ea2 = compile(&a).unwrap();
        assert_eq!(ea.config_digest(&cfg), ea2.config_digest(&cfg));
    }

    #[test]
    fn registry_delegation_is_byte_identical() {
        let s = Scenario {
            workload: Workload::Registry { id: "fig6b".into() },
            config: ConfigSection::default(),
            ..moe("reg-twin")
        };
        let cfg = BenchConfig::quick();
        let direct = registry::by_id("fig6b").unwrap().run(&cfg);
        let via = compile(&s).unwrap().run(&cfg);
        assert_eq!(direct.rendered, via.rendered);
        assert_eq!(direct.csv, via.csv);
    }

    #[test]
    fn sweeps_expand_the_cartesian_product() {
        let mut s = moe("sweep-grid");
        s.sweep = vec![
            crate::format::SweepAxis {
                param: "bytes_per_pair".into(),
                values: vec![65536.0, 262144.0],
            },
            crate::format::SweepAxis {
                param: "ranks".into(),
                values: vec![2.0, 4.0],
            },
        ];
        let points = sweep_points(&s);
        assert_eq!(points.len(), 4);
        let r = compile(&s).unwrap().run(&BenchConfig::quick());
        assert!(r.all_passed(), "{}", r.report());
        assert!(r.rendered.contains("bytes_per_pair=65536 ranks=2"));
    }
}
