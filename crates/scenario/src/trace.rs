//! Trace records and their replay through the HIP runtime.
//!
//! A trace is a DAG of transfer/compute records. Replay issues every
//! record onto a per-device stream in **canonical topological order**
//! (Kahn's algorithm with a lexicographic tie-break on record id), turning
//! `depends_on` edges that cross streams into `hipStreamWaitEvent` waits.
//! Because the issue order is recomputed from the DAG, any two
//! topologically-valid orderings of the same records replay identically —
//! shuffled input cannot change the schedule.

use crate::FieldError;
use ifsim_des::Dur;
use ifsim_hip::{BufferId, HipResult, HipSim, HostAllocFlags, KernelSpec, MemcpyKind, StreamId};
use std::collections::{BTreeMap, BTreeSet};

/// One operation of a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceOp {
    /// Device-to-device copy over the fabric (`hipMemcpyPeerAsync`).
    Copy {
        /// Source GCD.
        src: u8,
        /// Destination GCD.
        dst: u8,
        /// Payload bytes.
        bytes: u64,
    },
    /// Host-to-device ingestion.
    H2D {
        /// Destination GCD.
        dst: u8,
        /// Payload bytes.
        bytes: u64,
    },
    /// Device-to-host drain.
    D2H {
        /// Source GCD.
        src: u8,
        /// Payload bytes.
        bytes: u64,
    },
    /// Compute, modeled as STREAM-copy memory traffic on the GCD.
    Kernel {
        /// Executing GCD.
        gcd: u8,
        /// Total kernel memory traffic (reads + writes).
        bytes: u64,
    },
}

impl TraceOp {
    /// The device whose stream issues this record.
    pub fn issuing_gcd(&self) -> u8 {
        match *self {
            TraceOp::Copy { src, .. } => src,
            TraceOp::H2D { dst, .. } => dst,
            TraceOp::D2H { src, .. } => src,
            TraceOp::Kernel { gcd, .. } => gcd,
        }
    }

    /// Payload bytes.
    pub fn bytes(&self) -> u64 {
        match *self {
            TraceOp::Copy { bytes, .. }
            | TraceOp::H2D { bytes, .. }
            | TraceOp::D2H { bytes, .. }
            | TraceOp::Kernel { bytes, .. } => bytes,
        }
    }
}

/// One record of a trace: an id, an op, and explicit dependencies.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Unique record id (any non-empty string).
    pub id: String,
    /// The operation.
    pub op: TraceOp,
    /// Ids of records that must complete before this one starts.
    pub depends_on: Vec<String>,
}

/// Aggregates from one replay.
#[derive(Clone, Debug)]
pub struct ReplayStats {
    /// Wall time from first issue to quiescence.
    pub makespan: Dur,
    /// Records replayed.
    pub records: usize,
    /// Peer-copy bytes moved over the fabric.
    pub copy_bytes: u64,
    /// Host-to-device bytes.
    pub h2d_bytes: u64,
    /// Device-to-host bytes.
    pub d2h_bytes: u64,
    /// Kernel memory-traffic bytes.
    pub kernel_bytes: u64,
}

impl ReplayStats {
    /// All payload bytes the trace moved or touched.
    pub fn total_bytes(&self) -> u64 {
        self.copy_bytes + self.h2d_bytes + self.d2h_bytes + self.kernel_bytes
    }
}

/// Validate a record set: unique non-empty ids, dependencies that exist
/// and are not self-referential, GCDs on the node, positive sizes, and an
/// acyclic dependency graph. Field paths index into `workload.records`.
pub fn validate(records: &[TraceRecord], n_gcds: u8) -> Result<(), FieldError> {
    let err = |field: String, message: String| FieldError { field, message };
    if records.is_empty() {
        return Err(err(
            "workload.records".into(),
            "trace must contain at least one record".into(),
        ));
    }
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if r.id.is_empty() {
            return Err(err(
                format!("workload.records[{i}].id"),
                "must be non-empty".into(),
            ));
        }
        if index.insert(r.id.as_str(), i).is_some() {
            return Err(err(
                format!("workload.records[{i}].id"),
                format!("duplicate record id '{}'", r.id),
            ));
        }
    }
    for (i, r) in records.iter().enumerate() {
        let gcd_ok = |field: &str, g: u8| -> Result<(), FieldError> {
            if g >= n_gcds {
                Err(err(
                    format!("workload.records[{i}].{field}"),
                    format!("GCD {g} out of range (node has {n_gcds})"),
                ))
            } else {
                Ok(())
            }
        };
        if r.op.bytes() == 0 {
            return Err(err(
                format!("workload.records[{i}].bytes"),
                "must be at least 1".into(),
            ));
        }
        match r.op {
            TraceOp::Copy { src, dst, .. } => {
                gcd_ok("src", src)?;
                gcd_ok("dst", dst)?;
                if src == dst {
                    return Err(err(
                        format!("workload.records[{i}].dst"),
                        "copy src and dst must differ (use 'kernel' for local traffic)".into(),
                    ));
                }
            }
            TraceOp::H2D { dst, .. } => gcd_ok("dst", dst)?,
            TraceOp::D2H { src, .. } => gcd_ok("src", src)?,
            TraceOp::Kernel { gcd, .. } => gcd_ok("dst", gcd)?,
        }
        for dep in &r.depends_on {
            if dep == &r.id {
                return Err(err(
                    format!("workload.records[{i}].depends_on"),
                    format!("record '{}' depends on itself", r.id),
                ));
            }
            if !index.contains_key(dep.as_str()) {
                return Err(err(
                    format!("workload.records[{i}].depends_on"),
                    format!("unknown dependency '{dep}'"),
                ));
            }
        }
    }
    // Cycle check == canonical order exists.
    canonical_order(records).map(|_| ())
}

/// The canonical topological order: Kahn's algorithm, ready set ordered by
/// record id. Returns indices into `records`. Fails (naming a record on
/// the cycle) if the dependency graph is cyclic.
pub fn canonical_order(records: &[TraceRecord]) -> Result<Vec<usize>, FieldError> {
    let index: BTreeMap<&str, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.id.as_str(), i))
        .collect();
    let mut indegree = vec![0usize; records.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    for (i, r) in records.iter().enumerate() {
        for dep in &r.depends_on {
            let d = index[dep.as_str()];
            indegree[i] += 1;
            dependents[d].push(i);
        }
    }
    // (id, index) pairs keep the pop order stable under input shuffling.
    let mut ready: BTreeSet<(&str, usize)> = records
        .iter()
        .enumerate()
        .filter(|(i, _)| indegree[*i] == 0)
        .map(|(i, r)| (r.id.as_str(), i))
        .collect();
    let mut order = Vec::with_capacity(records.len());
    while let Some(&(id, i)) = ready.iter().next() {
        ready.remove(&(id, i));
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.insert((records[j].id.as_str(), j));
            }
        }
    }
    if order.len() != records.len() {
        let stuck = records
            .iter()
            .enumerate()
            .find(|(i, _)| indegree[*i] > 0)
            .map(|(_, r)| r.id.as_str())
            .unwrap_or("?");
        return Err(FieldError {
            field: "workload.records".into(),
            message: format!("dependency cycle through record '{stuck}'"),
        });
    }
    Ok(order)
}

struct DeviceSlots {
    stream: StreamId,
    /// Copy endpoints and kernel source.
    buf_a: BufferId,
    /// Kernel destination.
    buf_b: BufferId,
}

/// Replay a validated trace through `hip`, returning the makespan and byte
/// totals. Each device gets one stream; cross-stream dependencies become
/// event waits; same-stream dependencies ride program order (the canonical
/// issue order already sequences them).
pub fn replay(hip: &mut HipSim, records: &[TraceRecord]) -> HipResult<ReplayStats> {
    let order =
        canonical_order(records).map_err(|e| ifsim_hip::HipError::InvalidValue(e.to_string()))?;
    hip.enable_all_peer_access()?;

    // Size one buffer pair per device at the largest record touching it.
    let mut need: BTreeMap<u8, u64> = BTreeMap::new();
    let mut host_need: u64 = 0;
    for r in records {
        let mut touch = |g: u8, b: u64| {
            let e = need.entry(g).or_insert(8);
            *e = (*e).max(b);
        };
        match r.op {
            TraceOp::Copy { src, dst, bytes } => {
                touch(src, bytes);
                touch(dst, bytes);
            }
            TraceOp::H2D { dst, bytes } => {
                touch(dst, bytes);
                host_need = host_need.max(bytes);
            }
            TraceOp::D2H { src, bytes } => {
                touch(src, bytes);
                host_need = host_need.max(bytes);
            }
            TraceOp::Kernel { gcd, bytes } => touch(gcd, bytes.max(8)),
        }
    }
    let mut slots: BTreeMap<u8, DeviceSlots> = BTreeMap::new();
    for (&gcd, &bytes) in &need {
        hip.set_device(gcd as usize)?;
        slots.insert(
            gcd,
            DeviceSlots {
                stream: hip.stream_create()?,
                buf_a: hip.malloc(bytes)?,
                buf_b: hip.malloc(bytes)?,
            },
        );
    }
    let host = if host_need > 0 {
        Some(hip.host_malloc(host_need, HostAllocFlags::non_coherent())?)
    } else {
        None
    };

    // Only records with cross-stream dependents need an event.
    let gcd_of = |i: usize| records[i].op.issuing_gcd();
    let index: BTreeMap<&str, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.id.as_str(), i))
        .collect();
    let needs_event: Vec<bool> = {
        let mut flags = vec![false; records.len()];
        for (i, r) in records.iter().enumerate() {
            for dep in &r.depends_on {
                let d = index[dep.as_str()];
                if gcd_of(d) != gcd_of(i) {
                    flags[d] = true;
                }
            }
        }
        flags
    };
    let mut events = vec![None; records.len()];

    let t0 = hip.now();
    let mut stats = ReplayStats {
        makespan: Dur::ZERO,
        records: records.len(),
        copy_bytes: 0,
        h2d_bytes: 0,
        d2h_bytes: 0,
        kernel_bytes: 0,
    };
    for &i in &order {
        let r = &records[i];
        let gcd = r.op.issuing_gcd();
        let stream = slots[&gcd].stream;
        for dep in &r.depends_on {
            let d = index[dep.as_str()];
            if gcd_of(d) != gcd {
                // `needs_event` marked the producer, so the event exists.
                hip.stream_wait_event(stream, events[d].unwrap())?;
            }
        }
        match r.op {
            TraceOp::Copy { src, dst, bytes } => {
                let (sb, db) = (slots[&src].buf_a, slots[&dst].buf_a);
                hip.memcpy_peer_async(db, dst as usize, sb, src as usize, bytes, stream)?;
                stats.copy_bytes += bytes;
            }
            TraceOp::H2D { dst, bytes } => {
                hip.memcpy_async(
                    slots[&dst].buf_a,
                    0,
                    host.unwrap(),
                    0,
                    bytes,
                    MemcpyKind::HostToDevice,
                    stream,
                )?;
                stats.h2d_bytes += bytes;
            }
            TraceOp::D2H { src, bytes } => {
                hip.memcpy_async(
                    host.unwrap(),
                    0,
                    slots[&src].buf_a,
                    0,
                    bytes,
                    MemcpyKind::DeviceToHost,
                    stream,
                )?;
                stats.d2h_bytes += bytes;
            }
            TraceOp::Kernel { gcd, bytes } => {
                // StreamCopy touches 8 bytes per element (one f32 read,
                // one write), so `bytes` of traffic is `bytes / 8` elems.
                let s = &slots[&gcd];
                hip.launch_kernel_on(
                    KernelSpec::StreamCopy {
                        src: s.buf_a,
                        dst: s.buf_b,
                        elems: ((bytes / 8).max(1)) as usize,
                    },
                    stream,
                )?;
                stats.kernel_bytes += bytes;
            }
        }
        if needs_event[i] {
            let ev = hip.event_create();
            hip.event_record(ev, stream)?;
            events[i] = Some(ev);
        }
    }
    hip.synchronize_all()?;
    stats.makespan = hip.now() - t0;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsim_hip::EnvConfig;

    fn rec(id: &str, op: TraceOp, deps: &[&str]) -> TraceRecord {
        TraceRecord {
            id: id.into(),
            op,
            depends_on: deps.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn diamond() -> Vec<TraceRecord> {
        vec![
            rec(
                "a",
                TraceOp::H2D {
                    dst: 0,
                    bytes: 1 << 20,
                },
                &[],
            ),
            rec(
                "b",
                TraceOp::Copy {
                    src: 0,
                    dst: 1,
                    bytes: 4 << 20,
                },
                &["a"],
            ),
            rec(
                "c",
                TraceOp::Copy {
                    src: 0,
                    dst: 2,
                    bytes: 4 << 20,
                },
                &["a"],
            ),
            rec(
                "d",
                TraceOp::Kernel {
                    gcd: 1,
                    bytes: 8 << 20,
                },
                &["b", "c"],
            ),
            rec(
                "e",
                TraceOp::D2H {
                    src: 1,
                    bytes: 1 << 20,
                },
                &["d"],
            ),
        ]
    }

    #[test]
    fn canonical_order_respects_dependencies_and_ids() {
        let records = diamond();
        let order = canonical_order(&records).unwrap();
        let pos: std::collections::HashMap<&str, usize> = order
            .iter()
            .enumerate()
            .map(|(at, &i)| (records[i].id.as_str(), at))
            .collect();
        assert!(pos["a"] < pos["b"] && pos["a"] < pos["c"]);
        assert!(pos["b"] < pos["d"] && pos["c"] < pos["d"]);
        assert!(pos["d"] < pos["e"]);
        // Tie between b and c breaks on id.
        assert!(pos["b"] < pos["c"]);
    }

    #[test]
    fn cycles_are_rejected_with_a_named_record() {
        let records = vec![
            rec("x", TraceOp::Kernel { gcd: 0, bytes: 8 }, &["y"]),
            rec("y", TraceOp::Kernel { gcd: 0, bytes: 8 }, &["x"]),
        ];
        let e = validate(&records, 8).unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn validation_names_the_offending_field() {
        let bad = vec![rec(
            "a",
            TraceOp::Copy {
                src: 3,
                dst: 3,
                bytes: 8,
            },
            &[],
        )];
        let e = validate(&bad, 8).unwrap_err();
        assert_eq!(e.field, "workload.records[0].dst");

        let bad = vec![rec("a", TraceOp::H2D { dst: 0, bytes: 8 }, &["nope"])];
        let e = validate(&bad, 8).unwrap_err();
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn replay_runs_the_dag_and_orders_dependents() {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(0);
        let stats = replay(&mut hip, &diamond()).unwrap();
        assert_eq!(stats.records, 5);
        assert_eq!(stats.copy_bytes, 8 << 20);
        assert_eq!(stats.h2d_bytes, 1 << 20);
        assert!(stats.makespan.as_us() > 0.0);
    }

    #[test]
    fn shuffled_input_replays_to_the_same_makespan() {
        let records = diamond();
        let mut shuffled = records.clone();
        shuffled.reverse();
        let run = |recs: &[TraceRecord]| {
            let mut hip = HipSim::new(EnvConfig::default());
            hip.mem_mut().set_phantom_threshold(0);
            replay(&mut hip, recs).unwrap().makespan.as_ns()
        };
        assert_eq!(run(&records), run(&shuffled));
    }
}
