//! The `ifsim-scenario-v1` declarative format: typed model, strict parser
//! (unknown fields are errors, every error names its field path), canonical
//! serializer, and content digest.
//!
//! A scenario is self-describing JSON:
//!
//! ```json
//! {
//!   "schema": "ifsim-scenario-v1",
//!   "name": "moe-a2a-demo",
//!   "workload": {"type": "moe-alltoall", "ranks": 8,
//!                "bytes_per_pair": 1048576, "steps": 2},
//!   "sweep": [{"param": "bytes_per_pair", "values": [262144, 1048576]}],
//!   "config": {"seed": "51966", "reps": 2},
//!   "calib": {"eff_sdma_xgmi": 1.0},
//!   "faults": [{"at_us": 50.0, "kind": "link-down", "a": 0, "b": 1}]
//! }
//! ```
//!
//! Parsing normalizes any field order into one typed [`Scenario`]; the
//! canonical serializer ([`Scenario::to_json`]) always emits the same
//! shape, so [`Scenario::digest`] is stable across field reordering —
//! the property the serve cache keys rely on.

use crate::trace::{self, TraceOp, TraceRecord};
use crate::FieldError;
use ifsim_core::experiment::digest_kv;
use ifsim_fabric::{FaultKind, FaultParams};
use serde_json::{Map, Value};

/// The schema identifier this crate speaks.
pub const SCHEMA: &str = "ifsim-scenario-v1";

/// Base-configuration overrides (mirrors the serve wire overrides: the
/// scenario's values win over whatever base the driver supplies).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConfigSection {
    /// Start from `BenchConfig::quick()` instead of the driver's base.
    pub quick: bool,
    /// Jitter seed (decimal string on the wire: full `u64` range).
    pub seed: Option<u64>,
    /// Measured repetitions.
    pub reps: Option<usize>,
    /// Warmup repetitions (discarded).
    pub warmup: Option<usize>,
}

/// One scheduled fabric fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Virtual time the fault strikes, microseconds from simulation start.
    pub at_us: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// One sweep axis: the named generator parameter takes each value in turn.
/// Multiple axes form a cartesian product.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepAxis {
    /// Generator parameter name (see [`GeneratorSpec::sweepable_params`]).
    pub param: String,
    /// Values the parameter takes (positive, finite; integer-valued for
    /// integer parameters).
    pub values: Vec<f64>,
}

/// A built-in trace generator plus its parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum GeneratorSpec {
    /// Mixture-of-experts layer: gate kernel, all-to-all dispatch, expert
    /// kernel, all-to-all combine, per step.
    MoeAllToAll {
        /// Participating ranks (devices `0..ranks`).
        ranks: usize,
        /// Bytes each rank sends every other rank, per all-to-all.
        bytes_per_pair: u64,
        /// MoE layer steps to replay.
        steps: usize,
        /// Expert-kernel memory traffic per rank per step.
        compute_bytes: u64,
    },
    /// Parameter-server push/pull: workers push gradients to the server
    /// rank, an apply kernel runs, workers pull fresh parameters.
    ParamServer {
        /// Participating ranks (devices `0..ranks`).
        ranks: usize,
        /// The server's rank.
        server: usize,
        /// Bytes each worker pushes per step.
        push_bytes: u64,
        /// Bytes each worker pulls per step.
        pull_bytes: u64,
        /// Steps to replay.
        steps: usize,
        /// Server apply-kernel traffic per step.
        apply_bytes: u64,
    },
    /// 2-D halo exchange over a `grid.0 x grid.1` rank grid (row-major on
    /// devices, 4-neighborhood, non-periodic).
    Halo {
        /// Grid extents `(x, y)`; `x * y` ranks.
        grid: (usize, usize),
        /// Halo bytes per neighbor per iteration.
        halo_bytes: u64,
        /// Iterations to replay.
        iters: usize,
        /// Compute-kernel traffic per rank per iteration.
        compute_bytes: u64,
    },
    /// Data-parallel training-step replay following
    /// `ifsim_apps::train::step_pattern` (ingest, compute, ring AllReduce,
    /// optimizer).
    TrainStep {
        /// Data-parallel ranks (devices `0..ranks`).
        ranks: usize,
        /// Model parameters (f32) per rank.
        params: usize,
        /// Batch bytes ingested per rank per step.
        batch_bytes: u64,
        /// Steps to replay.
        steps: usize,
        /// Forward+backward passes per step.
        compute_passes: usize,
    },
}

/// What a scenario runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// Delegate to a registry experiment (the scenario contributes
    /// configuration only — runs are byte-identical to the hand-coded id).
    Registry {
        /// Registry experiment id (`fig6b`, `ext-coll-sweep`, ...).
        id: String,
    },
    /// An explicit trace: records replayed through the HIP runtime.
    Trace {
        /// The records, any topologically-valid order.
        records: Vec<TraceRecord>,
    },
    /// A built-in generator expanded to a trace at run time.
    Generator(GeneratorSpec),
}

/// A parsed, validated-shape scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (`[a-z0-9._-]+`); the compiled experiment id is
    /// `scenario:<name>`.
    pub name: String,
    /// Human title (defaults to the name).
    pub title: String,
    /// Free-form description.
    pub description: String,
    /// Topology profile; only `frontier` (one 8-GCD node) exists today.
    pub topology: String,
    /// Base-configuration overrides.
    pub config: ConfigSection,
    /// Multiplicative calibration factors, kept name-sorted.
    pub calib: Vec<(String, f64)>,
    /// Scheduled fabric faults, kept time-sorted (stable).
    pub faults: Vec<FaultSpec>,
    /// The workload.
    pub workload: Workload,
    /// Sweep axes (generator workloads only).
    pub sweep: Vec<SweepAxis>,
}

fn err(field: impl Into<String>, message: impl Into<String>) -> FieldError {
    FieldError {
        field: field.into(),
        message: message.into(),
    }
}

/// Reject keys outside `allowed`, naming the offending path.
fn check_fields(obj: &Map, allowed: &[&str], path: &str) -> Result<(), FieldError> {
    for (k, _) in obj.iter() {
        if !allowed.contains(&k.as_str()) {
            let field = if path.is_empty() {
                k.clone()
            } else {
                format!("{path}.{k}")
            };
            return Err(err(
                field,
                format!("unknown field (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn get_str(obj: &Map, key: &str, path: &str) -> Result<Option<String>, FieldError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| err(join(path, key), "must be a string")),
    }
}

fn get_u64(obj: &Map, key: &str, path: &str) -> Result<Option<u64>, FieldError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| err(join(path, key), "must be a non-negative integer")),
    }
}

fn get_f64(obj: &Map, key: &str, path: &str) -> Result<Option<f64>, FieldError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .filter(|f| f.is_finite())
            .map(Some)
            .ok_or_else(|| err(join(path, key), "must be a finite number")),
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

impl Scenario {
    /// Parse a scenario from JSON text. Errors carry the offending field
    /// path (`workload.records[3].depends_on`, `sweep[0].values`, ...).
    #[allow(clippy::should_implement_trait)] // inherent so callers need no import
    pub fn from_str(text: &str) -> Result<Scenario, FieldError> {
        let v = serde_json::from_str(text).map_err(|e| err("", format!("invalid JSON: {e}")))?;
        Scenario::from_json(&v)
    }

    /// Parse a scenario from a decoded JSON value (the serve daemon hands
    /// the inline `scenario` payload here).
    pub fn from_json(v: &Value) -> Result<Scenario, FieldError> {
        let obj = v
            .as_object()
            .ok_or_else(|| err("", "scenario must be a JSON object"))?;
        check_fields(
            obj,
            &[
                "schema",
                "name",
                "title",
                "description",
                "topology",
                "config",
                "calib",
                "faults",
                "workload",
                "sweep",
            ],
            "",
        )?;
        let schema = get_str(obj, "schema", "")?.ok_or_else(|| err("schema", "is required"))?;
        if schema != SCHEMA {
            return Err(err(
                "schema",
                format!("unsupported schema '{schema}' (expected {SCHEMA})"),
            ));
        }
        let name = get_str(obj, "name", "")?.ok_or_else(|| err("name", "is required"))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c))
        {
            return Err(err(
                "name",
                format!("'{name}' must be non-empty, lowercase [a-z0-9._-]"),
            ));
        }
        let title = get_str(obj, "title", "")?.unwrap_or_else(|| name.clone());
        let description = get_str(obj, "description", "")?.unwrap_or_default();
        let topology = get_str(obj, "topology", "")?.unwrap_or_else(|| "frontier".to_string());

        let config = match obj.get("config") {
            None => ConfigSection::default(),
            Some(c) => parse_config(c)?,
        };
        let mut calib: Vec<(String, f64)> = Vec::new();
        if let Some(c) = obj.get("calib") {
            let c = c
                .as_object()
                .ok_or_else(|| err("calib", "must be an object of field: factor"))?;
            for (field, factor) in c.iter() {
                let factor = factor
                    .as_f64()
                    .filter(|f| f.is_finite() && *f > 0.0)
                    .ok_or_else(|| {
                        err(format!("calib.{field}"), "must be a positive finite factor")
                    })?;
                calib.push((field.clone(), factor));
            }
            calib.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let mut faults = Vec::new();
        if let Some(f) = obj.get("faults") {
            let arr = f
                .as_array()
                .ok_or_else(|| err("faults", "must be an array"))?;
            for (i, ev) in arr.iter().enumerate() {
                faults.push(parse_fault(ev, &format!("faults[{i}]"))?);
            }
            faults.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        }
        let workload = parse_workload(
            obj.get("workload")
                .ok_or_else(|| err("workload", "is required"))?,
        )?;
        let mut sweep = Vec::new();
        if let Some(s) = obj.get("sweep") {
            let arr = s
                .as_array()
                .ok_or_else(|| err("sweep", "must be an array of axes"))?;
            for (i, axis) in arr.iter().enumerate() {
                sweep.push(parse_axis(axis, &format!("sweep[{i}]"))?);
            }
        }
        let s = Scenario {
            name,
            title,
            description,
            topology,
            config,
            calib,
            faults,
            workload,
            sweep,
        };
        s.validate()?;
        Ok(s)
    }

    /// Canonical JSON form: fixed field order, defaults omitted, factors
    /// and values normalized. Two scenarios that parse equal serialize to
    /// identical values regardless of original field order.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("schema", Value::from(SCHEMA));
        m.insert("name", Value::from(self.name.clone()));
        if self.title != self.name {
            m.insert("title", Value::from(self.title.clone()));
        }
        if !self.description.is_empty() {
            m.insert("description", Value::from(self.description.clone()));
        }
        if self.topology != "frontier" {
            m.insert("topology", Value::from(self.topology.clone()));
        }
        if self.config != ConfigSection::default() {
            let mut c = Map::new();
            if self.config.quick {
                c.insert("quick", Value::from(true));
            }
            if let Some(s) = self.config.seed {
                c.insert("seed", Value::from(s.to_string()));
            }
            if let Some(r) = self.config.reps {
                c.insert("reps", Value::from(r));
            }
            if let Some(w) = self.config.warmup {
                c.insert("warmup", Value::from(w));
            }
            m.insert("config", Value::Object(c));
        }
        if !self.calib.is_empty() {
            let mut c = Map::new();
            for (field, factor) in &self.calib {
                c.insert(field.clone(), Value::from(*factor));
            }
            m.insert("calib", Value::Object(c));
        }
        if !self.faults.is_empty() {
            m.insert(
                "faults",
                Value::Array(self.faults.iter().map(fault_to_json).collect()),
            );
        }
        m.insert("workload", workload_to_json(&self.workload));
        if !self.sweep.is_empty() {
            m.insert(
                "sweep",
                Value::Array(
                    self.sweep
                        .iter()
                        .map(|a| {
                            let mut axis = Map::new();
                            axis.insert("param", Value::from(a.param.clone()));
                            axis.insert(
                                "values",
                                Value::Array(a.values.iter().map(|v| Value::from(*v)).collect()),
                            );
                            Value::Object(axis)
                        })
                        .collect(),
                ),
            );
        }
        Value::Object(m)
    }

    /// Content digest over the canonical serialization — field-order
    /// independent by construction. Folded into the compiled experiment's
    /// `config_digest`, so result caches key on scenario *content*.
    pub fn digest(&self) -> String {
        digest_kv(&[(
            "scenario-canonical".to_string(),
            serde_json::to_string(&self.to_json()),
        )])
    }

    /// Semantic validation beyond field shapes. Parsing calls this; the
    /// lint front-end reports its field-annotated errors.
    pub fn validate(&self) -> Result<(), FieldError> {
        if self.topology != "frontier" {
            return Err(err(
                "topology",
                format!(
                    "unknown profile '{}' (only 'frontier' exists)",
                    self.topology
                ),
            ));
        }
        if self.config.reps == Some(0) {
            return Err(err("config.reps", "must be at least 1"));
        }
        // Calibration factors target the named-f64 accessor table (the
        // same surface `ifsim-drift --perturb` and serve overrides use).
        for (field, _) in &self.calib {
            if !ifsim_hip::Calibration::f64_field_names().any(|name| name == field.as_str()) {
                return Err(err(
                    format!("calib.{field}"),
                    "unknown calibration field (see `ifsim-drift --list-fields`)",
                ));
            }
        }
        let topo = ifsim_topology::NodeTopology::frontier();
        let n_gcds = topo.gcds().count();
        for (i, f) in self.faults.iter().enumerate() {
            if !(f.at_us.is_finite() && f.at_us >= 0.0) {
                return Err(err(
                    format!("faults[{i}].at_us"),
                    "must be finite and non-negative",
                ));
            }
            let p = f.kind.wire_params();
            for (k, v) in [("a", p.a), ("b", p.b), ("gcd", p.gcd)] {
                if let Some(v) = v {
                    if usize::from(v) >= n_gcds {
                        return Err(err(
                            format!("faults[{i}].{k}"),
                            format!("GCD {v} out of range (frontier has {n_gcds})"),
                        ));
                    }
                }
            }
            // Link faults must name directly-linked endpoints, the same
            // rule `HipSim::set_fault_plan` enforces at run time.
            if let Some((a, b)) = f.kind.endpoints() {
                use ifsim_topology::PortId;
                if topo.link_between(PortId::Gcd(a), PortId::Gcd(b)).is_none() {
                    return Err(err(
                        format!("faults[{i}]"),
                        format!("GCDs {} and {} are not directly linked", a.0, b.0),
                    ));
                }
            }
        }
        match &self.workload {
            Workload::Registry { id } => {
                if ifsim_core::registry::by_id(id).is_none() {
                    return Err(err(
                        "workload.id",
                        format!("unknown registry experiment '{id}' (see `repro --list`)"),
                    ));
                }
                if !self.faults.is_empty() {
                    return Err(err(
                        "faults",
                        "registry workloads define their own fault plans; \
                         faults apply to trace workloads only",
                    ));
                }
                if !self.sweep.is_empty() {
                    return Err(err("sweep", "registry workloads cannot be swept"));
                }
            }
            Workload::Trace { records } => {
                trace::validate(records, n_gcds as u8)?;
                if !self.sweep.is_empty() {
                    return Err(err(
                        "sweep",
                        "explicit traces cannot be swept; use a generator workload",
                    ));
                }
            }
            Workload::Generator(g) => {
                g.validate()?;
                let mut seen = Vec::new();
                let mut points = 1usize;
                for (i, axis) in self.sweep.iter().enumerate() {
                    let path = format!("sweep[{i}]");
                    if seen.contains(&axis.param) {
                        return Err(err(
                            format!("{path}.param"),
                            format!("duplicate axis '{}'", axis.param),
                        ));
                    }
                    seen.push(axis.param.clone());
                    if !g.sweepable_params().contains(&axis.param.as_str()) {
                        return Err(err(
                            format!("{path}.param"),
                            format!(
                                "'{}' is not sweepable for this workload (axes: {})",
                                axis.param,
                                g.sweepable_params().join(", ")
                            ),
                        ));
                    }
                    if axis.values.is_empty() || axis.values.len() > 64 {
                        return Err(err(
                            format!("{path}.values"),
                            "need between 1 and 64 values per axis",
                        ));
                    }
                    for (j, v) in axis.values.iter().enumerate() {
                        if !(v.is_finite() && *v > 0.0) {
                            return Err(err(
                                format!("{path}.values[{j}]"),
                                "must be positive and finite",
                            ));
                        }
                    }
                    points = points.saturating_mul(axis.values.len());
                    // Every value must survive being set (integrality,
                    // range): probe a clone now so runs cannot fail later.
                    for (j, v) in axis.values.iter().enumerate() {
                        let mut probe = g.clone();
                        probe
                            .set_param(&axis.param, *v)
                            .map_err(|m| err(format!("{path}.values[{j}]"), m))?;
                        probe
                            .validate()
                            .map_err(|e| err(format!("{path}.values[{j}]"), e.message))?;
                    }
                }
                if points > 256 {
                    return Err(err(
                        "sweep",
                        format!("cartesian product too large ({points} > 256 points)"),
                    ));
                }
            }
        }
        Ok(())
    }
}

fn parse_config(v: &Value) -> Result<ConfigSection, FieldError> {
    let obj = v
        .as_object()
        .ok_or_else(|| err("config", "must be an object"))?;
    check_fields(obj, &["quick", "seed", "reps", "warmup"], "config")?;
    let mut c = ConfigSection::default();
    if let Some(q) = obj.get("quick") {
        c.quick = q
            .as_bool()
            .ok_or_else(|| err("config.quick", "must be a boolean"))?;
    }
    if let Some(s) = obj.get("seed") {
        let text = s
            .as_str()
            .ok_or_else(|| err("config.seed", "must be a decimal string (full u64 range)"))?;
        c.seed = Some(
            text.parse()
                .map_err(|e| err("config.seed", format!("bad seed '{text}': {e}")))?,
        );
    }
    c.reps = get_u64(obj, "reps", "config")?.map(|r| r as usize);
    c.warmup = get_u64(obj, "warmup", "config")?.map(|w| w as usize);
    Ok(c)
}

fn parse_fault(v: &Value, path: &str) -> Result<FaultSpec, FieldError> {
    let obj = v
        .as_object()
        .ok_or_else(|| err(path, "must be an object"))?;
    check_fields(
        obj,
        &[
            "at_us",
            "kind",
            "a",
            "b",
            "gcd",
            "lanes",
            "tax",
            "added_latency_us",
        ],
        path,
    )?;
    let at_us =
        get_f64(obj, "at_us", path)?.ok_or_else(|| err(join(path, "at_us"), "is required"))?;
    let kind_name =
        get_str(obj, "kind", path)?.ok_or_else(|| err(join(path, "kind"), "is required"))?;
    let gcd_field = |key: &str| -> Result<Option<u8>, FieldError> {
        get_u64(obj, key, path)?
            .map(|v| u8::try_from(v).map_err(|_| err(join(path, key), "GCD out of range")))
            .transpose()
    };
    let params = FaultParams {
        a: gcd_field("a")?,
        b: gcd_field("b")?,
        gcd: gcd_field("gcd")?,
        lanes: get_u64(obj, "lanes", path)?.map(|v| v as u32),
        tax: get_f64(obj, "tax", path)?,
        added_latency_us: get_f64(obj, "added_latency_us", path)?,
    };
    let kind = FaultKind::from_wire(&kind_name, &params).map_err(|m| err(path, m))?;
    Ok(FaultSpec { at_us, kind })
}

fn fault_to_json(f: &FaultSpec) -> Value {
    let mut m = Map::new();
    m.insert("at_us", Value::from(f.at_us));
    m.insert("kind", Value::from(f.kind.wire_name()));
    let p = f.kind.wire_params();
    if let Some(a) = p.a {
        m.insert("a", Value::from(u64::from(a)));
    }
    if let Some(b) = p.b {
        m.insert("b", Value::from(u64::from(b)));
    }
    if let Some(g) = p.gcd {
        m.insert("gcd", Value::from(u64::from(g)));
    }
    if let Some(l) = p.lanes {
        m.insert("lanes", Value::from(l));
    }
    if let Some(t) = p.tax {
        m.insert("tax", Value::from(t));
    }
    if let Some(us) = p.added_latency_us {
        m.insert("added_latency_us", Value::from(us));
    }
    Value::Object(m)
}

fn parse_workload(v: &Value) -> Result<Workload, FieldError> {
    let obj = v
        .as_object()
        .ok_or_else(|| err("workload", "must be an object"))?;
    let ty =
        get_str(obj, "type", "workload")?.ok_or_else(|| err("workload.type", "is required"))?;
    let path = "workload";
    // Integer param with a default, shared by the generator arms.
    let u = |key: &str, default: u64| -> Result<u64, FieldError> {
        Ok(get_u64(obj, key, path)?.unwrap_or(default))
    };
    match ty.as_str() {
        "registry" => {
            check_fields(obj, &["type", "id"], path)?;
            let id = get_str(obj, "id", path)?.ok_or_else(|| err("workload.id", "is required"))?;
            Ok(Workload::Registry { id })
        }
        "trace" => {
            check_fields(obj, &["type", "records"], path)?;
            let arr = obj
                .get("records")
                .and_then(Value::as_array)
                .ok_or_else(|| err("workload.records", "must be an array of records"))?;
            let mut records = Vec::with_capacity(arr.len());
            for (i, r) in arr.iter().enumerate() {
                records.push(parse_record(r, &format!("workload.records[{i}]"))?);
            }
            Ok(Workload::Trace { records })
        }
        "moe-alltoall" => {
            check_fields(
                obj,
                &["type", "ranks", "bytes_per_pair", "steps", "compute_bytes"],
                path,
            )?;
            Ok(Workload::Generator(GeneratorSpec::MoeAllToAll {
                ranks: u("ranks", 8)? as usize,
                bytes_per_pair: u("bytes_per_pair", 1 << 20)?,
                steps: u("steps", 1)? as usize,
                compute_bytes: u("compute_bytes", 8 << 20)?,
            }))
        }
        "param-server" => {
            check_fields(
                obj,
                &[
                    "type",
                    "ranks",
                    "server",
                    "push_bytes",
                    "pull_bytes",
                    "steps",
                    "apply_bytes",
                ],
                path,
            )?;
            Ok(Workload::Generator(GeneratorSpec::ParamServer {
                ranks: u("ranks", 8)? as usize,
                server: u("server", 0)? as usize,
                push_bytes: u("push_bytes", 16 << 20)?,
                pull_bytes: u("pull_bytes", 16 << 20)?,
                steps: u("steps", 1)? as usize,
                apply_bytes: u("apply_bytes", 32 << 20)?,
            }))
        }
        "halo" => {
            check_fields(
                obj,
                &["type", "grid", "halo_bytes", "iters", "compute_bytes"],
                path,
            )?;
            let grid = match obj.get("grid") {
                None => (2usize, 4usize),
                Some(g) => {
                    let arr = g
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| err("workload.grid", "must be a [x, y] pair"))?;
                    let dim = |i: usize| -> Result<usize, FieldError> {
                        arr[i]
                            .as_u64()
                            .map(|v| v as usize)
                            .ok_or_else(|| err("workload.grid", "extents must be integers"))
                    };
                    (dim(0)?, dim(1)?)
                }
            };
            Ok(Workload::Generator(GeneratorSpec::Halo {
                grid,
                halo_bytes: u("halo_bytes", 4 << 20)?,
                iters: u("iters", 2)? as usize,
                compute_bytes: u("compute_bytes", 16 << 20)?,
            }))
        }
        "train-step" => {
            check_fields(
                obj,
                &[
                    "type",
                    "ranks",
                    "params",
                    "batch_bytes",
                    "steps",
                    "compute_passes",
                ],
                path,
            )?;
            Ok(Workload::Generator(GeneratorSpec::TrainStep {
                ranks: u("ranks", 8)? as usize,
                params: u("params", (64 << 20) / 4)? as usize,
                batch_bytes: u("batch_bytes", 32 << 20)?,
                steps: u("steps", 1)? as usize,
                compute_passes: u("compute_passes", 2)? as usize,
            }))
        }
        other => Err(err(
            "workload.type",
            format!(
                "unknown workload type '{other}' (expected registry|trace|\
                 moe-alltoall|param-server|halo|train-step)"
            ),
        )),
    }
}

fn workload_to_json(w: &Workload) -> Value {
    let mut m = Map::new();
    match w {
        Workload::Registry { id } => {
            m.insert("type", Value::from("registry"));
            m.insert("id", Value::from(id.clone()));
        }
        Workload::Trace { records } => {
            m.insert("type", Value::from("trace"));
            m.insert(
                "records",
                Value::Array(records.iter().map(record_to_json).collect()),
            );
        }
        Workload::Generator(GeneratorSpec::MoeAllToAll {
            ranks,
            bytes_per_pair,
            steps,
            compute_bytes,
        }) => {
            m.insert("type", Value::from("moe-alltoall"));
            m.insert("ranks", Value::from(*ranks));
            m.insert("bytes_per_pair", Value::from(*bytes_per_pair));
            m.insert("steps", Value::from(*steps));
            m.insert("compute_bytes", Value::from(*compute_bytes));
        }
        Workload::Generator(GeneratorSpec::ParamServer {
            ranks,
            server,
            push_bytes,
            pull_bytes,
            steps,
            apply_bytes,
        }) => {
            m.insert("type", Value::from("param-server"));
            m.insert("ranks", Value::from(*ranks));
            m.insert("server", Value::from(*server));
            m.insert("push_bytes", Value::from(*push_bytes));
            m.insert("pull_bytes", Value::from(*pull_bytes));
            m.insert("steps", Value::from(*steps));
            m.insert("apply_bytes", Value::from(*apply_bytes));
        }
        Workload::Generator(GeneratorSpec::Halo {
            grid,
            halo_bytes,
            iters,
            compute_bytes,
        }) => {
            m.insert("type", Value::from("halo"));
            m.insert(
                "grid",
                Value::Array(vec![Value::from(grid.0), Value::from(grid.1)]),
            );
            m.insert("halo_bytes", Value::from(*halo_bytes));
            m.insert("iters", Value::from(*iters));
            m.insert("compute_bytes", Value::from(*compute_bytes));
        }
        Workload::Generator(GeneratorSpec::TrainStep {
            ranks,
            params,
            batch_bytes,
            steps,
            compute_passes,
        }) => {
            m.insert("type", Value::from("train-step"));
            m.insert("ranks", Value::from(*ranks));
            m.insert("params", Value::from(*params));
            m.insert("batch_bytes", Value::from(*batch_bytes));
            m.insert("steps", Value::from(*steps));
            m.insert("compute_passes", Value::from(*compute_passes));
        }
    }
    Value::Object(m)
}

fn parse_record(v: &Value, path: &str) -> Result<TraceRecord, FieldError> {
    let obj = v
        .as_object()
        .ok_or_else(|| err(path, "must be an object"))?;
    check_fields(
        obj,
        &["id", "op", "src", "dst", "bytes", "depends_on"],
        path,
    )?;
    let id = get_str(obj, "id", path)?.ok_or_else(|| err(join(path, "id"), "is required"))?;
    let op_name = get_str(obj, "op", path)?.ok_or_else(|| err(join(path, "op"), "is required"))?;
    let gcd = |key: &str| -> Result<u8, FieldError> {
        get_u64(obj, key, path)?
            .and_then(|v| u8::try_from(v).ok())
            .ok_or_else(|| err(join(path, key), format!("is required for op '{op_name}'")))
    };
    let bytes =
        get_u64(obj, "bytes", path)?.ok_or_else(|| err(join(path, "bytes"), "is required"))?;
    let op = match op_name.as_str() {
        "copy" => TraceOp::Copy {
            src: gcd("src")?,
            dst: gcd("dst")?,
            bytes,
        },
        "h2d" => TraceOp::H2D {
            dst: gcd("dst")?,
            bytes,
        },
        "d2h" => TraceOp::D2H {
            src: gcd("src")?,
            bytes,
        },
        "kernel" => TraceOp::Kernel {
            gcd: gcd("dst")?,
            bytes,
        },
        other => {
            return Err(err(
                join(path, "op"),
                format!("unknown op '{other}' (expected copy|h2d|d2h|kernel)"),
            ))
        }
    };
    let mut depends_on = Vec::new();
    if let Some(d) = obj.get("depends_on") {
        let arr = d
            .as_array()
            .ok_or_else(|| err(join(path, "depends_on"), "must be an array of record ids"))?;
        for dep in arr {
            depends_on.push(
                dep.as_str()
                    .ok_or_else(|| err(join(path, "depends_on"), "entries must be record ids"))?
                    .to_string(),
            );
        }
    }
    Ok(TraceRecord { id, op, depends_on })
}

fn record_to_json(r: &TraceRecord) -> Value {
    let mut m = Map::new();
    m.insert("id", Value::from(r.id.clone()));
    let (op, src, dst, bytes) = match r.op {
        TraceOp::Copy { src, dst, bytes } => ("copy", Some(src), Some(dst), bytes),
        TraceOp::H2D { dst, bytes } => ("h2d", None, Some(dst), bytes),
        TraceOp::D2H { src, bytes } => ("d2h", Some(src), None, bytes),
        TraceOp::Kernel { gcd, bytes } => ("kernel", None, Some(gcd), bytes),
    };
    m.insert("op", Value::from(op));
    if let Some(s) = src {
        m.insert("src", Value::from(u64::from(s)));
    }
    if let Some(d) = dst {
        m.insert("dst", Value::from(u64::from(d)));
    }
    m.insert("bytes", Value::from(bytes));
    if !r.depends_on.is_empty() {
        m.insert(
            "depends_on",
            Value::Array(
                r.depends_on
                    .iter()
                    .map(|d| Value::from(d.clone()))
                    .collect(),
            ),
        );
    }
    Value::Object(m)
}

fn parse_axis(v: &Value, path: &str) -> Result<SweepAxis, FieldError> {
    let obj = v
        .as_object()
        .ok_or_else(|| err(path, "must be an object"))?;
    check_fields(obj, &["param", "values"], path)?;
    let param =
        get_str(obj, "param", path)?.ok_or_else(|| err(join(path, "param"), "is required"))?;
    let arr = obj
        .get("values")
        .and_then(Value::as_array)
        .ok_or_else(|| err(join(path, "values"), "must be an array of numbers"))?;
    let mut values = Vec::with_capacity(arr.len());
    for (j, v) in arr.iter().enumerate() {
        values.push(
            v.as_f64()
                .ok_or_else(|| err(format!("{path}.values[{j}]"), "must be a number"))?,
        );
    }
    Ok(SweepAxis { param, values })
}

impl GeneratorSpec {
    /// The wire name of this generator.
    pub fn kind_name(&self) -> &'static str {
        match self {
            GeneratorSpec::MoeAllToAll { .. } => "moe-alltoall",
            GeneratorSpec::ParamServer { .. } => "param-server",
            GeneratorSpec::Halo { .. } => "halo",
            GeneratorSpec::TrainStep { .. } => "train-step",
        }
    }

    /// The parameter names a sweep axis may target for this generator.
    pub fn sweepable_params(&self) -> Vec<&'static str> {
        match self {
            GeneratorSpec::MoeAllToAll { .. } => {
                vec!["ranks", "bytes_per_pair", "steps", "compute_bytes"]
            }
            GeneratorSpec::ParamServer { .. } => {
                vec!["ranks", "push_bytes", "pull_bytes", "steps", "apply_bytes"]
            }
            GeneratorSpec::Halo { .. } => vec!["halo_bytes", "iters", "compute_bytes"],
            GeneratorSpec::TrainStep { .. } => {
                vec!["ranks", "params", "batch_bytes", "steps", "compute_passes"]
            }
        }
    }

    /// Set a named parameter from a sweep value. Integer parameters demand
    /// integer-valued numbers.
    pub fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        let as_u64 = || -> Result<u64, String> {
            if value.fract() != 0.0 || value < 0.0 || value > u64::MAX as f64 {
                return Err(format!("'{name}' needs an integer value, got {value}"));
            }
            Ok(value as u64)
        };
        let as_usize = || as_u64().map(|v| v as usize);
        match self {
            GeneratorSpec::MoeAllToAll {
                ranks,
                bytes_per_pair,
                steps,
                compute_bytes,
            } => match name {
                "ranks" => *ranks = as_usize()?,
                "bytes_per_pair" => *bytes_per_pair = as_u64()?,
                "steps" => *steps = as_usize()?,
                "compute_bytes" => *compute_bytes = as_u64()?,
                _ => return Err(format!("unknown parameter '{name}'")),
            },
            GeneratorSpec::ParamServer {
                ranks,
                push_bytes,
                pull_bytes,
                steps,
                apply_bytes,
                ..
            } => match name {
                "ranks" => *ranks = as_usize()?,
                "push_bytes" => *push_bytes = as_u64()?,
                "pull_bytes" => *pull_bytes = as_u64()?,
                "steps" => *steps = as_usize()?,
                "apply_bytes" => *apply_bytes = as_u64()?,
                _ => return Err(format!("unknown parameter '{name}'")),
            },
            GeneratorSpec::Halo {
                halo_bytes,
                iters,
                compute_bytes,
                ..
            } => match name {
                "halo_bytes" => *halo_bytes = as_u64()?,
                "iters" => *iters = as_usize()?,
                "compute_bytes" => *compute_bytes = as_u64()?,
                _ => return Err(format!("unknown parameter '{name}'")),
            },
            GeneratorSpec::TrainStep {
                ranks,
                params,
                batch_bytes,
                steps,
                compute_passes,
            } => match name {
                "ranks" => *ranks = as_usize()?,
                "params" => *params = as_usize()?,
                "batch_bytes" => *batch_bytes = as_u64()?,
                "steps" => *steps = as_usize()?,
                "compute_passes" => *compute_passes = as_usize()?,
                _ => return Err(format!("unknown parameter '{name}'")),
            },
        }
        Ok(())
    }

    /// Parameter bounds for the frontier node (8 GCDs).
    pub fn validate(&self) -> Result<(), FieldError> {
        let range = |field: &str, v: usize, lo: usize, hi: usize| -> Result<(), FieldError> {
            if v < lo || v > hi {
                Err(err(
                    format!("workload.{field}"),
                    format!("{v} out of range [{lo}, {hi}]"),
                ))
            } else {
                Ok(())
            }
        };
        let positive = |field: &str, v: u64| -> Result<(), FieldError> {
            if v == 0 {
                Err(err(format!("workload.{field}"), "must be at least 1"))
            } else {
                Ok(())
            }
        };
        match *self {
            GeneratorSpec::MoeAllToAll {
                ranks,
                bytes_per_pair,
                steps,
                compute_bytes,
            } => {
                range("ranks", ranks, 2, 8)?;
                positive("bytes_per_pair", bytes_per_pair)?;
                range("steps", steps, 1, 64)?;
                positive("compute_bytes", compute_bytes)?;
            }
            GeneratorSpec::ParamServer {
                ranks,
                server,
                push_bytes,
                pull_bytes,
                steps,
                apply_bytes,
            } => {
                range("ranks", ranks, 2, 8)?;
                range("server", server, 0, ranks - 1)?;
                positive("push_bytes", push_bytes)?;
                positive("pull_bytes", pull_bytes)?;
                range("steps", steps, 1, 64)?;
                positive("apply_bytes", apply_bytes)?;
            }
            GeneratorSpec::Halo {
                grid,
                halo_bytes,
                iters,
                compute_bytes,
            } => {
                range("grid", grid.0.saturating_mul(grid.1), 2, 8)?;
                if grid.0 == 0 || grid.1 == 0 {
                    return Err(err("workload.grid", "extents must be at least 1"));
                }
                positive("halo_bytes", halo_bytes)?;
                range("iters", iters, 1, 64)?;
                positive("compute_bytes", compute_bytes)?;
            }
            GeneratorSpec::TrainStep {
                ranks,
                params,
                batch_bytes,
                steps,
                compute_passes,
            } => {
                range("ranks", ranks, 2, 8)?;
                range("params", params, 1, usize::MAX)?;
                positive("batch_bytes", batch_bytes)?;
                range("steps", steps, 1, 64)?;
                range("compute_passes", compute_passes, 1, 64)?;
            }
        }
        Ok(())
    }
}
