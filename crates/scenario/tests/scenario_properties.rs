//! Property tests for the scenario format and trace replay:
//!
//! 1. **Lossless round-trip** — any valid scenario survives
//!    `to_json` → `from_json` unchanged, and its digest is stable.
//! 2. **Field-order independence** — reversing every object's key order
//!    parses to the same scenario and the same digest (the serve cache
//!    keys on exactly this property).
//! 3. **Shuffle invariance** — any topologically-valid reordering of a
//!    trace's records produces the identical canonical schedule and the
//!    identical replayed makespan.

use ifsim_fabric::FaultKind;
use ifsim_hip::{EnvConfig, HipSim};
use ifsim_scenario::{
    compile, ConfigSection, FaultSpec, GeneratorSpec, Scenario, SweepAxis, TraceOp, TraceRecord,
    Workload,
};
use ifsim_topology::GcdId;
use proptest::prelude::*;
use serde_json::{Map, Value};

/// Valid scenario names: non-empty, lowercase `[a-z0-9._-]`.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..39, 1..10).prop_map(|idx| {
        const POOL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
        idx.iter().map(|&i| POOL[i] as char).collect()
    })
}

fn arb_config() -> impl Strategy<Value = ConfigSection> {
    (
        any::<bool>(),
        (any::<bool>(), any::<u64>()),
        (any::<bool>(), 1usize..5),
        (any::<bool>(), 0usize..3),
    )
        .prop_map(|(quick, seed, reps, warmup)| ConfigSection {
            quick,
            seed: seed.0.then_some(seed.1),
            reps: reps.0.then_some(reps.1),
            warmup: warmup.0.then_some(warmup.1),
        })
}

/// Calibration overrides drawn from the *real* accessor table, so the
/// scenarios validate; kept name-sorted like the parser produces them.
fn arb_calib() -> impl Strategy<Value = Vec<(String, f64)>> {
    let names: Vec<String> = ifsim_hip::Calibration::f64_field_names()
        .map(|n| n.to_string())
        .collect();
    let n = names.len();
    proptest::collection::vec((0usize..n, 1usize..8), 0..3).prop_map(move |picks| {
        let mut calib: Vec<(String, f64)> = picks
            .into_iter()
            .map(|(i, f)| (names[i].clone(), f as f64 * 0.25))
            .collect();
        calib.sort_by(|a, b| a.0.cmp(&b.0));
        calib.dedup_by(|a, b| a.0 == b.0);
        calib
    })
}

/// Faults over directly-linked frontier GCD pairs and in-range single
/// GCDs, with float parameters from pools that serialize exactly.
fn arb_faults() -> impl Strategy<Value = Vec<FaultSpec>> {
    // The frontier link set: quad, dual, and single xGMI connections.
    const LINKS: &[(u8, u8)] = &[
        (0, 1),
        (2, 3),
        (4, 5),
        (6, 7),
        (0, 6),
        (2, 4),
        (0, 2),
        (1, 3),
        (1, 5),
        (3, 7),
        (4, 6),
        (5, 7),
    ];
    const AT_US: &[f64] = &[0.0, 12.5, 50.0, 100.0, 250.0];
    const TAX: &[f64] = &[0.0, 0.25, 0.5, 0.75];
    const LAT_US: &[f64] = &[0.0, 0.5, 2.5, 10.0];
    proptest::collection::vec(
        (
            0usize..AT_US.len(),
            0usize..7,
            0usize..LINKS.len(),
            (0u8..8, 1u32..16, 0usize..TAX.len(), 0usize..LAT_US.len()),
        ),
        0..3,
    )
    .prop_map(|specs| {
        let mut faults: Vec<FaultSpec> = specs
            .into_iter()
            .map(|(at, kind, link, (gcd, lanes, tax, lat))| {
                let (a, b) = (GcdId(LINKS[link].0), GcdId(LINKS[link].1));
                let kind = match kind {
                    0 => FaultKind::LaneLoss { a, b, lanes },
                    1 => FaultKind::LinkDown { a, b },
                    2 => FaultKind::LinkRestore { a, b },
                    3 => FaultKind::SdmaFail { gcd: GcdId(gcd) },
                    4 => FaultKind::SdmaRestore { gcd: GcdId(gcd) },
                    5 => FaultKind::BitErrorRate {
                        a,
                        b,
                        tax: TAX[tax],
                        added_latency: ifsim_des::Dur::from_us(LAT_US[lat]),
                    },
                    _ => FaultKind::EccBurst { a, b },
                };
                FaultSpec {
                    at_us: AT_US[at],
                    kind,
                }
            })
            .collect();
        faults.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        faults
    })
}

/// Valid trace DAGs: record `r<i>` may only depend on earlier records,
/// so the graph is acyclic by construction; GCDs stay on the node and
/// copies never self-loop.
fn arb_records() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec((0usize..4, 0u8..8, 1u8..8, 1u64..64, any::<bool>()), 1..10).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (op, src, step, kib, dep))| {
                    let dst = (src + step) % 8;
                    let bytes = kib << 10;
                    let op = match op {
                        0 => TraceOp::Copy { src, dst, bytes },
                        1 => TraceOp::H2D { dst, bytes },
                        2 => TraceOp::D2H { src, bytes },
                        _ => TraceOp::Kernel { gcd: src, bytes },
                    };
                    // Depend on the previous record half the time: mixes
                    // chains and independent roots without risking cycles.
                    let depends_on = if dep && i > 0 {
                        vec![format!("r{}", i - 1)]
                    } else {
                        Vec::new()
                    };
                    TraceRecord {
                        id: format!("r{i}"),
                        op,
                        depends_on,
                    }
                })
                .collect()
        },
    )
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Registry {
            id: "fig6b".to_string()
        }),
        arb_records().prop_map(|records| Workload::Trace { records }),
        (2usize..5, 1u64..9, 1usize..3).prop_map(|(ranks, kib, steps)| {
            Workload::Generator(GeneratorSpec::MoeAllToAll {
                ranks,
                bytes_per_pair: kib << 10,
                steps,
                compute_bytes: 1 << 16,
            })
        }),
        ((2usize..3, 2usize..5), 1u64..9, 1usize..3).prop_map(|(grid, kib, iters)| {
            Workload::Generator(GeneratorSpec::Halo {
                grid,
                halo_bytes: kib << 10,
                iters,
                compute_bytes: 1 << 16,
            })
        }),
    ]
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (arb_name(), arb_config(), arb_calib()),
        (arb_faults(), arb_workload(), any::<bool>()),
    )
        .prop_map(|((name, config, calib), (faults, workload, sweep_on))| {
            // Registry workloads define their own fault plans, so the
            // format rejects scheduled faults on them.
            let faults = if matches!(workload, Workload::Registry { .. }) {
                Vec::new()
            } else {
                faults
            };
            // Sweeps only make sense on generator workloads; use a valid
            // axis over a parameter both generators share.
            let sweep = match (&workload, sweep_on) {
                (Workload::Generator(GeneratorSpec::MoeAllToAll { .. }), true) => {
                    vec![SweepAxis {
                        param: "bytes_per_pair".to_string(),
                        values: vec![65536.0, 262144.0],
                    }]
                }
                (Workload::Generator(GeneratorSpec::Halo { .. }), true) => vec![SweepAxis {
                    param: "halo_bytes".to_string(),
                    values: vec![65536.0, 131072.0],
                }],
                _ => Vec::new(),
            };
            Scenario {
                title: name.clone(),
                description: String::new(),
                topology: "frontier".to_string(),
                name,
                config,
                calib,
                faults,
                workload,
                sweep,
            }
        })
}

/// Rebuild a JSON value with every object's keys in reverse insertion
/// order (arrays untouched — their order is semantic).
fn reverse_keys(v: &Value) -> Value {
    match v {
        Value::Object(obj) => {
            let mut rev = Map::new();
            let pairs: Vec<(&String, &Value)> = obj.iter().collect();
            for (k, val) in pairs.into_iter().rev() {
                rev.insert(k.clone(), reverse_keys(val));
            }
            Value::Object(rev)
        }
        Value::Array(items) => Value::Array(items.iter().map(reverse_keys).collect()),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Canonical serialization is lossless: parse(to_json(s)) == s, with
    /// a stable digest, for scenarios spanning every workload type,
    /// fault kind, calibration override, and sweep shape.
    #[test]
    fn round_trip_is_lossless(s in arb_scenario()) {
        let canonical = s.to_json();
        let back = Scenario::from_json(&canonical).expect("canonical form re-parses");
        prop_assert_eq!(&s, &back);
        prop_assert_eq!(s.digest(), back.digest());
        // Text round-trip too: the file-loading path repro/lint use.
        let text = serde_json::to_string(&canonical);
        let from_text = Scenario::from_str(&text).expect("text form re-parses");
        prop_assert_eq!(&s, &from_text);
    }

    /// Field order never matters: reversing every object's key order
    /// parses to the same scenario and the same digest. This is the
    /// property the serve cache key (config_digest) rests on.
    #[test]
    fn digest_ignores_field_order(s in arb_scenario()) {
        let reversed = reverse_keys(&s.to_json());
        let back = Scenario::from_json(&reversed).expect("reversed form re-parses");
        prop_assert_eq!(&s, &back);
        prop_assert_eq!(s.digest(), back.digest());
    }

    /// Any input ordering of the same trace records yields the identical
    /// canonical schedule — and therefore the identical simulated
    /// makespan. Shuffling is driven by proptest-chosen sort keys, so
    /// arbitrary permutations are exercised, not just reversal.
    #[test]
    fn shuffled_records_replay_identically(
        records in arb_records(),
        keys in proptest::collection::vec(any::<u64>(), 10),
    ) {
        let mut shuffled = records.clone();
        shuffled.sort_by_key(|r| {
            let i: usize = r.id[1..].parse().unwrap();
            keys[i % keys.len()]
        });
        let order = |recs: &[TraceRecord]| -> Vec<String> {
            ifsim_scenario::trace::canonical_order(recs)
                .unwrap()
                .into_iter()
                .map(|i| recs[i].id.clone())
                .collect()
        };
        prop_assert_eq!(order(&records), order(&shuffled));
        let run = |recs: &[TraceRecord]| {
            let mut hip = HipSim::new(EnvConfig::default());
            hip.mem_mut().set_phantom_threshold(0);
            ifsim_scenario::trace::replay(&mut hip, recs)
                .unwrap()
                .makespan
                .as_ns()
        };
        prop_assert_eq!(run(&records), run(&shuffled));
    }

    /// A shuffled trace *scenario* also digests and compiles
    /// identically-behaving experiments when the records are reordered
    /// inside the file: the schedule comes from the DAG, not the array.
    #[test]
    fn shuffled_scenario_records_keep_the_schedule(records in arb_records()) {
        let scenario = |records: Vec<TraceRecord>| Scenario {
            name: "shuffle-probe".to_string(),
            title: "shuffle-probe".to_string(),
            description: String::new(),
            topology: "frontier".to_string(),
            config: ConfigSection {
                quick: false,
                seed: Some(7),
                reps: Some(1),
                warmup: Some(0),
            },
            calib: Vec::new(),
            faults: Vec::new(),
            workload: Workload::Trace { records },
            sweep: Vec::new(),
        };
        let mut reversed = records.clone();
        reversed.reverse();
        let a = compile(&scenario(records)).unwrap();
        let b = compile(&scenario(reversed)).unwrap();
        let cfg = ifsim_core::BenchConfig::quick();
        let (ra, rb) = (a.run(&cfg), b.run(&cfg));
        prop_assert_eq!(ra.rendered, rb.rendered);
        prop_assert_eq!(ra.csv, rb.csv);
    }
}
