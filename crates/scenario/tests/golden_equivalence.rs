//! Golden scenario files under `golden/scenarios/` replay exactly as the
//! repo promises: registry twins are byte-identical to running the
//! registry entry directly, and the generator scenarios replay
//! end-to-end with passing checks. These are the files `ci.sh` smokes and
//! `docs/SCENARIOS.md` quotes, so drift here breaks the documented
//! contract, not just a test.

use ifsim_core::{registry, BenchConfig};
use ifsim_scenario::{compile, Scenario, Workload};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../golden/scenarios")
}

fn load(file: &str) -> Scenario {
    let path = golden_dir().join(file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Scenario::from_str(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
}

/// The three registry twins: a P2P experiment, a collective experiment,
/// and a fault experiment. Their scenario files set no configuration
/// overrides, so the compiled runner delegates straight to the registry
/// entry and must produce byte-identical rendered output and CSVs.
#[test]
fn registry_twins_replay_byte_identical() {
    let twins = [
        ("p2p-latency.json", "fig6b"),
        ("collectives.json", "fig11"),
        ("fault-link-down.json", "ext-fault-link-down"),
    ];
    let cfg = BenchConfig::quick();
    for (file, registry_id) in twins {
        let s = load(file);
        assert_eq!(
            s.workload,
            Workload::Registry {
                id: registry_id.to_string()
            },
            "{file} must delegate to registry '{registry_id}'"
        );
        let direct = registry::by_id(registry_id).unwrap().run(&cfg);
        let via = compile(&s).unwrap().run(&cfg);
        assert_eq!(direct.rendered, via.rendered, "{file}: rendered drifted");
        assert_eq!(direct.csv, via.csv, "{file}: CSV artifacts drifted");
        assert_eq!(
            direct.checks.len(),
            via.checks.len(),
            "{file}: check set drifted"
        );
    }
}

/// The MoE all-to-all acceptance scenario replays end-to-end.
#[test]
fn moe_alltoall_golden_replays() {
    let s = load("moe-alltoall.json");
    let exp = compile(&s).unwrap();
    assert_eq!(exp.id, "scenario:moe-alltoall");
    let r = exp.run(&BenchConfig::quick());
    assert!(r.all_passed(), "{}", r.report());
    assert!(r.rendered.contains("baseline"));
    let (name, csv) = &r.csv[0];
    assert_eq!(name, "scenario_moe-alltoall.csv");
    assert!(csv.lines().count() >= 2, "header plus one data row:\n{csv}");
}

/// The faulted halo scenario sweeps the halo size and replays under its
/// lane-loss fault plan; both sweep points must appear in the artifact.
#[test]
fn halo_faulted_golden_replays_both_sweep_points() {
    let s = load("halo-faulted.json");
    assert_eq!(s.faults.len(), 1, "one scheduled lane-loss");
    let r = compile(&s).unwrap().run(&BenchConfig::quick());
    assert!(r.all_passed(), "{}", r.report());
    assert!(r.rendered.contains("halo_bytes=65536"));
    assert!(r.rendered.contains("halo_bytes=262144"));
}

/// Every golden file parses, validates, and survives a canonical
/// round-trip (parse → canonical JSON → parse) with a stable digest:
/// the property the serve cache keys on, checked against the real files.
#[test]
fn all_golden_files_round_trip_canonically() {
    let dir = golden_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let s =
            Scenario::from_str(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        let back = Scenario::from_json(&s.to_json())
            .unwrap_or_else(|e| panic!("re-parsing canonical {}: {e}", path.display()));
        assert_eq!(s, back, "{}: canonical round-trip lossy", path.display());
        assert_eq!(s.digest(), back.digest());
    }
    assert!(
        seen >= 5,
        "expected at least 5 golden scenarios, saw {seen}"
    );
}
