//! In-tree, offline stand-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build sandbox has no package-registry access, so the real `criterion`
//! cannot be fetched. This shim keeps `cargo bench` (and the bench targets
//! compiled by `cargo test`) working: each `bench_function` runs its closure
//! a small, time-capped number of iterations and prints the mean wall time.
//! There is no statistical analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

/// Per-iteration time budget guard: a single `bench_function` stops sampling
/// once it has consumed this much wall time (after at least one iteration).
const TIME_CAP: Duration = Duration::from_secs(2);

/// The measurement one completed `bench_function` produced. The real
/// criterion persists these under `target/criterion/`; the shim instead
/// hands them back through [`Criterion::results`] so harness-less bench
/// mains can export machine-readable summaries (e.g. `BENCH_fabric.json`).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// The benchmark id as given to `bench_function`.
    pub id: String,
    /// Mean wall time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest single iteration, in nanoseconds. For a deterministic
    /// benchmark this is the noise-robust estimator of true cost: background
    /// load only ever inflates a sample, never deflates it.
    pub min_ns: f64,
    /// How many timed iterations the mean is over.
    pub iters: u64,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let r = run_bench(id, self.sample_size, f);
        self.results.extend(r);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: 10,
        }
    }

    /// Every measurement taken so far, in execution order (benches run in
    /// groups included).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let r = run_bench(id, self.sample_size, f);
        self.parent.results.extend(r);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timed looping.
pub struct Bencher {
    iters: usize,
    total: Duration,
    min: Duration,
    done: usize,
}

impl Bencher {
    /// Time `f`, running it up to the configured iteration count (capped by
    /// a wall-clock budget so pathological benches cannot stall the suite).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.done += 1;
            std::hint::black_box(&out);
            if self.total >= TIME_CAP {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    mut f: F,
) -> Option<BenchResult> {
    let mut b = Bencher {
        iters: sample_size.max(1),
        total: Duration::ZERO,
        min: Duration::MAX,
        done: 0,
    };
    f(&mut b);
    if b.done == 0 {
        println!("  {id}: no iterations run");
        return None;
    }
    let mean = b.total / b.done as u32;
    println!(
        "  {id}: {mean:?} mean, {:?} min over {} iters",
        b.min, b.done
    );
    Some(BenchResult {
        id: id.to_string(),
        mean_ns: b.total.as_nanos() as f64 / b.done as f64,
        min_ns: b.min.as_nanos() as f64,
        iters: b.done as u64,
    })
}

/// Group several bench functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut count = 0;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count >= 1);
    }

    #[test]
    fn results_record_every_measurement_in_order() {
        let mut c = Criterion::default();
        c.bench_function("first", |b| b.iter(|| std::hint::black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("second", |b| b.iter(|| std::hint::black_box(2 + 2)));
            g.finish();
        }
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["first", "second"]);
        for r in c.results() {
            assert!(r.iters >= 1);
            assert!(r.mean_ns >= 0.0);
            assert!(r.min_ns <= r.mean_ns, "min cannot exceed the mean");
        }
    }

    #[test]
    fn group_sample_size_bounds_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0;
        group.bench_function("counted", |b| b.iter(|| count += 1));
        group.finish();
        assert!((1..=3).contains(&count));
    }
}
