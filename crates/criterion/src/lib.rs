//! In-tree, offline stand-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build sandbox has no package-registry access, so the real `criterion`
//! cannot be fetched. This shim keeps `cargo bench` (and the bench targets
//! compiled by `cargo test`) working: each `bench_function` runs its closure
//! a small, time-capped number of iterations and prints the mean wall time.
//! There is no statistical analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

/// Per-iteration time budget guard: a single `bench_function` stops sampling
/// once it has consumed this much wall time (after at least one iteration).
const TIME_CAP: Duration = Duration::from_secs(2);

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timed looping.
pub struct Bencher {
    iters: usize,
    total: Duration,
    done: usize,
}

impl Bencher {
    /// Time `f`, running it up to the configured iteration count (capped by
    /// a wall-clock budget so pathological benches cannot stall the suite).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            let out = f();
            self.total += t0.elapsed();
            self.done += 1;
            std::hint::black_box(&out);
            if self.total >= TIME_CAP {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size.max(1),
        total: Duration::ZERO,
        done: 0,
    };
    f(&mut b);
    if b.done == 0 {
        println!("  {id}: no iterations run");
    } else {
        let mean = b.total / b.done as u32;
        println!("  {id}: {mean:?} mean over {} iters", b.done);
    }
}

/// Group several bench functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut count = 0;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count >= 1);
    }

    #[test]
    fn group_sample_size_bounds_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0;
        group.bench_function("counted", |b| b.iter(|| count += 1));
        group.finish();
        assert!((1..=3).contains(&count));
    }
}
