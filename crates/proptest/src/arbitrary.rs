//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`. Obtain via [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Bit-pattern floats: covers NaN/infinity/subnormals, which is exactly what
// `prop_filter("finite", ..)` call sites are written to handle.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut r = TestRng::from_key("arb-bool");
        let mut t = false;
        let mut f = false;
        for _ in 0..100 {
            if bool::arbitrary(&mut r) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }

    #[test]
    fn floats_include_non_finite_patterns_eventually() {
        let mut r = TestRng::from_key("arb-f32");
        let mut finite = 0;
        for _ in 0..1000 {
            if f32::arbitrary(&mut r).is_finite() {
                finite += 1;
            }
        }
        // The vast majority of bit patterns are finite; just sanity-check
        // we're not stuck on one value.
        assert!(finite > 500);
    }
}
