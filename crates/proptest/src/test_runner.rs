//! Configuration and the deterministic case RNG.

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Alias matching `proptest::test_runner::Config`.
pub type Config = ProptestConfig;

/// SplitMix64 stream seeded from the test's module path and name, so every
/// run of a given test draws the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a key string (FNV-1a), honoring a
    /// `PROPTEST_SEED` environment variable for ad-hoc exploration.
    pub fn from_key(key: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = extra.parse::<u64>() {
                h ^= s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_stream() {
        let mut a = TestRng::from_key("x::y");
        let mut b = TestRng::from_key("x::y");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_diverge() {
        let mut a = TestRng::from_key("x::y");
        let mut b = TestRng::from_key("x::z");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::from_key("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
