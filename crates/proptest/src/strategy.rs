//! Value-generation strategies: ranges, tuples, map/filter, unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike the real proptest
/// there is no value tree / shrinking: `generate` draws a value directly.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying a predicate (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erase the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive draws",
            self.reason
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice among several strategies of one value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given options (at least one).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_key("strategy-tests")
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (-5i32..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn int_ranges_reach_both_ends() {
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(0u8..4).generate(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&v));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut r = rng();
        let s = (0u8..100)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |&x| x > 0);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v > 0 && v % 2 == 0);
        }
    }

    #[test]
    fn union_draws_from_all_arms() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    #[should_panic(expected = "rejected 1000")]
    fn impossible_filter_panics() {
        let mut r = rng();
        let s = (0u8..4).prop_filter("never", |_| false);
        let _ = s.generate(&mut r);
    }
}
