//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut r = TestRng::from_key("vec-len");
        let s = vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_size_vec() {
        let mut r = TestRng::from_key("vec-fixed");
        let s = vec(0u8..10, 4usize);
        assert_eq!(s.generate(&mut r).len(), 4);
    }
}
