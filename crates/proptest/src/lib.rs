//! In-tree, offline stand-in for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build sandbox has no package-registry access, so the real `proptest`
//! cannot be fetched or vendored. This crate keeps every property test in
//! the workspace compiling and running unchanged. Semantics:
//!
//! - Case generation is **deterministic**: each test gets a SplitMix64
//!   stream keyed by its module path and name, so failures reproduce
//!   run-to-run without a persistence file.
//! - `prop_assert!`/`prop_assert_eq!` panic like plain assertions; there is
//!   no shrinking, so the failing case is the first one encountered.
//! - `prop_assume!` skips the current case (it does not count toward the
//!   case budget being re-drawn; the stream simply moves on).
//!
//! Only the combinators the workspace actually exercises are provided:
//! integer/float range strategies, `any::<T>()`, tuples, `collection::vec`,
//! `prop_map`, `prop_filter`, `prop_oneof!`, and `Just`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `fn name(pat in strategy, ..)`
/// items, each expanded to a `#[test]` running the configured number of
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_key(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..__config.cases {
                $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                #[allow(unused_mut)]
                let mut __case_fn = move || { $body };
                __case_fn();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
