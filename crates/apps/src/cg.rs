//! Distributed conjugate-gradient proxy.
//!
//! The CG iteration's communication signature is two *tiny* AllReduces
//! (the dot products ρ and α-denominator) between large local SpMV/AXPY
//! phases. At 8-byte messages the collective is pure latency — exactly the
//! regime where the paper's §VI library comparison bites hardest.
//!
//! The scalar reductions run through the real collective machinery (and
//! the test verifies the sums); the SpMV and AXPY phases are modeled as
//! their memory traffic.

use ifsim_coll::schedule::RankBuffers;
use ifsim_coll::{Collective, MpiComm, RcclComm};
use ifsim_des::Dur;
use ifsim_hip::{BufferId, HipError, HipResult, HipSim, KernelSpec};

/// Which library performs the dot-product reductions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReductionLib {
    /// RCCL AllReduce.
    Rccl,
    /// MPI AllReduce.
    Mpi,
}

/// Problem configuration.
#[derive(Clone, Debug)]
pub struct CgConfig {
    /// Device ordinal per rank.
    pub devices: Vec<usize>,
    /// Local unknowns per rank.
    pub local_rows: usize,
    /// CG iterations.
    pub iters: usize,
    /// Reduction library.
    pub lib: ReductionLib,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            devices: (0..8).collect(),
            local_rows: 1 << 20,
            iters: 5,
            lib: ReductionLib::Rccl,
        }
    }
}

/// Timing breakdown of a run.
#[derive(Clone, Debug)]
pub struct CgReport {
    /// Total wall time.
    pub total: Dur,
    /// Time in local kernels (SpMV + AXPYs).
    pub local: Dur,
    /// Time in the scalar AllReduces.
    pub reductions: Dur,
    /// The final reduced scalar (for verification).
    pub last_dot: f32,
}

impl CgReport {
    /// Fraction of the run spent in (latency-bound) reductions.
    pub fn reduction_fraction(&self) -> f64 {
        self.reductions.as_secs() / self.total.as_secs().max(1e-12)
    }
}

enum Comm {
    Rccl(RcclComm),
    Mpi(MpiComm),
}

impl Comm {
    fn allreduce(&self, hip: &mut HipSim, bufs: &RankBuffers, elems: usize) -> HipResult<Dur> {
        match self {
            Comm::Rccl(c) => c.collective(hip, Collective::AllReduce, bufs, elems, 0),
            Comm::Mpi(c) => c.collective(hip, Collective::AllReduce, bufs, elems, 0),
        }
    }
}

/// Run the proxy. The per-rank partial dot value is `rank + 1`, so the
/// reduced scalar is `n(n+1)/2` every iteration (checked by the tests).
pub fn run(hip: &mut HipSim, cfg: &CgConfig) -> HipResult<CgReport> {
    let n = cfg.devices.len();
    if n < 2 {
        return Err(HipError::InvalidValue("need at least two ranks".into()));
    }
    let comm = match cfg.lib {
        ReductionLib::Rccl => Comm::Rccl(RcclComm::new(hip, cfg.devices.clone())?),
        ReductionLib::Mpi => Comm::Mpi(MpiComm::new(hip, cfg.devices.clone())?),
    };

    // Per-rank vectors (x, p, q) and the scalar-reduction buffers.
    let mut vecs: Vec<[BufferId; 3]> = Vec::new();
    let mut dot_send = Vec::new();
    let mut dot_recv = Vec::new();
    for &dev in &cfg.devices {
        hip.set_device(dev)?;
        vecs.push([
            hip.malloc(cfg.local_rows as u64 * 4)?,
            hip.malloc(cfg.local_rows as u64 * 4)?,
            hip.malloc(cfg.local_rows as u64 * 4)?,
        ]);
        dot_send.push(hip.malloc(4)?);
        dot_recv.push(hip.malloc(4)?);
    }
    let dot_bufs = RankBuffers {
        send: dot_send.clone(),
        recv: dot_recv.clone(),
    };

    let t0 = hip.now();
    let mut local = Dur::ZERO;
    let mut reductions = Dur::ZERO;
    let mut last_dot = 0.0f32;
    for _ in 0..cfg.iters {
        // SpMV q = A p: stencil-matrix traffic ≈ read p + row data, write q.
        let tl = hip.now();
        for (r, &dev) in cfg.devices.iter().enumerate() {
            hip.set_device(dev)?;
            hip.launch_kernel(KernelSpec::StreamTriad {
                a: vecs[r][1],
                b: vecs[r][2],
                dst: vecs[r][2],
                scalar: 0.5,
                elems: cfg.local_rows,
            })?;
        }
        hip.synchronize_all()?;
        local += hip.now() - tl;

        // Local partial dot (modeled as a read pass), then the scalar
        // AllReduce — twice per iteration, as in CG.
        for _ in 0..2 {
            let tl = hip.now();
            for (r, &dev) in cfg.devices.iter().enumerate() {
                hip.set_device(dev)?;
                hip.launch_kernel(KernelSpec::Touch {
                    buf: vecs[r][1],
                    bytes: cfg.local_rows as u64 * 4,
                })?;
                // Each rank contributes (rank + 1) as its partial result.
                hip.mem_mut()
                    .write_f32s(dot_send[r], 0, &[(r + 1) as f32])?;
            }
            hip.synchronize_all()?;
            local += hip.now() - tl;

            let tr = hip.now();
            comm.allreduce(hip, &dot_bufs, 1)?;
            reductions += hip.now() - tr;
        }
        if let Some(v) = hip.mem().read_f32s(dot_recv[0], 0, 1)? {
            last_dot = v[0];
        }

        // AXPY updates x and p.
        let tl = hip.now();
        for (r, &dev) in cfg.devices.iter().enumerate() {
            hip.set_device(dev)?;
            hip.launch_kernel(KernelSpec::StreamTriad {
                a: vecs[r][0],
                b: vecs[r][2],
                dst: vecs[r][0],
                scalar: 0.1,
                elems: cfg.local_rows,
            })?;
        }
        hip.synchronize_all()?;
        local += hip.now() - tl;
    }

    Ok(CgReport {
        total: hip.now() - t0,
        local,
        reductions,
        last_dot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsim_hip::EnvConfig;

    fn runtime() -> HipSim {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(1 << 20);
        hip
    }

    #[test]
    fn scalar_allreduce_value_is_correct() {
        let mut hip = runtime();
        let cfg = CgConfig {
            devices: (0..8).collect(),
            local_rows: 1 << 14,
            iters: 2,
            lib: ReductionLib::Rccl,
        };
        let r = run(&mut hip, &cfg).unwrap();
        assert_eq!(r.last_dot, 36.0, "sum of 1..=8");
    }

    #[test]
    fn rccl_reductions_beat_mpi_reductions() {
        // At 4-byte messages the paper's latency comparison dominates.
        let base = CgConfig {
            devices: (0..8).collect(),
            local_rows: 1 << 16,
            iters: 3,
            lib: ReductionLib::Rccl,
        };
        let mut hip = runtime();
        let rccl = run(&mut hip, &base).unwrap();
        let mut hip = runtime();
        let mpi = run(
            &mut hip,
            &CgConfig {
                lib: ReductionLib::Mpi,
                ..base
            },
        )
        .unwrap();
        assert_eq!(rccl.last_dot, mpi.last_dot, "same numerics");
        assert!(
            rccl.reductions < mpi.reductions,
            "RCCL {} vs MPI {}",
            rccl.reductions,
            mpi.reductions
        );
        // Local compute time is library-independent.
        let ratio = rccl.local.as_secs() / mpi.local.as_secs();
        assert!((0.9..1.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn reduction_fraction_shrinks_with_problem_size() {
        // Strong-scaling intuition: bigger local work amortizes the
        // latency-bound reductions.
        let small = CgConfig {
            local_rows: 1 << 14,
            iters: 2,
            ..Default::default()
        };
        let big = CgConfig {
            local_rows: 1 << 22,
            iters: 2,
            ..Default::default()
        };
        let mut hip = runtime();
        let rs = run(&mut hip, &small).unwrap();
        let mut hip = runtime();
        let rb = run(&mut hip, &big).unwrap();
        assert!(
            rs.reduction_fraction() > rb.reduction_fraction(),
            "{} vs {}",
            rs.reduction_fraction(),
            rb.reduction_fraction()
        );
    }
}
