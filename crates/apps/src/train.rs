//! Data-parallel training-step proxy.
//!
//! Per step and per GPU: ingest an input batch from host memory, run
//! forward+backward (modeled as kernel memory traffic over the weights and
//! activations), AllReduce the gradients with RCCL, and apply the
//! optimizer. The configurable twist is **ingestion overlap**: copying the
//! *next* batch on a side stream while compute runs — profitable precisely
//! because `hipMemcpy` rides SDMA engines that do not steal kernel
//! resources (paper §V-A2).

use ifsim_coll::schedule::RankBuffers;
use ifsim_coll::{Collective, RcclComm};
use ifsim_des::Dur;
use ifsim_hip::{
    BufferId, HipError, HipResult, HipSim, HostAllocFlags, KernelSpec, MemcpyKind, StreamId,
};

/// Problem configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Device ordinal per data-parallel rank.
    pub devices: Vec<usize>,
    /// Model parameters per rank (f32) — also the gradient message size.
    pub params: usize,
    /// Input batch bytes per rank per step.
    pub batch_bytes: u64,
    /// Steps to run.
    pub steps: usize,
    /// Forward+backward passes per step (scales compute intensity
    /// independently of the parameter count).
    pub compute_passes: usize,
    /// Prefetch the next batch on a side stream during compute.
    pub overlap_ingestion: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            devices: (0..8).collect(),
            params: (64 << 20) / 4, // 64 MiB of gradients
            batch_bytes: 32 << 20,
            steps: 3,
            compute_passes: 2,
            overlap_ingestion: false,
        }
    }
}

/// Timing breakdown of a run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Total wall time.
    pub total: Dur,
    /// Mean time per step.
    pub per_step: Dur,
    /// Time spent in gradient AllReduce.
    pub allreduce: Dur,
    /// The reduced gradient value at element 0 (for verification).
    pub grad0: f32,
}

/// One abstract op of a training step, expressed in *rank* indices (the
/// caller maps ranks to devices). This is the communication/compute shape
/// [`run`] executes, exported as data so trace frontends (the
/// `ifsim-scenario` `train-step` generator) can replay the same pattern
/// record-by-record with explicit dependency edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepOp {
    /// Host-to-device ingestion of the input batch.
    Ingest {
        /// Destination rank.
        rank: usize,
        /// Batch bytes copied.
        bytes: u64,
    },
    /// Forward+backward compute, modeled as memory traffic on the rank.
    Compute {
        /// Executing rank.
        rank: usize,
        /// Total kernel memory traffic.
        bytes: u64,
    },
    /// One ring-AllReduce hop: a gradient chunk moves to the next rank.
    RingCopy {
        /// Sending rank.
        src: usize,
        /// Receiving rank (ring successor).
        dst: usize,
        /// Chunk bytes on the wire.
        bytes: u64,
        /// AllReduce round index, `0..2*(n-1)`; hops of round `r+1`
        /// depend on the hops of round `r`.
        round: usize,
    },
    /// Optimizer application after the reduced gradients arrive.
    Optimizer {
        /// Executing rank.
        rank: usize,
        /// Kernel memory traffic.
        bytes: u64,
    },
}

/// The per-step op pattern of [`run`] as plain data, in a
/// dependency-friendly order: ingestion, compute, the `2*(n-1)` ring
/// rounds of the gradient AllReduce (ranks chained `r -> r+1 mod n`), and
/// the optimizer pass. Byte counts follow the kernel models `run` issues:
/// a STREAM-copy plus STREAM-triad per compute pass (5 f32 accesses per
/// element) and a triad for the optimizer.
pub fn step_pattern(cfg: &TrainConfig) -> Vec<StepOp> {
    let n = cfg.devices.len();
    let param_bytes = cfg.params as u64 * 4;
    let chunk = (param_bytes / n.max(1) as u64).max(1);
    let mut ops = Vec::new();
    for rank in 0..n {
        ops.push(StepOp::Ingest {
            rank,
            bytes: cfg.batch_bytes,
        });
    }
    for rank in 0..n {
        ops.push(StepOp::Compute {
            rank,
            bytes: 5 * param_bytes * cfg.compute_passes as u64,
        });
    }
    for round in 0..2 * n.saturating_sub(1) {
        for src in 0..n {
            ops.push(StepOp::RingCopy {
                src,
                dst: (src + 1) % n,
                bytes: chunk,
                round,
            });
        }
    }
    for rank in 0..n {
        ops.push(StepOp::Optimizer {
            rank,
            bytes: 3 * param_bytes,
        });
    }
    ops
}

struct Rank {
    dev: usize,
    weights: BufferId,
    grads: BufferId,
    grads_out: BufferId,
    batch_dev: BufferId,
    batch_host: BufferId,
    copy_stream: StreamId,
}

/// Run the proxy.
pub fn run(hip: &mut HipSim, cfg: &TrainConfig) -> HipResult<TrainReport> {
    let n = cfg.devices.len();
    if n < 2 {
        return Err(HipError::InvalidValue("need at least two ranks".into()));
    }
    let comm = RcclComm::new(hip, cfg.devices.clone())?;

    let mut ranks = Vec::with_capacity(n);
    for (r, &dev) in cfg.devices.iter().enumerate() {
        hip.set_device(dev)?;
        let grads = hip.malloc(cfg.params as u64 * 4)?;
        // Deterministic per-rank gradient so the reduction is checkable.
        hip.mem_mut().write_f32s(grads, 0, &[(r + 1) as f32])?;
        ranks.push(Rank {
            dev,
            weights: hip.malloc(cfg.params as u64 * 4)?,
            grads,
            grads_out: hip.malloc(cfg.params as u64 * 4)?,
            batch_dev: hip.malloc(cfg.batch_bytes)?,
            batch_host: hip.host_malloc(cfg.batch_bytes, HostAllocFlags::non_coherent())?,
            copy_stream: hip.stream_create()?,
        });
    }
    let grad_bufs = RankBuffers {
        send: ranks.iter().map(|r| r.grads).collect(),
        recv: ranks.iter().map(|r| r.grads_out).collect(),
    };

    let t0 = hip.now();
    let mut allreduce = Dur::ZERO;
    for step in 0..cfg.steps {
        // Ingestion: blocking up front, or prefetched alongside compute.
        if !cfg.overlap_ingestion || step == 0 {
            for r in &ranks {
                let s = hip.default_stream(r.dev)?;
                hip.memcpy_async(
                    r.batch_dev,
                    0,
                    r.batch_host,
                    0,
                    cfg.batch_bytes,
                    MemcpyKind::HostToDevice,
                    s,
                )?;
            }
            hip.synchronize_all()?;
        }
        // Forward + backward: `compute_passes` rounds of weight-sized
        // traffic per step.
        for r in &ranks {
            hip.set_device(r.dev)?;
            for _ in 0..cfg.compute_passes {
                hip.launch_kernel(KernelSpec::StreamCopy {
                    src: r.weights,
                    dst: r.grads,
                    elems: cfg.params,
                })?;
                hip.launch_kernel(KernelSpec::StreamTriad {
                    a: r.weights,
                    b: r.grads,
                    dst: r.grads,
                    scalar: 1.0,
                    elems: cfg.params,
                })?;
            }
            // Prefetch next step's batch on the side stream, overlapping
            // the compute above (SDMA engines leave the kernels alone).
            if cfg.overlap_ingestion && step + 1 < cfg.steps {
                hip.memcpy_async(
                    r.batch_dev,
                    0,
                    r.batch_host,
                    0,
                    cfg.batch_bytes,
                    MemcpyKind::HostToDevice,
                    r.copy_stream,
                )?;
            }
        }
        hip.synchronize_all()?;
        // Restore the checkable gradient (the model kernels overwrote it).
        for (r, rank) in ranks.iter().enumerate() {
            hip.mem_mut().write_f32s(rank.grads, 0, &[(r + 1) as f32])?;
        }

        // Gradient AllReduce.
        let ta = hip.now();
        comm.collective(hip, Collective::AllReduce, &grad_bufs, cfg.params, 0)?;
        allreduce += hip.now() - ta;

        // Optimizer: one more weight-sized pass.
        for r in &ranks {
            hip.set_device(r.dev)?;
            hip.launch_kernel(KernelSpec::StreamTriad {
                a: r.weights,
                b: r.grads_out,
                dst: r.weights,
                scalar: -1e-3,
                elems: cfg.params,
            })?;
        }
        hip.synchronize_all()?;
    }

    let total = hip.now() - t0;
    let grad0 = hip
        .mem()
        .read_f32s(ranks[0].grads_out, 0, 1)?
        .map(|v| v[0])
        .unwrap_or(f32::NAN);
    Ok(TrainReport {
        total,
        per_step: total / cfg.steps as f64,
        allreduce,
        grad0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsim_hip::EnvConfig;

    fn runtime() -> HipSim {
        let mut hip = HipSim::new(EnvConfig::default());
        // Keep gradient buffers real enough for element-0 verification
        // while batches stay phantom.
        hip.mem_mut().set_phantom_threshold(1 << 20);
        hip
    }

    fn small(overlap: bool) -> TrainConfig {
        TrainConfig {
            devices: (0..4).collect(),
            params: (4 << 20) / 4,
            batch_bytes: 8 << 20,
            steps: 4,
            // Enough compute per step to fully hide one batch copy.
            compute_passes: 20,
            overlap_ingestion: overlap,
        }
    }

    #[test]
    fn step_pattern_mirrors_the_executed_shape() {
        let cfg = small(false);
        let n = cfg.devices.len();
        let ops = step_pattern(&cfg);
        // n ingests + n computes + 2(n-1) ring rounds of n hops + n opts.
        assert_eq!(ops.len(), 3 * n + 2 * (n - 1) * n);
        // Ring hops chain successor ranks and move equal chunks summing to
        // one full gradient buffer per reduce+broadcast half.
        let hop_bytes: u64 = ops
            .iter()
            .filter_map(|op| match op {
                StepOp::RingCopy {
                    src, dst, bytes, ..
                } => {
                    assert_eq!(*dst, (src + 1) % n);
                    Some(*bytes)
                }
                _ => None,
            })
            .sum();
        assert_eq!(hop_bytes, 2 * (n as u64 - 1) * (cfg.params as u64 * 4));
    }

    #[test]
    fn gradients_reduce_correctly() {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(u64::MAX);
        let mut cfg = small(false);
        cfg.params = 256;
        cfg.batch_bytes = 4096;
        cfg.compute_passes = 2;
        let r = run(&mut hip, &cfg).unwrap();
        // Element 0: sum over ranks of (rank+1) = 10 for 4 ranks.
        assert_eq!(r.grad0, 10.0);
    }

    #[test]
    fn overlapped_ingestion_shortens_the_step() {
        // Batch copies (64 MiB over 28 GB/s ≈ 2.3 ms) dominate; hiding them
        // behind compute must shorten total time.
        let mut hip = runtime();
        let sync = run(&mut hip, &small(false)).unwrap();
        let mut hip = runtime();
        let overlapped = run(&mut hip, &small(true)).unwrap();
        assert!(
            overlapped.total.as_secs() < 0.8 * sync.total.as_secs(),
            "overlap {} vs sync {}",
            overlapped.total,
            sync.total
        );
    }

    #[test]
    fn allreduce_time_is_a_minor_fraction_at_this_scale() {
        let mut hip = runtime();
        let r = run(&mut hip, &small(false)).unwrap();
        let frac = r.allreduce.as_secs() / r.total.as_secs();
        assert!(frac < 0.5, "allreduce fraction {frac}");
        assert!(r.per_step.as_us() > 0.0);
    }
}
