#![warn(missing_docs)]

//! # ifsim-apps — proxy applications on the simulated node
//!
//! The paper's introduction motivates its study with multi-GPU scientific
//! and ML workloads (CFD, molecular dynamics, model training). This crate
//! packages three miniature proxies of those workloads over the simulator,
//! in the spirit of HipBone/Tartan-style suites, so that the paper's
//! findings can be evaluated *in application context* rather than only in
//! microbenchmarks:
//!
//! - [`stencil`]: 1-D-decomposed 2-D stencil iteration with halo exchange —
//!   tests the GPU-direct vs. host-staged choice (§V) at application scale;
//! - [`cg`]: a distributed conjugate-gradient-shaped iteration — tiny
//!   latency-bound AllReduces interleaved with local kernels (§VI's
//!   MPI-vs-RCCL question at the size that actually hurts);
//! - [`train`]: a data-parallel training step — input ingestion over the
//!   CPU links, gradient AllReduce, and the copy/compute-overlap question
//!   (§V-A2's SDMA trade-off).
//!
//! Every proxy returns a structured report with a phase breakdown, and the
//! tests assert both the numerics (where data is real) and the performance
//! relationships the paper predicts.

pub mod cg;
pub mod stencil;
pub mod train;

pub use cg::{CgConfig, CgReport, ReductionLib};
pub use stencil::{ExchangeStrategy, StencilConfig, StencilReport};
pub use train::{TrainConfig, TrainReport};
