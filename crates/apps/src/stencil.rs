//! 2-D stencil proxy: strip decomposition with per-iteration halo exchange.
//!
//! Each rank owns a strip of `nx × (ny / n)` f32 cells on one GCD. An
//! iteration is: one interior update (modeled as STREAM-Triad-class memory
//! traffic over the strip) followed by halo exchange with both neighbours
//! (non-periodic). Halos move either with direct peer kernels or staged
//! through pinned host memory — the choice §V quantifies.

use ifsim_des::Dur;
use ifsim_hip::{BufferId, HipError, HipResult, HipSim, HostAllocFlags, KernelSpec, MemcpyKind};

/// How halos travel between neighbouring ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// Receiver-side peer copy kernels over xGMI.
    DirectPeer,
    /// D2H to a pinned bounce buffer, then H2D into the neighbour.
    HostStaged,
}

/// Problem configuration.
#[derive(Clone, Debug)]
pub struct StencilConfig {
    /// Device ordinal per rank (the decomposition order).
    pub devices: Vec<usize>,
    /// Grid width (cells per row, also the halo length).
    pub nx: usize,
    /// Grid height per rank (rows per strip).
    pub rows_per_rank: usize,
    /// Iterations to run.
    pub iters: usize,
    /// Halo transport.
    pub exchange: ExchangeStrategy,
}

impl Default for StencilConfig {
    fn default() -> Self {
        StencilConfig {
            devices: (0..8).collect(),
            nx: 4096,
            rows_per_rank: 1024,
            iters: 4,
            exchange: ExchangeStrategy::DirectPeer,
        }
    }
}

/// Timing breakdown of a run.
#[derive(Clone, Debug)]
pub struct StencilReport {
    /// Total wall time.
    pub total: Dur,
    /// Time in interior-update phases (summed over iterations).
    pub compute: Dur,
    /// Time in halo-exchange phases.
    pub exchange: Dur,
    /// Interior bytes touched per iteration across all ranks.
    pub interior_bytes_per_iter: u64,
    /// Halo bytes moved per iteration across all ranks.
    pub halo_bytes_per_iter: u64,
}

impl StencilReport {
    /// Fraction of the run spent exchanging halos.
    pub fn exchange_fraction(&self) -> f64 {
        self.exchange.as_secs() / self.total.as_secs().max(1e-12)
    }
}

struct Rank {
    dev: usize,
    field_a: BufferId,
    field_b: BufferId,
    halo_lo: BufferId,
    halo_hi: BufferId,
    bounce_lo: BufferId,
    bounce_hi: BufferId,
}

/// Run the proxy on a fresh runtime. Returns the phase breakdown.
pub fn run(hip: &mut HipSim, cfg: &StencilConfig) -> HipResult<StencilReport> {
    let n = cfg.devices.len();
    if n < 2 {
        return Err(HipError::InvalidValue("need at least two ranks".into()));
    }
    hip.enable_all_peer_access()?;
    let strip_elems = cfg.nx * cfg.rows_per_rank;
    let halo_bytes = cfg.nx as u64 * 4;

    let mut ranks = Vec::with_capacity(n);
    for &dev in &cfg.devices {
        hip.set_device(dev)?;
        ranks.push(Rank {
            dev,
            field_a: hip.malloc(strip_elems as u64 * 4)?,
            field_b: hip.malloc(strip_elems as u64 * 4)?,
            halo_lo: hip.malloc(halo_bytes)?,
            halo_hi: hip.malloc(halo_bytes)?,
            bounce_lo: hip.host_malloc(halo_bytes, HostAllocFlags::coherent())?,
            bounce_hi: hip.host_malloc(halo_bytes, HostAllocFlags::coherent())?,
        });
    }

    let t0 = hip.now();
    let mut compute = Dur::ZERO;
    let mut exchange = Dur::ZERO;
    for it in 0..cfg.iters {
        // Interior update: Triad-class traffic over the strip (read 2
        // arrays, write 1), ping-ponging between the two fields.
        let tc = hip.now();
        for r in &ranks {
            hip.set_device(r.dev)?;
            let (src, dst) = if it % 2 == 0 {
                (r.field_a, r.field_b)
            } else {
                (r.field_b, r.field_a)
            };
            hip.launch_kernel(KernelSpec::StreamTriad {
                a: src,
                b: dst,
                dst,
                scalar: 0.25,
                elems: strip_elems,
            })?;
        }
        hip.synchronize_all()?;
        compute += hip.now() - tc;

        // Halo exchange: rank r's top row -> r+1's halo_lo; bottom row ->
        // r-1's halo_hi (non-periodic strips).
        let te = hip.now();
        match cfg.exchange {
            ExchangeStrategy::DirectPeer => {
                for r in 0..n {
                    if r + 1 < n {
                        hip.set_device(ranks[r + 1].dev)?;
                        hip.launch_kernel(KernelSpec::StreamCopy {
                            src: ranks[r].halo_hi,
                            dst: ranks[r + 1].halo_lo,
                            elems: cfg.nx,
                        })?;
                    }
                    if r > 0 {
                        hip.set_device(ranks[r - 1].dev)?;
                        hip.launch_kernel(KernelSpec::StreamCopy {
                            src: ranks[r].halo_lo,
                            dst: ranks[r - 1].halo_hi,
                            elems: cfg.nx,
                        })?;
                    }
                }
                hip.synchronize_all()?;
            }
            ExchangeStrategy::HostStaged => {
                for r in &ranks {
                    let s = hip.default_stream(r.dev)?;
                    hip.memcpy_async(
                        r.bounce_hi,
                        0,
                        r.halo_hi,
                        0,
                        halo_bytes,
                        MemcpyKind::DeviceToHost,
                        s,
                    )?;
                    hip.memcpy_async(
                        r.bounce_lo,
                        0,
                        r.halo_lo,
                        0,
                        halo_bytes,
                        MemcpyKind::DeviceToHost,
                        s,
                    )?;
                }
                hip.synchronize_all()?;
                for r in 0..n {
                    if r + 1 < n {
                        let s = hip.default_stream(ranks[r + 1].dev)?;
                        hip.memcpy_async(
                            ranks[r + 1].halo_lo,
                            0,
                            ranks[r].bounce_hi,
                            0,
                            halo_bytes,
                            MemcpyKind::HostToDevice,
                            s,
                        )?;
                    }
                    if r > 0 {
                        let s = hip.default_stream(ranks[r - 1].dev)?;
                        hip.memcpy_async(
                            ranks[r - 1].halo_hi,
                            0,
                            ranks[r].bounce_lo,
                            0,
                            halo_bytes,
                            MemcpyKind::HostToDevice,
                            s,
                        )?;
                    }
                }
                hip.synchronize_all()?;
            }
        }
        exchange += hip.now() - te;
    }

    Ok(StencilReport {
        total: hip.now() - t0,
        compute,
        exchange,
        interior_bytes_per_iter: (strip_elems as u64 * 4) * 3 * n as u64,
        halo_bytes_per_iter: halo_bytes * 2 * (n as u64 - 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsim_hip::EnvConfig;

    fn runtime() -> HipSim {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(0);
        hip
    }

    #[test]
    fn direct_peer_beats_host_staged_exchange() {
        // The paper's §V message at application scale.
        let mut cfg = StencilConfig {
            nx: 64 * 1024, // large halos so transport dominates the phase
            rows_per_rank: 16,
            iters: 2,
            ..Default::default()
        };
        cfg.exchange = ExchangeStrategy::DirectPeer;
        let mut hip = runtime();
        let direct = run(&mut hip, &cfg).unwrap();
        cfg.exchange = ExchangeStrategy::HostStaged;
        let mut hip = runtime();
        let staged = run(&mut hip, &cfg).unwrap();
        assert!(
            staged.exchange.as_us() > 2.0 * direct.exchange.as_us(),
            "staged {} vs direct {}",
            staged.exchange,
            direct.exchange
        );
        // Compute phases are identical either way.
        let ratio = staged.compute.as_secs() / direct.compute.as_secs();
        assert!((0.95..1.05).contains(&ratio), "{ratio}");
    }

    #[test]
    fn halo_data_actually_arrives() {
        let cfg = StencilConfig {
            devices: vec![0, 2, 4],
            nx: 256,
            rows_per_rank: 64,
            iters: 1,
            exchange: ExchangeStrategy::DirectPeer,
        };
        let mut hip = runtime();
        let report = run(&mut hip, &cfg).unwrap();
        assert!(report.total.as_us() > 0.0);
        assert!(report.exchange.as_us() > 0.0);
        assert!(report.compute.as_us() > 0.0);
        assert_eq!(report.halo_bytes_per_iter, 256 * 4 * 2 * 2);
    }

    #[test]
    fn exchange_fraction_grows_with_halo_size() {
        let mut hip = runtime();
        let small = run(
            &mut hip,
            &StencilConfig {
                nx: 1024,
                rows_per_rank: 512,
                iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut hip = runtime();
        let big = run(
            &mut hip,
            &StencilConfig {
                nx: 64 * 1024,
                rows_per_rank: 8,
                iters: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            big.exchange_fraction() > small.exchange_fraction(),
            "{} vs {}",
            big.exchange_fraction(),
            small.exchange_fraction()
        );
    }

    #[test]
    fn single_rank_is_rejected() {
        let mut hip = runtime();
        let cfg = StencilConfig {
            devices: vec![0],
            ..Default::default()
        };
        assert!(run(&mut hip, &cfg).is_err());
    }
}
