//! Chrome trace-event JSON export.
//!
//! Produces the `{"traceEvents": [...]}` object format understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: complete
//! spans (`ph: "X"`) with microsecond `ts`/`dur`, global instants
//! (`ph: "i"`), counter samples (`ph: "C"`, one track per name — the
//! flight recorder's link-utilization series), and name metadata records
//! (`ph: "M"`) for process and thread lanes.

use crate::collector::CollectedTelemetry;
use crate::event::EventKind;
use serde_json::{Map, Value};

/// Build the Chrome trace-event document for a collection.
pub fn chrome_trace(t: &CollectedTelemetry) -> Value {
    let mut events: Vec<Value> = Vec::new();
    // Lane-name metadata first, as the format recommends.
    for (pid, name) in t.processes() {
        events.push(metadata("process_name", *pid, 0, name));
    }
    for ((pid, tid), name) in t.threads() {
        events.push(metadata("thread_name", *pid, *tid, name));
    }
    for ev in t.events() {
        let mut m = Map::new();
        m.insert("name", Value::from(ev.name.clone()));
        m.insert("cat", Value::from(ev.cat.clone()));
        m.insert("pid", Value::from(ev.pid));
        m.insert("tid", Value::from(ev.tid));
        m.insert("ts", Value::from(ev.ts_ns / 1000.0));
        match ev.kind {
            EventKind::Span { dur_ns } => {
                m.insert("ph", Value::from("X"));
                m.insert("dur", Value::from(dur_ns / 1000.0));
            }
            EventKind::Instant => {
                m.insert("ph", Value::from("i"));
                // Instant scope: process-wide.
                m.insert("s", Value::from("p"));
            }
            EventKind::Counter { value } => {
                m.insert("ph", Value::from("C"));
                // Counter tracks read their series values from numeric
                // args; one "value" series per track name.
                let mut args = Map::new();
                args.insert("value", Value::from(value));
                m.insert("args", Value::Object(args));
                events.push(Value::Object(m));
                continue;
            }
        }
        if !ev.args.is_empty() {
            let mut args = Map::new();
            for (k, v) in &ev.args {
                args.insert(k.clone(), Value::from(v.clone()));
            }
            m.insert("args", Value::Object(args));
        }
        events.push(Value::Object(m));
    }
    let mut root = Map::new();
    root.insert("traceEvents", Value::Array(events));
    root.insert("displayTimeUnit", Value::from("ns"));
    Value::Object(root)
}

fn metadata(kind: &str, pid: u32, tid: u32, name: &str) -> Value {
    let mut args = Map::new();
    args.insert("name", Value::from(name));
    let mut m = Map::new();
    m.insert("name", Value::from(kind));
    m.insert("ph", Value::from("M"));
    m.insert("ts", Value::from(0.0));
    m.insert("pid", Value::from(pid));
    m.insert("tid", Value::from(tid));
    m.insert("args", Value::Object(args));
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::SimTelemetry;
    use crate::event::TimelineEvent;
    use crate::metrics::MetricsRegistry;
    use ifsim_des::Time;

    fn collection() -> CollectedTelemetry {
        let mut c = CollectedTelemetry::new();
        c.ingest(SimTelemetry {
            process_name: "hipsim".into(),
            events: vec![
                TimelineEvent::span(Time::from_ns(1000.0), Time::from_ns(3000.0), "op", "hip_op")
                    .on_tid(1)
                    .with_arg("dev", "0"),
                TimelineEvent::instant(Time::from_ns(2000.0), "!fault: link down", "fault"),
            ],
            threads: vec![(1, "dev0/stream#1".into())],
            metrics: MetricsRegistry::new(),
            dag: None,
        });
        c
    }

    #[test]
    fn export_round_trips_with_required_fields() {
        let text = collection().chrome_trace_string();
        let v = serde_json::from_str(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            for field in ["name", "ph", "ts", "pid", "tid"] {
                assert!(ev.get(field).is_some(), "missing {field} in {ev:?}");
            }
        }
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("a complete span");
        // 2000 ns span → 2 µs dur at ts 1 µs.
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            span.get("args").unwrap().get("dev").unwrap().as_str(),
            Some("0")
        );
        let instant = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .expect("an instant");
        assert_eq!(instant.get("s").unwrap().as_str(), Some("p"));
    }

    #[test]
    fn counters_export_as_counter_tracks() {
        let mut c = CollectedTelemetry::new();
        c.ingest(SimTelemetry {
            process_name: "hipsim".into(),
            events: vec![
                TimelineEvent::counter(
                    Time::from_ns(1000.0),
                    "fabric util GCD0->GCD1",
                    "fabric_util",
                    0.75,
                ),
                TimelineEvent::counter(
                    Time::from_ns(2000.0),
                    "fabric util GCD0->GCD1",
                    "fabric_util",
                    0.0,
                ),
            ],
            threads: vec![],
            metrics: MetricsRegistry::new(),
            dag: None,
        });
        let v = chrome_trace(&c);
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            counters[0]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(0.75)
        );
        assert_eq!(
            counters[0].get("name").unwrap().as_str(),
            Some("fabric util GCD0->GCD1")
        );
    }

    #[test]
    fn export_names_process_and_thread_lanes() {
        let v = collection().chrome_trace();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert!(metas
            .iter()
            .any(|m| m.get("name").unwrap().as_str() == Some("process_name")));
        assert!(metas.iter().any(|m| {
            m.get("name").unwrap().as_str() == Some("thread_name")
                && m.get("args").unwrap().get("name").unwrap().as_str() == Some("dev0/stream#1")
        }));
    }
}
