//! Attribution report: which constraints bound the run, and for how long.
//!
//! The fabric charges every flow's lifetime to its current binding
//! constraint (see `ifsim-fabric`'s `attr` module); the HIP bridge folds
//! completed-flow attributions into `fabric_attr_*` metrics. This module
//! renders the merged registry back into the paper-style answer: *which
//! links bound this experiment and for how long* — as markdown
//! ([`render_attribution`]), machine-checkable JSON
//! ([`attribution_json`], schema `ifsim-attr-v1`), plus a long-format CSV
//! of the flight recorder's counter tracks ([`timeseries_csv`]).

use crate::collector::CollectedTelemetry;
use crate::event::EventKind;
use crate::metrics::MetricKey;
use serde_json::{Map, Value};
use std::fmt::Write as _;

/// Counter: nanoseconds of flow lifetime bound by one constraint. Labeled
/// `cause="engine-cap"`, or `cause="link"` + `segment="<label>"`.
pub const ATTR_BOUND_NS: &str = "fabric_attr_bound_ns";
/// Counter: completed flows that carried an attribution.
pub const ATTR_FLOWS: &str = "fabric_attr_flows";
/// Counter: total attributed flow lifetime, nanoseconds.
pub const ATTR_TOTAL_NS: &str = "fabric_attr_total_ns";
/// Schema tag of [`attribution_json`] documents.
pub const ATTR_SCHEMA: &str = "ifsim-attr-v1";

/// One aggregated binding-segment row.
#[derive(Clone, Debug, PartialEq)]
struct SegRow {
    segment: String,
    bound_ns: f64,
}

/// Pull the aggregate numbers out of the merged metrics.
fn collect(t: &CollectedTelemetry) -> (f64, f64, f64, Vec<SegRow>) {
    let m = t.metrics();
    let flows = m.counter(&MetricKey::new(ATTR_FLOWS));
    let total_ns = m.counter(&MetricKey::new(ATTR_TOTAL_NS));
    let cap_ns = m.counter(&MetricKey::new(ATTR_BOUND_NS).with("cause", "engine-cap"));
    let mut segs: Vec<SegRow> = m
        .counters()
        .filter(|(k, _)| k.name() == ATTR_BOUND_NS)
        .filter_map(|(k, v)| {
            let segment = k
                .labels()
                .iter()
                .find(|(l, _)| l == "segment")
                .map(|(_, s)| s.clone())?;
            Some(SegRow {
                segment,
                bound_ns: v,
            })
        })
        .collect();
    segs.sort_by(|a, b| {
        b.bound_ns
            .total_cmp(&a.bound_ns)
            .then_with(|| a.segment.cmp(&b.segment))
    });
    (flows, total_ns, cap_ns, segs)
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.3} ms", ns / 1e6)
}

fn share(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        part / whole
    } else {
        0.0
    }
}

/// Render the run's bottleneck attribution as markdown: the split between
/// endpoint/engine caps and link contention, and a table of binding
/// segments descending by bound time, leading with the dominant one.
pub fn render_attribution(t: &CollectedTelemetry) -> String {
    let (flows, total_ns, cap_ns, segs) = collect(t);
    let mut out = String::new();
    let _ = writeln!(out, "# Fabric bottleneck attribution\n");
    if flows == 0.0 {
        let _ = writeln!(
            out,
            "No attributed flows were recorded. Run with telemetry enabled \
             (`--trace-out`/`--metrics-out`/`--attr-out` install a collector)."
        );
        return out;
    }
    let link_ns: f64 = segs.iter().map(|s| s.bound_ns).sum();
    let _ = writeln!(out, "- attributed flows: {}", flows as u64);
    let _ = writeln!(out, "- attributed flow-time: {}", fmt_ms(total_ns));
    let _ = writeln!(
        out,
        "- endpoint/engine-cap bound: {} ({:.1}%)",
        fmt_ms(cap_ns),
        share(cap_ns, total_ns) * 100.0
    );
    let _ = writeln!(
        out,
        "- link-contention bound: {} ({:.1}%)\n",
        fmt_ms(link_ns),
        share(link_ns, total_ns) * 100.0
    );
    match segs.first() {
        Some(top) => {
            let _ = writeln!(
                out,
                "Dominant binding segment: **{}** ({}, {:.1}% of flow-time)\n",
                top.segment,
                fmt_ms(top.bound_ns),
                share(top.bound_ns, total_ns) * 100.0
            );
            let _ = writeln!(out, "| binding segment | bound time | share |");
            let _ = writeln!(out, "|---|---:|---:|");
            for s in &segs {
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.1}% |",
                    s.segment,
                    fmt_ms(s.bound_ns),
                    share(s.bound_ns, total_ns) * 100.0
                );
            }
            let _ = writeln!(
                out,
                "| (endpoint/engine cap) | {} | {:.1}% |",
                fmt_ms(cap_ns),
                share(cap_ns, total_ns) * 100.0
            );
        }
        None => {
            let _ = writeln!(
                out,
                "No link ever bound a flow: every flow ran at its endpoint/\
                 engine cap the whole time."
            );
        }
    }
    out
}

/// The same aggregation as [`render_attribution`], as a JSON document with
/// schema [`ATTR_SCHEMA`] — the shape `telemetry-lint --attr` validates.
pub fn attribution_json(t: &CollectedTelemetry) -> Value {
    let (flows, total_ns, cap_ns, segs) = collect(t);
    let link_ns: f64 = segs.iter().map(|s| s.bound_ns).sum();
    let mut root = Map::new();
    root.insert("schema", Value::from(ATTR_SCHEMA));
    root.insert("flows", Value::from(flows));
    root.insert("total_ns", Value::from(total_ns));
    root.insert("cap_bound_ns", Value::from(cap_ns));
    root.insert("link_bound_ns", Value::from(link_ns));
    root.insert(
        "segments",
        Value::Array(
            segs.iter()
                .map(|s| {
                    let mut m = Map::new();
                    m.insert("segment", Value::from(s.segment.clone()));
                    m.insert("bound_ns", Value::from(s.bound_ns));
                    m.insert("share", Value::from(share(s.bound_ns, total_ns)));
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    Value::Object(root)
}

/// The flight recorder's counter tracks as long-format CSV:
/// `pid,name,ts_ns,value`, in the merged timeline's deterministic order.
pub fn timeseries_csv(t: &CollectedTelemetry) -> String {
    let mut out = String::from("pid,name,ts_ns,value\n");
    for ev in t.events() {
        if let EventKind::Counter { value } = ev.kind {
            let _ = writeln!(out, "{},{},{:.1},{:.6}", ev.pid, ev.name, ev.ts_ns, value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::SimTelemetry;
    use crate::event::TimelineEvent;
    use crate::metrics::MetricsRegistry;
    use ifsim_des::Time;

    fn collection() -> CollectedTelemetry {
        let mut m = MetricsRegistry::new();
        m.counter_add(MetricKey::new(ATTR_FLOWS), 3.0);
        m.counter_add(MetricKey::new(ATTR_TOTAL_NS), 100e6);
        m.counter_add(
            MetricKey::new(ATTR_BOUND_NS).with("cause", "engine-cap"),
            40e6,
        );
        m.counter_add(
            MetricKey::new(ATTR_BOUND_NS)
                .with("cause", "link")
                .with("segment", "GCD0->GCD1"),
            50e6,
        );
        m.counter_add(
            MetricKey::new(ATTR_BOUND_NS)
                .with("cause", "link")
                .with("segment", "GCD0->GCD2"),
            10e6,
        );
        let mut c = CollectedTelemetry::new();
        c.ingest(SimTelemetry {
            process_name: "hipsim".into(),
            events: vec![TimelineEvent::counter(
                Time::from_ns(5.0),
                "fabric util GCD0->GCD1",
                "fabric_util",
                0.5,
            )],
            threads: vec![],
            metrics: m,
            dag: None,
        });
        c
    }

    #[test]
    fn report_names_the_dominant_segment() {
        let text = render_attribution(&collection());
        assert!(
            text.contains("Dominant binding segment: **GCD0->GCD1**"),
            "{text}"
        );
        assert!(text.contains("attributed flows: 3"), "{text}");
        assert!(text.contains("| GCD0->GCD2 |"), "{text}");
        assert!(text.contains("(endpoint/engine cap)"), "{text}");
        // Shares of total flow-time.
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("40.0%"), "{text}");
    }

    #[test]
    fn empty_collection_reports_gracefully() {
        let text = render_attribution(&CollectedTelemetry::new());
        assert!(text.contains("No attributed flows"), "{text}");
    }

    #[test]
    fn cap_only_run_says_so() {
        let mut m = MetricsRegistry::new();
        m.counter_add(MetricKey::new(ATTR_FLOWS), 1.0);
        m.counter_add(MetricKey::new(ATTR_TOTAL_NS), 10e6);
        m.counter_add(
            MetricKey::new(ATTR_BOUND_NS).with("cause", "engine-cap"),
            10e6,
        );
        let mut c = CollectedTelemetry::new();
        c.ingest(SimTelemetry {
            process_name: "hipsim".into(),
            events: vec![TimelineEvent::instant(Time::from_ns(1.0), "e", "t")],
            threads: vec![],
            metrics: m,
            dag: None,
        });
        let text = render_attribution(&c);
        assert!(text.contains("No link ever bound a flow"), "{text}");
    }

    #[test]
    fn json_has_schema_and_sorted_segments() {
        let v = attribution_json(&collection());
        assert_eq!(v.get("schema").unwrap().as_str(), Some(ATTR_SCHEMA));
        assert_eq!(v.get("flows").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("link_bound_ns").unwrap().as_f64(), Some(60e6));
        let segs = v.get("segments").unwrap().as_array().unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(
            segs[0].get("segment").unwrap().as_str(),
            Some("GCD0->GCD1"),
            "descending by bound time"
        );
        let share = segs[0].get("share").unwrap().as_f64().unwrap();
        assert!((share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timeseries_csv_lists_counter_samples() {
        let csv = timeseries_csv(&collection());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "pid,name,ts_ns,value");
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("fabric util GCD0->GCD1"), "{csv}");
        assert!(lines[1].ends_with("0.500000"), "{csv}");
    }
}
