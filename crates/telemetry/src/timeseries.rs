//! A bounded, sequence-numbered snapshot ring.
//!
//! The serve dashboard samples stats once a second and needs to backfill
//! the last few minutes when a browser connects, then deliver only the
//! samples the client has not yet seen. [`SnapshotRing`] supports exactly
//! that: every pushed sample gets a monotonically increasing sequence
//! number, the ring keeps the newest `capacity` samples, and
//! [`SnapshotRing::after`] returns everything newer than a given
//! sequence number — so an SSE handler can poll with "give me what is
//! new since seq N" and never re-send or miss a sample (samples that age
//! out before a slow client catches up are counted in
//! [`SnapshotRing::dropped`]).

use std::collections::VecDeque;

/// A bounded ring of `(seq, sample)` pairs, oldest first.
#[derive(Clone, Debug)]
pub struct SnapshotRing<T> {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    items: VecDeque<(u64, T)>,
}

impl<T: Clone> SnapshotRing<T> {
    /// An empty ring holding at most `capacity` samples (at least 1).
    pub fn new(capacity: usize) -> SnapshotRing<T> {
        SnapshotRing {
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            items: VecDeque::new(),
        }
    }

    /// Append a sample, evicting the oldest when full. Returns the
    /// sequence number assigned to the sample.
    pub fn push(&mut self, sample: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back((seq, sample));
        seq
    }

    /// All retained samples newer than `seq`, oldest first. Pass
    /// `None` for the full backfill.
    pub fn after(&self, seq: Option<u64>) -> Vec<(u64, T)> {
        match seq {
            None => self.items.iter().cloned().collect(),
            Some(s) => self.items.iter().filter(|(q, _)| *q > s).cloned().collect(),
        }
    }

    /// Sequence number of the newest retained sample, if any.
    pub fn latest_seq(&self) -> Option<u64> {
        self.items.back().map(|(q, _)| *q)
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Samples evicted before being superseded — a nonzero value means a
    /// client that fell more than `capacity` samples behind lost data.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotone_and_after_filters() {
        let mut r = SnapshotRing::new(8);
        for i in 0..5 {
            assert_eq!(r.push(i * 10), i as u64);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.latest_seq(), Some(4));
        let all = r.after(None);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], (0, 0));
        let tail = r.after(Some(2));
        assert_eq!(tail, vec![(3, 30), (4, 40)]);
        assert!(r.after(Some(4)).is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = SnapshotRing::new(3);
        for i in 0..10u64 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let all = r.after(None);
        assert_eq!(all, vec![(7, 7), (8, 8), (9, 9)]);
        // A client resuming from an evicted seq just gets what remains.
        assert_eq!(r.after(Some(1)).len(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = SnapshotRing::new(0);
        r.push("a");
        r.push("b");
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.after(None), vec![(1, "b")]);
        assert!(!r.is_empty());
    }
}
