//! The thread-local collector stack.
//!
//! Experiments build simulator instances deep inside library code, so
//! telemetry cannot be threaded through as an argument. Instead a caller
//! installs a [`Collector`] for a scope; every simulator constructed while
//! one is active turns its own instrumentation on and, when it is dropped
//! (or explicitly flushed), contributes a [`SimTelemetry`] snapshot to
//! every collector on the stack. Collectors nest: an outer CLI-level
//! collector and an inner per-experiment one both receive the data.

use crate::critpath::DepGraph;
use crate::event::{EventSink, TimelineEvent};
use crate::metrics::{MetricKey, MetricsRegistry};
use serde_json::{Map, Value};
use std::cell::RefCell;
use std::rc::Rc;

/// One simulator's telemetry contribution: its events (pid still 0), its
/// thread-lane names, and its metrics.
#[derive(Clone, Debug, Default)]
pub struct SimTelemetry {
    /// Display name for the simulator's process lane group.
    pub process_name: String,
    /// Timeline events; `pid` is assigned by the receiving collector.
    pub events: Vec<TimelineEvent>,
    /// `(tid, name)` lane names within this simulator.
    pub threads: Vec<(u32, String)>,
    /// The simulator's metrics.
    pub metrics: MetricsRegistry,
    /// The causal dependency graph, when DAG capture was requested
    /// ([`Collector::install_with_dag`]).
    pub dag: Option<DepGraph>,
}

impl SimTelemetry {
    /// Whether the snapshot carries nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.metrics.is_empty() && self.dag.is_none()
    }
}

/// Telemetry merged across any number of simulators: each ingested
/// [`SimTelemetry`] becomes one process lane group (pid) in the timeline,
/// and all metrics fold into one registry.
#[derive(Clone, Debug, Default)]
pub struct CollectedTelemetry {
    sink: EventSink,
    processes: Vec<(u32, String)>,
    threads: Vec<((u32, u32), String)>,
    metrics: MetricsRegistry,
    dags: Vec<DepGraph>,
    next_pid: u32,
}

impl CollectedTelemetry {
    /// An empty collection.
    pub fn new() -> CollectedTelemetry {
        CollectedTelemetry::default()
    }

    /// Fold one simulator's snapshot in, assigning it the next pid.
    pub fn ingest(&mut self, mut sim: SimTelemetry) {
        if sim.is_empty() {
            return;
        }
        if let Some(dag) = sim.dag.take() {
            self.dags.push(dag);
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        self.processes
            .push((pid, format!("{} #{pid}", sim.process_name)));
        for (tid, name) in sim.threads {
            self.threads.push(((pid, tid), name));
        }
        for mut ev in sim.events {
            ev.pid = pid;
            self.sink.push(ev);
        }
        self.metrics.merge(&sim.metrics);
        self.metrics
            .counter_add(MetricKey::new("telemetry_sims_observed"), 1.0);
    }

    /// Fold a whole other collection in, offsetting its pids past ours.
    pub fn absorb(&mut self, other: CollectedTelemetry) {
        let base = self.next_pid;
        for (pid, name) in other.processes {
            self.processes.push((base + pid, name));
        }
        for ((pid, tid), name) in other.threads {
            self.threads.push(((base + pid, tid), name));
        }
        for mut ev in other.sink.sorted() {
            ev.pid += base;
            self.sink.push(ev);
        }
        self.metrics.merge(&other.metrics);
        self.dags.extend(other.dags);
        self.next_pid = base + other.next_pid;
    }

    /// The merged timeline in deterministic time order.
    pub fn events(&self) -> Vec<TimelineEvent> {
        self.sink.sorted()
    }

    /// `(pid, name)` process lane groups, in ingestion order.
    pub fn processes(&self) -> &[(u32, String)] {
        &self.processes
    }

    /// `((pid, tid), name)` thread lanes.
    pub fn threads(&self) -> &[((u32, u32), String)] {
        &self.threads
    }

    /// The merged metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of simulators ingested.
    pub fn sims(&self) -> u32 {
        self.next_pid
    }

    /// The causal dependency graphs captured by DAG-instrumented
    /// simulators, in ingestion order (one per captured run).
    pub fn dags(&self) -> &[DepGraph] {
        &self.dags
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.sink.is_empty() && self.metrics.is_empty() && self.dags.is_empty()
    }

    /// The timeline as a Chrome trace-event JSON value.
    pub fn chrome_trace(&self) -> Value {
        crate::chrome::chrome_trace(self)
    }

    /// The timeline as Chrome trace-event JSON text, ready to load in
    /// Perfetto or `chrome://tracing`.
    pub fn chrome_trace_string(&self) -> String {
        serde_json::to_string(&self.chrome_trace())
    }

    /// The metrics snapshot as JSON text.
    pub fn metrics_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.metrics.to_json())
    }

    /// The metrics snapshot as a JSON value wrapped with an identifying
    /// `id` field (per-experiment artifacts).
    pub fn metrics_json_labeled(&self, id: &str) -> Value {
        let mut root = Map::new();
        root.insert("id", Value::from(id));
        root.insert("metrics", self.metrics.to_json());
        Value::Object(root)
    }
}

thread_local! {
    static STACK: RefCell<Vec<(Rc<RefCell<CollectedTelemetry>>, bool)>> =
        const { RefCell::new(Vec::new()) };
}

/// A scope on the collector stack. Install with [`Collector::install`],
/// harvest with [`Collector::take`]; dropping without taking discards the
/// collected data.
pub struct Collector {
    inner: Rc<RefCell<CollectedTelemetry>>,
}

impl Collector {
    /// Push a fresh collector onto this thread's stack.
    pub fn install() -> Collector {
        Collector::install_opts(false)
    }

    /// Push a fresh collector that additionally requests causal DAG
    /// capture: simulators constructed while it is active record their
    /// dependency graph ([`crate::critpath::DepGraph`]) alongside the
    /// usual telemetry. The capture is observation-only — schedules stay
    /// bitwise-identical — but costs memory proportional to op count, so
    /// it stays opt-in.
    pub fn install_with_dag() -> Collector {
        Collector::install_opts(true)
    }

    fn install_opts(want_dag: bool) -> Collector {
        let inner = Rc::new(RefCell::new(CollectedTelemetry::new()));
        STACK.with(|s| s.borrow_mut().push((Rc::clone(&inner), want_dag)));
        Collector { inner }
    }

    /// Remove this collector from the stack and return everything it
    /// gathered.
    pub fn take(self) -> CollectedTelemetry {
        self.detach();
        self.inner.take()
    }

    fn detach(&self) {
        STACK.with(|s| {
            s.borrow_mut().retain(|(c, _)| !Rc::ptr_eq(c, &self.inner));
        });
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.detach();
    }
}

/// Whether any collector is active on this thread — instrumented code uses
/// this to turn itself on.
pub fn active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

/// Whether any active collector on this thread asked for causal DAG
/// capture ([`Collector::install_with_dag`]).
pub fn dag_requested() -> bool {
    STACK.with(|s| s.borrow().iter().any(|(_, want_dag)| *want_dag))
}

/// Deliver one simulator snapshot to every active collector.
pub fn contribute(sim: SimTelemetry) {
    STACK.with(|s| {
        let stack = s.borrow();
        for (i, (c, _)) in stack.iter().enumerate() {
            if i + 1 == stack.len() {
                // Last receiver takes the snapshot by value.
                c.borrow_mut().ingest(sim);
                return;
            }
            c.borrow_mut().ingest(sim.clone());
        }
    });
}

/// Fold an already-collected bundle into every active collector on *this*
/// thread. The stack is thread-local, so a parallel driver whose workers
/// gathered telemetry under their own collectors uses this to forward the
/// merged result to the caller's collector (pids are offset on absorb).
pub fn contribute_collected(t: CollectedTelemetry) {
    STACK.with(|s| {
        let stack = s.borrow();
        for (i, (c, _)) in stack.iter().enumerate() {
            if i + 1 == stack.len() {
                c.borrow_mut().absorb(t);
                return;
            }
            c.borrow_mut().absorb(t.clone());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsim_des::Time;

    fn sample_sim(name: &str) -> SimTelemetry {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add(MetricKey::new("ops"), 1.0);
        SimTelemetry {
            process_name: name.into(),
            events: vec![TimelineEvent::instant(Time::from_ns(1.0), "e", "test")],
            threads: vec![(0, "lane".into())],
            metrics,
            dag: None,
        }
    }

    #[test]
    fn collectors_nest_and_both_receive() {
        assert!(!active());
        let outer = Collector::install();
        {
            let inner = Collector::install();
            assert!(active());
            contribute(sample_sim("a"));
            let got = inner.take();
            assert_eq!(got.sims(), 1);
            assert_eq!(got.events().len(), 1);
        }
        contribute(sample_sim("b"));
        let got = outer.take();
        assert_eq!(got.sims(), 2, "outer saw both contributions");
        assert!(!active());
    }

    #[test]
    fn dropped_collector_leaves_the_stack() {
        {
            let _c = Collector::install();
            assert!(active());
        }
        assert!(!active());
        contribute(sample_sim("ignored")); // no collector: a no-op
    }

    #[test]
    fn ingest_assigns_distinct_pids() {
        let mut c = CollectedTelemetry::new();
        c.ingest(sample_sim("one"));
        c.ingest(sample_sim("two"));
        let evs = c.events();
        assert_eq!(evs.len(), 2);
        assert_ne!(evs[0].pid, evs[1].pid);
        assert_eq!(c.processes().len(), 2);
        assert_eq!(
            c.metrics()
                .counter(&MetricKey::new("telemetry_sims_observed")),
            2.0
        );
        // Empty snapshots are skipped entirely.
        c.ingest(SimTelemetry::default());
        assert_eq!(c.sims(), 2);
    }

    #[test]
    fn contribute_collected_forwards_worker_bundles() {
        let outer = Collector::install();
        let mut bundle = CollectedTelemetry::new();
        bundle.ingest(sample_sim("worker"));
        contribute_collected(bundle);
        let got = outer.take();
        assert_eq!(got.sims(), 1);
        assert_eq!(got.events().len(), 1);
        // With no collector active it is a no-op, not a panic.
        let mut stray = CollectedTelemetry::new();
        stray.ingest(sample_sim("stray"));
        contribute_collected(stray);
    }

    #[test]
    fn dag_request_flag_and_graph_forwarding() {
        use crate::critpath::NodeCategory;
        assert!(!dag_requested());
        let plain = Collector::install();
        assert!(active() && !dag_requested());
        let dagged = Collector::install_with_dag();
        assert!(dag_requested(), "any collector wanting a DAG is enough");
        let mut g = DepGraph::default();
        g.add_node(0.0, 5.0, NodeCategory::Compute, "k");
        let mut sim = sample_sim("dagged");
        sim.dag = Some(g);
        contribute(sim);
        let got = dagged.take();
        assert_eq!(got.dags().len(), 1);
        assert_eq!(got.dags()[0].nodes.len(), 1);
        assert!(!dag_requested(), "flag cleared once the dag scope ends");
        // The outer (plain) collector still received the graph data, and
        // absorb concatenates graphs — this is what forwards DAGs from
        // `--jobs N` workers to the driver's collector.
        let outer = plain.take();
        assert_eq!(outer.dags().len(), 1);
        let mut sink = CollectedTelemetry::new();
        sink.absorb(got);
        sink.absorb(outer);
        assert_eq!(sink.dags().len(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn absorb_offsets_pids() {
        let mut a = CollectedTelemetry::new();
        a.ingest(sample_sim("a"));
        let mut b = CollectedTelemetry::new();
        b.ingest(sample_sim("b"));
        a.absorb(b);
        assert_eq!(a.sims(), 2);
        let pids: Vec<u32> = a.events().iter().map(|e| e.pid).collect();
        assert_eq!(pids, vec![0, 1]);
        assert_eq!(a.metrics().counter(&MetricKey::new("ops")), 2.0);
    }
}
