//! Prometheus text exposition for a [`MetricsRegistry`].
//!
//! [`render_prometheus`] turns a registry snapshot into the text format a
//! Prometheus/VictoriaMetrics/Grafana-agent scraper ingests: one
//! `# HELP` + `# TYPE` header per metric family followed by its samples,
//! labels escaped per the spec, histograms rendered as **cumulative**
//! `_bucket{le="..."}` series (the log-bucket upper bounds of
//! [`Histogram`](crate::Histogram)) closed by the mandatory
//! `le="+Inf"` bucket, `_sum`, and `_count`. Exemplars recorded via
//! [`MetricsRegistry::observe_with_exemplar`] are attached to the bucket
//! their value falls in using the OpenMetrics `# {trace_id="..."} value`
//! syntax, so a p99 bucket on a dashboard links straight back to a
//! recent traceable request.
//!
//! The exposition is deterministic (BTreeMap key order everywhere) and
//! validated structurally by `telemetry-lint --prom`.

use crate::hist::bucket_upper_bound;
use crate::metrics::{MetricKey, MetricsRegistry};
use std::fmt::Write as _;

/// Characters legal in a Prometheus metric name: `[a-zA-Z0-9_:]`, not
/// starting with a digit. Anything else becomes `_`.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition spec: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render `{k="v",...}` for a key's labels plus optional extra pairs
/// (used for `le`). Empty label sets render as nothing.
fn label_block(key: &MetricKey, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<(String, String)> = key
        .labels()
        .iter()
        .map(|(k, v)| (sanitize_name(k), escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push((k.to_string(), escape_label(v)));
    }
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Format a sample value: integral values render without a fraction so
/// counters look like counters; anything else uses shortest-f64.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Help text for the repo's well-known metric families; everything else
/// gets a generated line (HELP is mandatory in the strict exposition).
fn help_text(name: &str) -> &'static str {
    match name {
        "serve_requests_total" => "Requests handled, by op and response code.",
        "serve_request_latency_ns" => "Wall-clock request latency in nanoseconds, by op.",
        "serve_cache_hits" => "Result-cache lookups served from cache (memory or disk).",
        "serve_cache_misses" => "Result-cache lookups that required a fresh compute.",
        "serve_overloaded_total" => "Requests rejected by admission control (429).",
        "serve_queue_depth" => "Requests admitted (queued or running) right now.",
        "serve_panicked_jobs" => "Worker panics observed by the compute pool.",
        "serve_singleflight_leaders" => "Requests that led a coalesced computation.",
        "serve_singleflight_followers" => "Requests that attached to an in-flight computation.",
        "serve_deadline_exceeded_total" => "Requests answered 504 after their deadline expired.",
        "serve_deadline_shed_total" => {
            "Requests shed before compute because the deadline had passed."
        }
        "serve_cancelled_jobs_total" => "Computations cooperatively cancelled mid-flight.",
        "serve_cache_quarantined_total" => "Corrupt persistent-cache entries quarantined.",
        "serve_fabric_link_utilization" => {
            "Mean per-directed-link fabric utilization over the last sampled compute."
        }
        "serve_fabric_link_peak_utilization" => {
            "Peak per-directed-link fabric utilization over the last sampled compute."
        }
        "serve_fabric_recorder_dropped_samples_total" => {
            "Flight-recorder samples dropped to ring overflow across instrumented runs."
        }
        "serve_uptime_seconds" => "Seconds since the daemon started.",
        "serve_in_flight" => "Admission slots currently held.",
        "serve_draining" => "1 while the daemon is draining, else 0.",
        _ => "ifsim metric (see docs/OBSERVABILITY.md).",
    }
}

fn header(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {}", help_text(name));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Render the registry as Prometheus text exposition (content type
/// `text/plain; version=0.0.4`). See the module docs for the format
/// guarantees (`telemetry-lint --prom` checks them).
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();

    // Counters and gauges: one TYPE header per family, samples in key
    // order (same-name label sets are adjacent in BTreeMap order).
    for (kind, iter) in [
        ("counter", reg.counters().collect::<Vec<_>>()),
        ("gauge", reg.gauges().collect::<Vec<_>>()),
    ] {
        let mut last_family = String::new();
        for (key, value) in iter {
            let family = sanitize_name(key.name());
            if family != last_family {
                header(&mut out, &family, kind);
                last_family = family.clone();
            }
            let _ = writeln!(
                out,
                "{family}{} {}",
                label_block(key, None),
                fmt_value(value)
            );
        }
    }

    // Histograms: cumulative buckets + _sum/_count, exemplars attached
    // to the bucket their value belongs to (latest exemplar wins).
    let mut last_family = String::new();
    for (key, hist) in reg.histograms() {
        let family = sanitize_name(key.name());
        if family != last_family {
            header(&mut out, &family, "histogram");
            last_family = family.clone();
        }
        // Latest exemplar per bucket upper bound.
        let mut by_bucket: Vec<(f64, &crate::metrics::Exemplar)> = Vec::new();
        for ex in reg.exemplars(key) {
            let le = bucket_upper_bound(ex.value);
            match by_bucket.iter_mut().find(|(b, _)| *b == le) {
                Some(slot) => slot.1 = ex,
                None => by_bucket.push((le, ex)),
            }
        }
        let mut cumulative = 0u64;
        for (le, count) in hist.buckets() {
            cumulative += count;
            let le_text = format!("{le}");
            let _ = write!(
                out,
                "{family}_bucket{} {cumulative}",
                label_block(key, Some(("le", &le_text)))
            );
            if let Some((_, ex)) = by_bucket.iter().find(|(b, _)| *b == le) {
                let _ = write!(
                    out,
                    " # {{trace_id=\"{}\"}} {}",
                    escape_label(&ex.trace_id),
                    fmt_value(ex.value)
                );
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{family}_bucket{} {}",
            label_block(key, Some(("le", "+Inf"))),
            hist.count()
        );
        let _ = writeln!(
            out,
            "{family}_sum{} {}",
            label_block(key, None),
            fmt_value(hist.sum())
        );
        let _ = writeln!(
            out,
            "{family}_count{} {}",
            label_block(key, None),
            hist.count()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_labels_are_sanitized_and_escaped() {
        assert_eq!(
            sanitize_name("serve_requests_total"),
            "serve_requests_total"
        );
        assert_eq!(sanitize_name("9bad-name"), "_bad_name");
        assert_eq!(escape_label("GCD0->GCD1"), "GCD0->GCD1");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn exposition_carries_type_help_and_samples() {
        let mut r = MetricsRegistry::new();
        r.counter_add(
            MetricKey::new("serve_requests_total")
                .with("op", "run")
                .with("code", "200"),
            3.0,
        );
        r.counter_add(
            MetricKey::new("serve_requests_total")
                .with("op", "ping")
                .with("code", "200"),
            1.0,
        );
        r.gauge_set(MetricKey::new("serve_queue_depth"), 2.0);
        let text = render_prometheus(&r);
        assert!(text.contains("# HELP serve_requests_total "));
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("serve_requests_total{code=\"200\",op=\"run\"} 3"));
        assert!(text.contains("serve_requests_total{code=\"200\",op=\"ping\"} 1"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 2"));
        // One TYPE header per family even with several label sets.
        assert_eq!(text.matches("# TYPE serve_requests_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed_by_inf() {
        let mut r = MetricsRegistry::new();
        let k = MetricKey::new("lat").with("op", "run");
        for v in [1.0, 2.0, 4.0, 8.0, 8.5] {
            r.observe(k.clone(), v);
        }
        let text = render_prometheus(&r);
        assert!(text.contains("# TYPE lat histogram"));
        // Cumulative counts never decrease and end at the total.
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "cumulative: {line}");
            last = count;
            if line.contains("le=\"+Inf\"") {
                saw_inf = true;
                assert_eq!(count, 5);
            }
        }
        assert!(saw_inf, "+Inf bucket closes the family");
        assert!(text.contains("lat_count{op=\"run\"} 5"));
        assert!(text.contains("lat_sum{op=\"run\"} 23.5"));
    }

    #[test]
    fn exemplars_attach_to_their_bucket() {
        let mut r = MetricsRegistry::new();
        let k = MetricKey::new("lat");
        r.observe_with_exemplar(k.clone(), 100.0, "t-slow");
        r.observe_with_exemplar(k.clone(), 1.0, "t-fast");
        let text = render_prometheus(&r);
        let slow_line = text
            .lines()
            .find(|l| l.contains("t-slow"))
            .expect("exemplar rendered");
        assert!(slow_line.starts_with("lat_bucket{le=\""));
        assert!(slow_line.contains("# {trace_id=\"t-slow\"} 100"));
        assert!(text.contains("t-fast"));
        // The +Inf bucket itself never carries an exemplar (values land
        // in their finite bucket first).
        let inf_line = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("inf bucket");
        assert!(!inf_line.contains("trace_id"));
    }

    #[test]
    fn empty_registry_renders_empty_exposition() {
        assert_eq!(render_prometheus(&MetricsRegistry::new()), "");
    }
}
