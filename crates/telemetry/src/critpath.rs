//! Critical-path analysis over causal dependency graphs.
//!
//! A [`DepGraph`] is a compact per-run record of *what had to finish
//! before what*: nodes are timed intervals (an op's launch window, a
//! fabric flow, a sync marker) and edges are causal orderings (stream
//! program order, event record → wait, flow admission → completion,
//! host barriers between collective rounds). The capture side lives in
//! `ifsim-hip`; this module is the analysis side:
//!
//! - [`analyze`] reconstructs the **critical path** — the chain of
//!   intervals that explains the run's makespan end to end. Gaps with no
//!   explaining predecessor (host issue latency, queue wait) are charged
//!   to the `queue` category, so the path steps always partition
//!   `[0, makespan]` exactly: the total equals the makespan by
//!   construction, and per-category slack sums to the total.
//! - [`report`] aggregates one or more runs into a ranked "top-K binding
//!   intervals" table with per-category totals.
//! - [`render_critpath`] / [`critpath_json`] emit the markdown report and
//!   the `ifsim-critpath-v1` JSON document (`telemetry-lint --critpath`
//!   validates the latter).
//!
//! The what-if engine (`ifsim-analyze`) reuses [`CritPathReport`] as its
//! carrier: virtual-speedup sweep results slot into `whatif`.

use crate::metrics::MetricsRegistry;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag of the JSON document produced by [`critpath_json`].
pub const CRITPATH_SCHEMA: &str = "ifsim-critpath-v1";

/// Label used for path steps with no explaining node (host issue gaps,
/// queue waits between an op's predecessor finishing and the op itself).
pub const QUEUE_GAP_LABEL: &str = "(queue/host gap)";

/// Coarse cost class of a DAG node, and therefore of critical-path time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeCategory {
    /// Kernel execution (including a kernel's memory-traffic flows).
    Compute,
    /// Fabric data movement (memcpy/SDMA/collective flows).
    Transfer,
    /// Synchronization and launch overhead (event markers, launch
    /// latency windows).
    Sync,
    /// Unexplained time: host issue gaps and queue waits.
    Queue,
}

impl NodeCategory {
    /// Every category, in report order.
    pub const ALL: [NodeCategory; 4] = [
        NodeCategory::Compute,
        NodeCategory::Transfer,
        NodeCategory::Sync,
        NodeCategory::Queue,
    ];

    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeCategory::Compute => "compute",
            NodeCategory::Transfer => "transfer",
            NodeCategory::Sync => "sync",
            NodeCategory::Queue => "queue",
        }
    }

    /// Parse the name produced by [`NodeCategory::as_str`].
    pub fn parse(s: &str) -> Option<NodeCategory> {
        NodeCategory::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// One timed interval in the dependency graph.
#[derive(Clone, Debug)]
pub struct DagNode {
    /// Interval start, ns.
    pub start_ns: f64,
    /// Interval end, ns (`>= start_ns`).
    pub end_ns: f64,
    /// Cost class.
    pub category: NodeCategory,
    /// Human label — op label, flow route, etc. Steps aggregate by it.
    pub label: String,
}

/// A per-run causal dependency graph. Edges `(src, dst)` assert that
/// `src` causally precedes `dst` (and the capture layer guarantees
/// `src.end_ns <= dst.start_ns` up to float noise).
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Timed intervals, in creation order.
    pub nodes: Vec<DagNode>,
    /// Causal orderings between node indices.
    pub edges: Vec<(u32, u32)>,
}

impl DepGraph {
    /// Append a node, returning its index.
    pub fn add_node(
        &mut self,
        start_ns: f64,
        end_ns: f64,
        category: NodeCategory,
        label: impl Into<String>,
    ) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(DagNode {
            start_ns,
            end_ns,
            category,
            label: label.into(),
        });
        id
    }

    /// Record that `src` causally precedes `dst`.
    pub fn add_edge(&mut self, src: u32, dst: u32) {
        debug_assert!((src as usize) < self.nodes.len());
        debug_assert!((dst as usize) < self.nodes.len());
        self.edges.push((src, dst));
    }

    /// Latest interval end — the run's makespan (0 for an empty graph).
    pub fn makespan_ns(&self) -> f64 {
        self.nodes.iter().fold(0.0, |m, n| m.max(n.end_ns))
    }

    /// Whether the graph holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// One interval on the reconstructed critical path.
#[derive(Clone, Debug)]
pub struct PathStep {
    /// Step start, ns.
    pub start_ns: f64,
    /// Step end, ns.
    pub end_ns: f64,
    /// Cost class charged for `[start_ns, end_ns]`.
    pub category: NodeCategory,
    /// Node label ([`QUEUE_GAP_LABEL`] for unexplained gaps).
    pub label: String,
}

impl PathStep {
    /// The step's duration.
    pub fn dur_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// The critical path of one run: steps in forward time order, forming an
/// exact partition of `[0, makespan]`.
#[derive(Clone, Debug, Default)]
pub struct PathAnalysis {
    /// The run's makespan (latest node end).
    pub makespan_ns: f64,
    /// Path steps, earliest first; durations sum to `makespan_ns`.
    pub steps: Vec<PathStep>,
}

impl PathAnalysis {
    /// Per-category time on the path. Every category is present (0 when
    /// unused), so the values always partition [`PathAnalysis::makespan_ns`].
    pub fn by_category(&self) -> BTreeMap<&'static str, f64> {
        let mut out: BTreeMap<&'static str, f64> = NodeCategory::ALL
            .iter()
            .map(|c| (c.as_str(), 0.0))
            .collect();
        for s in &self.steps {
            *out.get_mut(s.category.as_str()).expect("seeded above") += s.dur_ns();
        }
        out
    }
}

/// Reconstruct the critical path of `g`.
///
/// Walks backward from the latest-finishing node, at each hop following
/// the predecessor that finished last. Time between a node's start and
/// its best predecessor's end (or time 0) is charged to
/// [`NodeCategory::Queue`] as an explicit gap step, which is what makes
/// the step durations partition the makespan exactly.
pub fn analyze(g: &DepGraph) -> PathAnalysis {
    if g.nodes.is_empty() {
        return PathAnalysis::default();
    }
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); g.nodes.len()];
    for &(src, dst) in &g.edges {
        preds[dst as usize].push(src);
    }
    // Terminal: latest end; ties break to the later start, then the lower
    // index, so reconstruction is deterministic.
    let mut terminal = 0usize;
    for (i, n) in g.nodes.iter().enumerate() {
        let t = &g.nodes[terminal];
        if n.end_ns > t.end_ns || (n.end_ns == t.end_ns && n.start_ns > t.start_ns) {
            terminal = i;
        }
    }
    let makespan_ns = g.nodes[terminal].end_ns;
    let mut rev: Vec<PathStep> = Vec::new();
    // `cursor` is the earliest instant already explained; every push
    // extends the explained region downward, so the steps partition
    // [0, makespan] even if an edge violates causal order (clamped).
    let mut cursor = makespan_ns;
    let mut cur = terminal;
    loop {
        let node = &g.nodes[cur];
        let start = node.start_ns.clamp(0.0, cursor);
        if cursor > start {
            rev.push(PathStep {
                start_ns: start,
                end_ns: cursor,
                category: node.category,
                label: node.label.clone(),
            });
            cursor = start;
        }
        if cursor <= 0.0 {
            break;
        }
        // Best predecessor: latest end (clamped into the unexplained
        // region), ties to the lower index.
        let best = preds[cur].iter().copied().min_by(|&a, &b| {
            let (ea, eb) = (g.nodes[a as usize].end_ns, g.nodes[b as usize].end_ns);
            eb.partial_cmp(&ea)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        match best {
            None => {
                rev.push(PathStep {
                    start_ns: 0.0,
                    end_ns: cursor,
                    category: NodeCategory::Queue,
                    label: QUEUE_GAP_LABEL.to_string(),
                });
                break;
            }
            Some(p) => {
                let pend = g.nodes[p as usize].end_ns.clamp(0.0, cursor);
                if pend < cursor {
                    rev.push(PathStep {
                        start_ns: pend,
                        end_ns: cursor,
                        category: NodeCategory::Queue,
                        label: QUEUE_GAP_LABEL.to_string(),
                    });
                    cursor = pend;
                }
                cur = p as usize;
            }
        }
    }
    rev.reverse();
    PathAnalysis {
        makespan_ns,
        steps: rev,
    }
}

/// One row of the ranked binding-interval table.
#[derive(Clone, Debug)]
pub struct TopEntry {
    /// Aggregation label (op label, flow route, or the gap label).
    pub label: String,
    /// Cost class.
    pub category: NodeCategory,
    /// Total critical-path time under this label.
    pub ns: f64,
    /// Number of path steps aggregated.
    pub count: u64,
}

/// One virtual-speedup data point from the what-if engine.
#[derive(Clone, Debug)]
pub struct WhatIfEntry {
    /// Calibration field swept (a `Calibration::f64_field_names()` name).
    pub field: String,
    /// Multiplicative factor applied to the field.
    pub factor: f64,
    /// Re-run total makespan under the perturbed calibration.
    pub makespan_ns: f64,
    /// `makespan_ns - baseline` (negative = the change would help).
    pub delta_ns: f64,
    /// `baseline / makespan_ns`.
    pub speedup: f64,
}

/// Per-run summary kept in the aggregate report.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// The run's makespan.
    pub makespan_ns: f64,
    /// Number of steps on its critical path.
    pub steps: usize,
}

/// Aggregate critical-path report over one or more captured runs, plus
/// (optionally) a what-if sweep.
#[derive(Clone, Debug, Default)]
pub struct CritPathReport {
    /// Captured runs analyzed.
    pub runs: usize,
    /// Sum of per-run makespans — equals the sum of all step durations.
    pub total_ns: f64,
    /// Per-category path time, summed across runs (all categories present).
    pub by_category: BTreeMap<&'static str, f64>,
    /// Ranked binding intervals, largest first, truncated to top-K.
    pub top: Vec<TopEntry>,
    /// Per-run summaries, in capture order.
    pub per_run: Vec<RunSummary>,
    /// What-if sweep points (empty unless the engine ran).
    pub whatif: Vec<WhatIfEntry>,
}

/// Analyze every graph and fold the paths into one ranked report.
pub fn report(graphs: &[DepGraph], top_k: usize) -> CritPathReport {
    let mut by_category: BTreeMap<&'static str, f64> = NodeCategory::ALL
        .iter()
        .map(|c| (c.as_str(), 0.0))
        .collect();
    let mut agg: BTreeMap<(String, &'static str), (f64, u64, NodeCategory)> = BTreeMap::new();
    let mut per_run = Vec::new();
    let mut total_ns = 0.0;
    for g in graphs {
        let path = analyze(g);
        total_ns += path.makespan_ns;
        for (cat, ns) in path.by_category() {
            *by_category.get_mut(cat).expect("seeded") += ns;
        }
        for s in &path.steps {
            let slot = agg
                .entry((s.label.clone(), s.category.as_str()))
                .or_insert((0.0, 0, s.category));
            slot.0 += s.dur_ns();
            slot.1 += 1;
        }
        per_run.push(RunSummary {
            makespan_ns: path.makespan_ns,
            steps: path.steps.len(),
        });
    }
    let mut top: Vec<TopEntry> = agg
        .into_iter()
        .map(|((label, _), (ns, count, category))| TopEntry {
            label,
            category,
            ns,
            count,
        })
        .collect();
    top.sort_by(|a, b| {
        b.ns.partial_cmp(&a.ns)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.label.cmp(&b.label))
    });
    top.truncate(top_k);
    CritPathReport {
        runs: graphs.len(),
        total_ns,
        by_category,
        top,
        per_run,
        whatif: Vec::new(),
    }
}

/// Render the report as markdown (the `--critpath-out` sibling of
/// `render_attribution`).
pub fn render_critpath(r: &CritPathReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Critical-path report");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} run(s) captured; critical-path total {:.3} ms (equals the summed makespan).",
        r.runs,
        r.total_ns / 1e6
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "## Where the time went");
    let _ = writeln!(out);
    let _ = writeln!(out, "| category | time (ms) | share |");
    let _ = writeln!(out, "|---|---:|---:|");
    for c in NodeCategory::ALL {
        let ns = r.by_category.get(c.as_str()).copied().unwrap_or(0.0);
        let share = if r.total_ns > 0.0 {
            100.0 * ns / r.total_ns
        } else {
            0.0
        };
        let _ = writeln!(out, "| {} | {:.3} | {share:.1} % |", c.as_str(), ns / 1e6);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Top binding intervals");
    let _ = writeln!(out);
    let _ = writeln!(out, "| rank | label | category | time (ms) | steps |");
    let _ = writeln!(out, "|---:|---|---|---:|---:|");
    for (i, t) in r.top.iter().enumerate() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.3} | {} |",
            i + 1,
            t.label,
            t.category.as_str(),
            t.ns / 1e6,
            t.count
        );
    }
    if !r.whatif.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## What-if: virtual calibration speedups");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Each row re-runs the experiment with one calibration field scaled \
             by the factor; deltas are against the baseline makespan."
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| field | factor | makespan (ms) | delta (ms) | speedup |"
        );
        let _ = writeln!(out, "|---|---:|---:|---:|---:|");
        for w in &r.whatif {
            let _ = writeln!(
                out,
                "| {} | {:.2} | {:.3} | {:+.3} | {:.3}x |",
                w.field,
                w.factor,
                w.makespan_ns / 1e6,
                w.delta_ns / 1e6,
                w.speedup
            );
        }
    }
    out
}

/// The report as an `ifsim-critpath-v1` JSON document.
pub fn critpath_json(r: &CritPathReport) -> Value {
    let mut root = Map::new();
    root.insert("schema", Value::from(CRITPATH_SCHEMA));
    root.insert("runs", Value::from(r.runs));
    root.insert("total_ns", Value::from(r.total_ns));
    let mut cats = Map::new();
    for c in NodeCategory::ALL {
        cats.insert(
            c.as_str(),
            Value::from(r.by_category.get(c.as_str()).copied().unwrap_or(0.0)),
        );
    }
    root.insert("categories", Value::Object(cats));
    root.insert(
        "top",
        Value::Array(
            r.top
                .iter()
                .map(|t| {
                    let mut m = Map::new();
                    m.insert("label", Value::from(t.label.clone()));
                    m.insert("category", Value::from(t.category.as_str()));
                    m.insert("ns", Value::from(t.ns));
                    m.insert("count", Value::from(t.count));
                    m.insert(
                        "share",
                        Value::from(if r.total_ns > 0.0 {
                            t.ns / r.total_ns
                        } else {
                            0.0
                        }),
                    );
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    root.insert(
        "per_run",
        Value::Array(
            r.per_run
                .iter()
                .map(|s| {
                    let mut m = Map::new();
                    m.insert("makespan_ns", Value::from(s.makespan_ns));
                    m.insert("steps", Value::from(s.steps));
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    if !r.whatif.is_empty() {
        root.insert(
            "whatif",
            Value::Array(
                r.whatif
                    .iter()
                    .map(|w| {
                        let mut m = Map::new();
                        m.insert("field", Value::from(w.field.clone()));
                        m.insert("factor", Value::from(w.factor));
                        m.insert("makespan_ns", Value::from(w.makespan_ns));
                        m.insert("delta_ns", Value::from(w.delta_ns));
                        m.insert("speedup", Value::from(w.speedup));
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
    }
    Value::Object(root)
}

/// Cross-check the critical path against PR 4's bottleneck attribution:
/// for each fabric segment the attribution counters blame
/// (`fabric_attr_bound_ns{cause="link"}`), report how much bound time it
/// accrued and whether that segment appears in a top transfer interval's
/// route. Segments with heavy bound time but no critical-path presence
/// are contended links that the schedule hides — exactly the distinction
/// a causal profiler adds over "busiest link" reasoning.
pub fn attribution_crosscheck(
    metrics: &MetricsRegistry,
    r: &CritPathReport,
) -> Vec<(String, f64, bool)> {
    let mut out = Vec::new();
    for (key, value) in metrics.counters() {
        if key.name() != crate::attribution::ATTR_BOUND_NS {
            continue;
        }
        let labels = key.labels();
        if !labels.iter().any(|(k, v)| k == "cause" && v == "link") {
            continue;
        }
        let Some((_, seg)) = labels.iter().find(|(k, _)| k == "segment") else {
            continue;
        };
        let on_path = r
            .top
            .iter()
            .any(|t| t.category == NodeCategory::Transfer && t.label.contains(seg.as_str()));
        out.push((seg.clone(), value, on_path));
    }
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

/// Render the cross-check table ([`attribution_crosscheck`]) as markdown;
/// empty string when attribution recorded nothing.
pub fn render_crosscheck(rows: &[(String, f64, bool)]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "## Cross-check vs. bottleneck attribution");
    let _ = writeln!(out);
    let _ = writeln!(out, "| segment | attr bound (ms) | on critical path |");
    let _ = writeln!(out, "|---|---:|---|");
    for (seg, ns, on_path) in rows {
        let _ = writeln!(
            out,
            "| {seg} | {:.3} | {} |",
            ns / 1e6,
            if *on_path { "yes" } else { "no" }
        );
    }
    out
}

/// Fold a sweep measurement into what-if entries (helper for the
/// `ifsim-analyze` engine and its tests).
pub fn whatif_entry(field: &str, factor: f64, makespan_ns: f64, baseline_ns: f64) -> WhatIfEntry {
    WhatIfEntry {
        field: field.to_string(),
        factor,
        makespan_ns,
        delta_ns: makespan_ns - baseline_ns,
        speedup: if makespan_ns > 0.0 {
            baseline_ns / makespan_ns
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;

    fn chain() -> DepGraph {
        // 0..10 sync, 10..60 transfer, 60..100 compute, with a 0-width
        // queue gap nowhere: contiguous chain.
        let mut g = DepGraph::default();
        let a = g.add_node(0.0, 10.0, NodeCategory::Sync, "launch");
        let b = g.add_node(10.0, 60.0, NodeCategory::Transfer, "GCD0->GCD1");
        let c = g.add_node(60.0, 100.0, NodeCategory::Compute, "kernel k");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g
    }

    #[test]
    fn empty_graph_analyzes_to_nothing() {
        let p = analyze(&DepGraph::default());
        assert_eq!(p.makespan_ns, 0.0);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn chain_path_partitions_makespan() {
        let p = analyze(&chain());
        assert_eq!(p.makespan_ns, 100.0);
        let sum: f64 = p.steps.iter().map(|s| s.dur_ns()).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        let cats = p.by_category();
        assert_eq!(cats["sync"], 10.0);
        assert_eq!(cats["transfer"], 50.0);
        assert_eq!(cats["compute"], 40.0);
        assert_eq!(cats["queue"], 0.0);
        // Forward order, contiguous.
        for w in p.steps.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
    }

    #[test]
    fn unexplained_time_becomes_queue_gaps() {
        let mut g = DepGraph::default();
        // Node starts at 5 with no predecessor; successor starts 10ns
        // after it ends.
        let a = g.add_node(5.0, 20.0, NodeCategory::Transfer, "t");
        let b = g.add_node(30.0, 50.0, NodeCategory::Compute, "k");
        g.add_edge(a, b);
        let p = analyze(&g);
        assert_eq!(p.makespan_ns, 50.0);
        let sum: f64 = p.steps.iter().map(|s| s.dur_ns()).sum();
        assert!((sum - 50.0).abs() < 1e-9);
        let cats = p.by_category();
        assert_eq!(cats["queue"], 5.0 + 10.0);
        assert_eq!(
            p.steps
                .iter()
                .filter(|s| s.label == QUEUE_GAP_LABEL)
                .count(),
            2
        );
    }

    #[test]
    fn path_follows_latest_predecessor() {
        let mut g = DepGraph::default();
        let fast = g.add_node(0.0, 10.0, NodeCategory::Transfer, "fast");
        let slow = g.add_node(0.0, 80.0, NodeCategory::Transfer, "slow");
        let join = g.add_node(80.0, 100.0, NodeCategory::Compute, "join");
        g.add_edge(fast, join);
        g.add_edge(slow, join);
        let p = analyze(&g);
        assert!(p.steps.iter().any(|s| s.label == "slow"));
        assert!(!p.steps.iter().any(|s| s.label == "fast"));
        let sum: f64 = p.steps.iter().map(|s| s.dur_ns()).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn report_aggregates_and_ranks() {
        let r = report(&[chain(), chain()], 2);
        assert_eq!(r.runs, 2);
        assert!((r.total_ns - 200.0).abs() < 1e-9);
        assert_eq!(r.per_run.len(), 2);
        // Categories sum to total.
        let cat_sum: f64 = r.by_category.values().sum();
        assert!((cat_sum - r.total_ns).abs() < 1e-9);
        // Top-2 of three labels: transfer (100) then compute (80).
        assert_eq!(r.top.len(), 2);
        assert_eq!(r.top[0].label, "GCD0->GCD1");
        assert_eq!(r.top[0].count, 2);
        assert_eq!(r.top[1].label, "kernel k");
    }

    #[test]
    fn json_document_is_schema_tagged_and_complete() {
        let mut r = report(&[chain()], 10);
        r.whatif
            .push(whatif_entry("eff_sdma_xgmi", 2.0, 80.0, 100.0));
        let v = critpath_json(&r);
        assert_eq!(v.get("schema").unwrap().as_str(), Some(CRITPATH_SCHEMA));
        assert_eq!(v.get("runs").unwrap().as_u64(), Some(1));
        let total_ns = v.get("total_ns").unwrap().as_f64().unwrap();
        let mut cat_sum = 0.0;
        for c in NodeCategory::ALL {
            cat_sum += v
                .get("categories")
                .unwrap()
                .get(c.as_str())
                .unwrap()
                .as_f64()
                .unwrap();
        }
        assert!((cat_sum - total_ns).abs() < 1e-9);
        let top = v.get("top").unwrap().as_array().unwrap();
        assert!(!top.is_empty());
        assert!(top[0].get("share").unwrap().as_f64().unwrap() <= 1.0);
        let w = &v.get("whatif").unwrap().as_array().unwrap()[0];
        assert_eq!(w.get("field").unwrap().as_str(), Some("eff_sdma_xgmi"));
        assert!((w.get("speedup").unwrap().as_f64().unwrap() - 1.25).abs() < 1e-9);
        assert!((w.get("delta_ns").unwrap().as_f64().unwrap() + 20.0).abs() < 1e-9);
    }

    #[test]
    fn markdown_render_names_all_sections() {
        let mut r = report(&[chain()], 5);
        r.whatif
            .push(whatif_entry("ddr_total_bw", 0.5, 150.0, 100.0));
        let text = render_critpath(&r);
        assert!(text.contains("# Critical-path report"));
        assert!(text.contains("## Where the time went"));
        assert!(text.contains("## Top binding intervals"));
        assert!(text.contains("## What-if"));
        assert!(text.contains("ddr_total_bw"));
    }

    #[test]
    fn crosscheck_matches_segments_against_top_transfers() {
        let mut m = MetricsRegistry::new();
        m.counter_add(
            MetricKey::new(crate::attribution::ATTR_BOUND_NS)
                .with("cause", "link")
                .with("segment", "GCD0->GCD1"),
            70.0,
        );
        m.counter_add(
            MetricKey::new(crate::attribution::ATTR_BOUND_NS)
                .with("cause", "link")
                .with("segment", "GCD4->GCD5"),
            10.0,
        );
        m.counter_add(
            MetricKey::new(crate::attribution::ATTR_BOUND_NS).with("cause", "engine-cap"),
            30.0,
        );
        let r = report(&[chain()], 5);
        let rows = attribution_crosscheck(&m, &r);
        assert_eq!(rows.len(), 2, "engine-cap row is not a segment");
        assert_eq!(rows[0].0, "GCD0->GCD1");
        assert!(rows[0].2, "top transfer names the segment");
        assert!(!rows[1].2);
        let text = render_crosscheck(&rows);
        assert!(text.contains("GCD0->GCD1"));
        assert!(render_crosscheck(&[]).is_empty());
    }
}
