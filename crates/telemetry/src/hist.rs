//! Log-bucketed histograms with interpolated quantiles.
//!
//! Buckets grow geometrically by `2^(1/4)` (~19 % per bucket, ~2.4 %
//! worst-case quantile error), so a histogram spanning nanoseconds to
//! seconds needs ~120 sparse buckets. Alongside the buckets the histogram
//! keeps exact `count`/`sum`/`min`/`max`, so means and extremes carry no
//! bucketing error at all.

use std::collections::BTreeMap;

/// Buckets per doubling: bucket `i` covers `[2^(i/4), 2^((i+1)/4))`.
const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// Bucket index for values `<= 0` (quantile interpolation treats it as the
/// span from `min` to zero).
const NONPOS_BUCKET: i32 = i32::MIN;

/// A mergeable log-bucketed histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "histogram sample must be finite, got {v}");
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`, using the same
    /// `rank = q · (n − 1)` convention as `ifsim_des::stats`, linearly
    /// interpolated within the covering bucket and clamped to the exact
    /// `min`/`max`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        if self.count == 1 {
            // One sample: every quantile *is* that sample. Interpolating
            // inside its bucket would report a bucket bound as an observed
            // value.
            return self.min;
        }
        let rank = q * (self.count - 1) as f64;
        // Extreme ranks are known exactly — never let bucket interpolation
        // turn a bucket's upper bound into a reported maximum (or its
        // lower bound into a minimum).
        if rank >= (self.count - 1) as f64 {
            return self.max;
        }
        if rank <= 0.0 {
            return self.min;
        }
        let mut seen = 0u64;
        for (&idx, &c) in &self.buckets {
            let last_in_bucket = (seen + c - 1) as f64;
            if last_in_bucket >= rank {
                let (lo, hi) = self.bucket_span(idx);
                // Position of the target rank among this bucket's samples.
                let frac = if c > 1 {
                    ((rank - seen as f64) / (c - 1) as f64).clamp(0.0, 1.0)
                } else {
                    0.5
                };
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Per-bucket `(upper_bound, count)` pairs in increasing bound order.
    /// The non-positive bucket reports an upper bound of `0.0`; counts are
    /// per-bucket (not cumulative), so renderers needing Prometheus-style
    /// cumulative `le` buckets accumulate as they iterate.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|(&idx, &c)| (bucket_upper_bound_of(idx), c))
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
    }

    /// Interpolation bounds of a bucket, clamped to observed extremes.
    fn bucket_span(&self, idx: i32) -> (f64, f64) {
        if idx == NONPOS_BUCKET {
            (self.min.min(0.0), self.max.min(0.0))
        } else {
            let lo = 2f64.powf(idx as f64 / BUCKETS_PER_OCTAVE);
            let hi = 2f64.powf((idx + 1) as f64 / BUCKETS_PER_OCTAVE);
            (lo.max(self.min), hi.min(self.max))
        }
    }
}

fn bucket_of(v: f64) -> i32 {
    if v <= 0.0 {
        NONPOS_BUCKET
    } else {
        (v.log2() * BUCKETS_PER_OCTAVE).floor() as i32
    }
}

fn bucket_upper_bound_of(idx: i32) -> f64 {
    if idx == NONPOS_BUCKET {
        0.0
    } else {
        2f64.powf((idx + 1) as f64 / BUCKETS_PER_OCTAVE)
    }
}

/// The upper bound of the bucket a sample falls into — the `le` value a
/// Prometheus rendering files it under. Exposed so exemplars recorded
/// alongside a histogram can be matched back to their bucket.
pub fn bucket_upper_bound(v: f64) -> f64 {
    bucket_upper_bound_of(bucket_of(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn exact_stats_have_no_bucketing_error() {
        let mut h = Histogram::new();
        for v in [3.0, 1.0, 10.0, 7.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10.0);
        assert_eq!(h.sum(), 21.0);
        assert!((h.mean() - 5.25).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max() && p50 >= h.min());
        // Log buckets bound relative error by the bucket ratio (2^¼ ≈ 19 %).
        assert!((p50 - 500.0).abs() / 500.0 < 0.2, "p50 = {p50}");
        assert!((p95 - 950.0).abs() / 950.0 < 0.2, "p95 = {p95}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.2, "p99 = {p99}");
    }

    #[test]
    fn single_sample_quantiles_collapse() {
        let mut h = Histogram::new();
        h.record(42.0);
        assert_eq!(h.p50(), 42.0);
        assert_eq!(h.p95(), 42.0);
        assert_eq!(h.p99(), 42.0);
        assert_eq!(h.quantile(0.0), 42.0);
        assert_eq!(h.quantile(1.0), 42.0);
    }

    #[test]
    fn empty_histogram_tail_quantiles_do_not_panic() {
        let h = Histogram::new();
        assert_eq!(h.p95(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn extreme_quantiles_report_observed_extremes_not_bucket_bounds() {
        // 100.0 sits in log-bucket [97.0, 115.4): a naive interpolation
        // reports a value above the observed max for q = 1.0 and tail
        // quantiles of tiny histograms.
        let mut h = Histogram::new();
        h.record(3.0);
        h.record(100.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 3.0);
        // p99 on two samples: rank 0.99 interpolates but stays within the
        // observed range.
        let p99 = h.p99();
        assert!((3.0..=100.0).contains(&p99), "p99 = {p99}");
        // Ten equal samples: every quantile is exactly that value, not a
        // bucket bound above it.
        let mut eq = Histogram::new();
        for _ in 0..10 {
            eq.record(100.0);
        }
        assert_eq!(eq.p95(), 100.0);
        assert_eq!(eq.p99(), 100.0);
        assert_eq!(eq.quantile(1.0), 100.0);
    }

    #[test]
    fn nonpositive_samples_are_accepted() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 5.0);
        let p = h.p50();
        assert!((-5.0..=5.0).contains(&p));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 1..=50 {
            a.record(i as f64);
            all.record(i as f64);
        }
        for i in 51..=100 {
            b.record(i as f64);
            all.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merge into empty adopts the other side wholesale.
        let mut empty = Histogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_samples_panic() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn bucket_iteration_is_increasing_and_complete() {
        let mut h = Histogram::new();
        for v in [-1.0, 0.5, 1.0, 3.0, 3.1, 1000.0] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds increase: {buckets:?}");
        }
        // Every sample is ≤ its bucket's upper bound, and the nonpositive
        // bucket reports le = 0.
        assert_eq!(buckets[0].0, 0.0);
        assert_eq!(buckets[0].1, 1, "only -1.0 is non-positive");
        assert!(bucket_upper_bound(3.0) >= 3.0);
        assert!(bucket_upper_bound(-7.0) == 0.0);
        assert!(bucket_upper_bound(1000.0) >= 1000.0);
        // The bound is the tightest bucket edge: within one bucket ratio.
        assert!(bucket_upper_bound(1000.0) < 1000.0 * 2f64.powf(0.25) * 1.0001);
    }
}
