//! Per-link utilization heatmap rendering, derived from the fabric's
//! byte counters (the shared replacement for the ad-hoc loop the
//! `fabric_heatmap` example used to carry).

use ifsim_des::units::fmt_bytes;
use std::fmt::Write as _;

/// One heatmap row: a directed link (or any resource) with its mean
/// utilization over the run and the wire bytes it carried.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilRow {
    /// Row label (`Gcd(0)->Gcd(1)`).
    pub label: String,
    /// Mean utilization in `[0, 1]` (may slightly exceed 1 from rounding).
    pub utilization: f64,
    /// Cumulative wire bytes carried.
    pub wire_bytes: f64,
}

/// Render rows as an aligned bar heatmap, `width` columns per bar.
pub fn render_heatmap(title: &str, rows: &[UtilRow], width: usize) -> String {
    assert!(width >= 10, "heatmap needs at least 10 columns");
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if rows.is_empty() {
        let _ = writeln!(out, "  (no traffic recorded)");
        return out;
    }
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(8);
    for r in rows {
        let filled = ((r.utilization.clamp(0.0, 1.0) * width as f64).round()) as usize;
        let bar = format!("{}{}", "#".repeat(filled), ".".repeat(width - filled));
        let _ = writeln!(
            out,
            "  {:<label_w$} {:>6.1}% |{bar}| {:>10}",
            r.label,
            r.utilization * 100.0,
            fmt_bytes(r.wire_bytes.round() as u64),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bars_proportional_to_utilization() {
        let rows = vec![
            UtilRow {
                label: "Gcd(0)->Gcd(1)".into(),
                utilization: 1.0,
                wire_bytes: 2e9,
            },
            UtilRow {
                label: "Gcd(1)->Gcd(0)".into(),
                utilization: 0.5,
                wire_bytes: 1e9,
            },
            UtilRow {
                label: "idle".into(),
                utilization: 0.0,
                wire_bytes: 0.0,
            },
        ];
        let text = render_heatmap("xGMI utilization", &rows, 20);
        assert!(text.contains("xGMI utilization"));
        assert!(text.contains("|####################|"), "{text}");
        assert!(text.contains("|##########..........|"), "{text}");
        assert!(text.contains("|....................|"), "{text}");
        assert!(text.contains("100.0%"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn empty_rows_render_gracefully() {
        let text = render_heatmap("t", &[], 20);
        assert!(text.contains("no traffic"));
    }

    #[test]
    fn over_unity_utilization_is_clamped_in_the_bar() {
        let rows = vec![UtilRow {
            label: "x".into(),
            utilization: 1.2,
            wire_bytes: 1.0,
        }];
        let text = render_heatmap("t", &rows, 10);
        assert!(text.contains("|##########|"));
        assert!(text.contains("120.0%"), "number stays honest: {text}");
    }
}
