//! Per-link utilization heatmap rendering, derived from the fabric's
//! byte counters (the shared replacement for the ad-hoc loop the
//! `fabric_heatmap` example used to carry).

use ifsim_des::units::fmt_bytes;
use std::fmt::Write as _;

/// One heatmap row: a directed link (or any resource) with its mean
/// utilization over the run and the wire bytes it carried.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilRow {
    /// Row label (`Gcd(0)->Gcd(1)`).
    pub label: String,
    /// Mean utilization in `[0, 1]` (may slightly exceed 1 from rounding).
    pub utilization: f64,
    /// Cumulative wire bytes carried.
    pub wire_bytes: f64,
}

/// Split a `A->B` / `A<->B` label into endpoints, so mixed-width endpoint
/// names (`GCD0` next to `GCD10`) can be padded into aligned columns.
fn split_arrow(label: &str) -> Option<(&str, &'static str, &str)> {
    if let Some((l, r)) = label.split_once("<->") {
        return Some((l, "<->", r));
    }
    if let Some((l, r)) = label.split_once("->") {
        return Some((l, "->", r));
    }
    None
}

/// Render rows as an aligned bar heatmap, `width` columns per bar.
///
/// Arrowed labels are padded per endpoint, so `GCD2->GCD3` and
/// `GCD10->GCD11` line up their arrows instead of shifting the whole
/// column. Rows with no traffic at all render `·` in the numeric columns —
/// an idle link is information, but `0.0% … 0 B` noise is not.
pub fn render_heatmap(title: &str, rows: &[UtilRow], width: usize) -> String {
    assert!(width >= 10, "heatmap needs at least 10 columns");
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if rows.is_empty() {
        let _ = writeln!(out, "  (no traffic recorded)");
        return out;
    }
    let lhs_w = rows
        .iter()
        .filter_map(|r| split_arrow(&r.label))
        .map(|(l, a, _)| l.len() + a.len())
        .max()
        .unwrap_or(0);
    let labels: Vec<String> = rows
        .iter()
        .map(|r| match split_arrow(&r.label) {
            Some((l, a, rhs)) => format!("{:>lhs_w$}{rhs}", format!("{l}{a}")),
            None => r.label.clone(),
        })
        .collect();
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(8);
    for (r, label) in rows.iter().zip(&labels) {
        let idle = r.utilization == 0.0 && r.wire_bytes == 0.0;
        let filled = ((r.utilization.clamp(0.0, 1.0) * width as f64).round()) as usize;
        let bar = format!("{}{}", "#".repeat(filled), ".".repeat(width - filled));
        let (pct, bytes) = if idle {
            (format!("{:>7}", "·"), format!("{:>10}", "·"))
        } else {
            (
                format!("{:>6.1}%", r.utilization * 100.0),
                format!("{:>10}", fmt_bytes(r.wire_bytes.round() as u64)),
            )
        };
        let _ = writeln!(out, "  {label:<label_w$} {pct} |{bar}| {bytes}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bars_proportional_to_utilization() {
        let rows = vec![
            UtilRow {
                label: "Gcd(0)->Gcd(1)".into(),
                utilization: 1.0,
                wire_bytes: 2e9,
            },
            UtilRow {
                label: "Gcd(1)->Gcd(0)".into(),
                utilization: 0.5,
                wire_bytes: 1e9,
            },
            UtilRow {
                label: "idle".into(),
                utilization: 0.0,
                wire_bytes: 0.0,
            },
        ];
        let text = render_heatmap("xGMI utilization", &rows, 20);
        assert!(text.contains("xGMI utilization"));
        assert!(text.contains("|####################|"), "{text}");
        assert!(text.contains("|##########..........|"), "{text}");
        assert!(text.contains("|....................|"), "{text}");
        assert!(text.contains("100.0%"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn double_digit_ids_keep_arrows_aligned() {
        let rows = vec![
            UtilRow {
                label: "GCD2->GCD3".into(),
                utilization: 0.5,
                wire_bytes: 1e9,
            },
            UtilRow {
                label: "GCD10->GCD11".into(),
                utilization: 0.25,
                wire_bytes: 5e8,
            },
        ];
        let text = render_heatmap("t", &rows, 10);
        let arrow_cols: Vec<usize> = text
            .lines()
            .skip(1)
            .map(|l| l.find("->").expect("arrowed label"))
            .collect();
        assert_eq!(arrow_cols[0], arrow_cols[1], "{text}");
        // Bars start at the same column too.
        let bar_cols: Vec<usize> = text
            .lines()
            .skip(1)
            .map(|l| l.find('|').expect("bar"))
            .collect();
        assert_eq!(bar_cols[0], bar_cols[1], "{text}");
    }

    #[test]
    fn zero_traffic_rows_render_a_dot_not_zeroes() {
        let rows = vec![
            UtilRow {
                label: "GCD0->GCD1".into(),
                utilization: 1.0,
                wire_bytes: 1e9,
            },
            UtilRow {
                label: "GCD1->GCD0".into(),
                utilization: 0.0,
                wire_bytes: 0.0,
            },
        ];
        let text = render_heatmap("t", &rows, 10);
        let idle_line = text
            .lines()
            .find(|l| l.contains("GCD1->GCD0"))
            .expect("idle row");
        assert!(idle_line.contains('·'), "{text}");
        assert!(!idle_line.contains("0.0%"), "{text}");
        assert!(!idle_line.contains("0 B"), "{text}");
        // A hot row keeps real numbers.
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn empty_rows_render_gracefully() {
        let text = render_heatmap("t", &[], 20);
        assert!(text.contains("no traffic"));
    }

    #[test]
    fn over_unity_utilization_is_clamped_in_the_bar() {
        let rows = vec![UtilRow {
            label: "x".into(),
            utilization: 1.2,
            wire_bytes: 1.0,
        }];
        let text = render_heatmap("t", &rows, 10);
        assert!(text.contains("|##########|"));
        assert!(text.contains("120.0%"), "number stays honest: {text}");
    }
}
