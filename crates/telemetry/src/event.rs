//! The unified event timeline: spans and instants from many sources,
//! merged into one deterministic order.

use ifsim_des::Time;

/// Shape of a timeline event.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// An interval with a duration (a hip op, a fabric flow).
    Span {
        /// Duration in nanoseconds.
        dur_ns: f64,
    },
    /// A point event (fault marker, flow abort, reroute).
    Instant,
    /// A sampled counter value (link utilization at a recompute epoch).
    /// Exported as a Chrome `ph: "C"` event; each distinct name becomes a
    /// counter track.
    Counter {
        /// Sampled value at `ts_ns`.
        value: f64,
    },
}

/// One event on the merged timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEvent {
    /// Start timestamp in nanoseconds of virtual time.
    pub ts_ns: f64,
    /// Span or instant.
    pub kind: EventKind,
    /// Display name (`memcpy 64B`, `flow 12`, `!fault: ...`).
    pub name: String,
    /// Category (`hip_op`, `fabric_flow`, `fault`) — Perfetto filters on it.
    pub cat: String,
    /// Process id lane group; 0 until a collector assigns one per simulator.
    pub pid: u32,
    /// Thread id within the process (stream lane, fabric lane).
    pub tid: u32,
    /// Extra key/value detail rendered into the trace `args`.
    pub args: Vec<(String, String)>,
}

impl TimelineEvent {
    /// A span starting at `start` and ending at `end`.
    pub fn span(start: Time, end: Time, name: impl Into<String>, cat: &str) -> TimelineEvent {
        TimelineEvent {
            ts_ns: start.as_ns(),
            kind: EventKind::Span {
                dur_ns: (end - start).as_ns(),
            },
            name: name.into(),
            cat: cat.to_string(),
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// An instant at `at`.
    pub fn instant(at: Time, name: impl Into<String>, cat: &str) -> TimelineEvent {
        TimelineEvent {
            ts_ns: at.as_ns(),
            kind: EventKind::Instant,
            name: name.into(),
            cat: cat.to_string(),
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A counter sample at `at`.
    pub fn counter(at: Time, name: impl Into<String>, cat: &str, value: f64) -> TimelineEvent {
        TimelineEvent {
            ts_ns: at.as_ns(),
            kind: EventKind::Counter { value },
            name: name.into(),
            cat: cat.to_string(),
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// Set the thread lane.
    pub fn on_tid(mut self, tid: u32) -> TimelineEvent {
        self.tid = tid;
        self
    }

    /// Append one args entry.
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<String>) -> TimelineEvent {
        self.args.push((key.into(), value.into()));
        self
    }

    /// End timestamp (start for instants).
    pub fn end_ns(&self) -> f64 {
        match self.kind {
            EventKind::Span { dur_ns } => self.ts_ns + dur_ns,
            EventKind::Instant | EventKind::Counter { .. } => self.ts_ns,
        }
    }
}

/// Accumulates events from any number of sources and yields them in one
/// deterministic time order: by `(ts, pid, tid)`, with insertion order
/// breaking exact ties (stable sort).
#[derive(Clone, Debug, Default)]
pub struct EventSink {
    events: Vec<TimelineEvent>,
}

impl EventSink {
    /// An empty sink.
    pub fn new() -> EventSink {
        EventSink::default()
    }

    /// Add one event.
    pub fn push(&mut self, ev: TimelineEvent) {
        self.events.push(ev);
    }

    /// Add a batch of events.
    pub fn extend(&mut self, evs: impl IntoIterator<Item = TimelineEvent>) {
        self.events.extend(evs);
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events in insertion order (unsorted).
    pub fn raw(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// The merged timeline: sorted by timestamp, then pid, then tid, with
    /// insertion order as the final (stable) tie-break.
    pub fn sorted(&self) -> Vec<TimelineEvent> {
        let mut out = self.events.clone();
        out.sort_by(|a, b| {
            a.ts_ns
                .total_cmp(&b.ts_ns)
                .then(a.pid.cmp(&b.pid))
                .then(a.tid.cmp(&b.tid))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: f64, pid: u32, tid: u32, name: &str) -> TimelineEvent {
        TimelineEvent {
            ts_ns: ts,
            kind: EventKind::Instant,
            name: name.into(),
            cat: "test".into(),
            pid,
            tid,
            args: vec![],
        }
    }

    #[test]
    fn sorted_orders_by_time_then_lane() {
        let mut s = EventSink::new();
        s.push(ev(5.0, 0, 1, "c"));
        s.push(ev(1.0, 1, 0, "b"));
        s.push(ev(1.0, 0, 2, "a"));
        let sorted = s.sorted();
        let names: Vec<&str> = sorted.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn exact_ties_keep_insertion_order() {
        let mut s = EventSink::new();
        s.push(ev(2.0, 0, 0, "first"));
        s.push(ev(2.0, 0, 0, "second"));
        let sorted = s.sorted();
        let names: Vec<&str> = sorted.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["first", "second"]);
    }

    #[test]
    fn span_builders_compute_end() {
        let e = TimelineEvent::span(Time::from_ns(10.0), Time::from_ns(30.0), "op", "hip_op")
            .on_tid(3)
            .with_arg("dev", "0");
        assert_eq!(e.ts_ns, 10.0);
        assert_eq!(e.end_ns(), 30.0);
        assert_eq!(e.tid, 3);
        assert_eq!(e.args, vec![("dev".to_string(), "0".to_string())]);
        let i = TimelineEvent::instant(Time::from_ns(7.0), "mark", "fault");
        assert_eq!(i.end_ns(), 7.0);
        let c = TimelineEvent::counter(Time::from_ns(9.0), "fabric util x", "fabric_util", 0.5);
        assert_eq!(c.end_ns(), 9.0);
        assert_eq!(c.kind, EventKind::Counter { value: 0.5 });
    }

    #[test]
    fn extend_and_len() {
        let mut s = EventSink::new();
        assert!(s.is_empty());
        s.extend(vec![ev(1.0, 0, 0, "x"), ev(2.0, 0, 0, "y")]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.raw()[0].name, "x");
    }
}
