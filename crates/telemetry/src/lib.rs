#![warn(missing_docs)]

//! # ifsim-telemetry — the observability substrate of the simulator
//!
//! The simulator's answer to `rocprof`/`omnitrace`: one crate that every
//! layer (fabric, hip, collectives, bench) reports into, producing
//!
//! - a **metrics registry** ([`MetricsRegistry`]) of counters, gauges, and
//!   log-bucketed [`Histogram`]s with p50/p95/p99 quantiles, keyed by metric
//!   name + label set;
//! - a **merged event timeline** ([`EventSink`]) of spans and instants from
//!   any number of sources, ordered deterministically by timestamp;
//! - a **Chrome trace-event JSON** exporter ([`chrome`]) whose output loads
//!   directly in Perfetto or `chrome://tracing`;
//! - a per-link **utilization heatmap** renderer ([`heatmap`]);
//! - a **bottleneck attribution report** ([`attribution`]) answering which
//!   links bound an experiment and for how long, plus a long-format CSV of
//!   the flight recorder's counter tracks;
//! - a thread-local **collector stack** ([`collector`]) so simulator
//!   instances created deep inside experiment code can contribute their
//!   telemetry without any configuration threading;
//! - a **Prometheus text exposition** renderer ([`prom`]) backing the
//!   serve daemon's `/metrics` endpoint, with trace-id exemplars;
//! - a bounded **snapshot time-series ring** ([`timeseries`]) backing the
//!   live dashboard's backfill-and-stream event feed.
//!
//! Metric names and label conventions are documented in
//! `docs/OBSERVABILITY.md` at the repository root.

pub mod attribution;
pub mod chrome;
pub mod collector;
pub mod critpath;
pub mod event;
pub mod heatmap;
pub mod hist;
pub mod metrics;
pub mod prom;
pub mod timeseries;

pub use attribution::{attribution_json, render_attribution, timeseries_csv};
pub use collector::{CollectedTelemetry, Collector, SimTelemetry};
pub use critpath::{critpath_json, render_critpath, CritPathReport, DepGraph};
pub use event::{EventKind, EventSink, TimelineEvent};
pub use heatmap::{render_heatmap, UtilRow};
pub use hist::Histogram;
pub use metrics::{Exemplar, MetricKey, MetricsRegistry};
pub use prom::render_prometheus;
pub use timeseries::SnapshotRing;

// The vendored JSON shim, re-exported so downstream crates can parse the
// exported artifacts without declaring their own dependency.
pub use serde_json as json;
