//! The metrics registry: counters, gauges, and histograms keyed by
//! name + label set.
//!
//! Keys follow the Prometheus convention rendered as
//! `name{label="value",...}` with labels sorted, so a key's text form is
//! canonical and registries merge deterministically.

use crate::hist::Histogram;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A metric identity: static-ish name plus a (sorted) label set.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key with no labels.
    pub fn new(name: impl Into<String>) -> MetricKey {
        MetricKey {
            name: name.into(),
            labels: Vec::new(),
        }
    }

    /// Add (or replace) one label, keeping the set sorted.
    pub fn with(mut self, label: impl Into<String>, value: impl Into<String>) -> MetricKey {
        let label = label.into();
        let value = value.into();
        match self.labels.binary_search_by(|(k, _)| k.cmp(&label)) {
            Ok(i) => self.labels[i].1 = value,
            Err(i) => self.labels.insert(i, (label, value)),
        }
        self
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sorted label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// One exemplar: a recorded histogram sample annotated with the trace id
/// of the request that produced it, so a latency bucket in a Prometheus
/// exposition links back to a concrete, traceable request.
#[derive(Clone, Debug, PartialEq)]
pub struct Exemplar {
    /// The observed value (same unit as the histogram's samples).
    pub value: f64,
    /// The request-scoped trace id that produced it.
    pub trace_id: String,
}

/// Recent exemplars kept per histogram key. Small on purpose: one per
/// scrape-visible bucket is plenty, and stale ones age out by ring
/// replacement.
const EXEMPLARS_PER_KEY: usize = 16;

/// A set of counters, gauges, and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, f64>,
    gauges: BTreeMap<MetricKey, f64>,
    hists: BTreeMap<MetricKey, Histogram>,
    /// Recent exemplars per histogram key, oldest first.
    exemplars: BTreeMap<MetricKey, Vec<Exemplar>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `v` to a monotonically growing counter.
    pub fn counter_add(&mut self, key: MetricKey, v: f64) {
        *self.counters.entry(key).or_insert(0.0) += v;
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, key: MetricKey, v: f64) {
        self.gauges.insert(key, v);
    }

    /// Record one histogram sample.
    pub fn observe(&mut self, key: MetricKey, v: f64) {
        self.hists.entry(key).or_default().record(v);
    }

    /// Record one histogram sample carrying a trace-id exemplar. The
    /// sample lands in the histogram exactly as [`MetricsRegistry::observe`]
    /// would place it; the exemplar rides alongside in a small per-key
    /// ring and surfaces in the Prometheus exposition
    /// ([`crate::prom::render_prometheus`]).
    pub fn observe_with_exemplar(&mut self, key: MetricKey, v: f64, trace_id: impl Into<String>) {
        self.hists.entry(key.clone()).or_default().record(v);
        let ring = self.exemplars.entry(key).or_default();
        if ring.len() == EXEMPLARS_PER_KEY {
            ring.remove(0);
        }
        ring.push(Exemplar {
            value: v,
            trace_id: trace_id.into(),
        });
    }

    /// Recent exemplars recorded for a histogram key, oldest first.
    pub fn exemplars(&self, key: &MetricKey) -> &[Exemplar] {
        self.exemplars.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, key: &MetricKey) -> f64 {
        self.counters.get(key).copied().unwrap_or(0.0)
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, key: &MetricKey) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// A histogram by key, if any sample was recorded.
    pub fn histogram(&self, key: &MetricKey) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.hists.iter()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Fold `other` into this registry: counters add, gauges take the
    /// incoming value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.counter_add(k.clone(), v);
        }
        for (k, &v) in &other.gauges {
            self.gauge_set(k.clone(), v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
        for (k, incoming) in &other.exemplars {
            let ring = self.exemplars.entry(k.clone()).or_default();
            ring.extend(incoming.iter().cloned());
            if ring.len() > EXEMPLARS_PER_KEY {
                ring.drain(..ring.len() - EXEMPLARS_PER_KEY);
            }
        }
    }

    /// The snapshot as a JSON value: `counters` / `gauges` / `histograms`
    /// arrays, histograms carrying count/sum/min/max/mean/p50/p95/p99.
    pub fn to_json(&self) -> Value {
        let entry = |key: &MetricKey| {
            let mut labels = Map::new();
            for (k, v) in key.labels() {
                labels.insert(k.clone(), Value::from(v.clone()));
            }
            let mut m = Map::new();
            m.insert("name", Value::from(key.name()));
            m.insert("labels", Value::Object(labels));
            m
        };
        let scalars = |items: &BTreeMap<MetricKey, f64>| {
            Value::Array(
                items
                    .iter()
                    .map(|(k, &v)| {
                        let mut m = entry(k);
                        m.insert("value", Value::from(v));
                        Value::Object(m)
                    })
                    .collect(),
            )
        };
        let hists = Value::Array(
            self.hists
                .iter()
                .map(|(k, h)| {
                    let mut m = entry(k);
                    m.insert("count", Value::from(h.count()));
                    m.insert("sum", Value::from(h.sum()));
                    m.insert("min", Value::from(h.min()));
                    m.insert("max", Value::from(h.max()));
                    m.insert("mean", Value::from(h.mean()));
                    m.insert("p50", Value::from(h.p50()));
                    m.insert("p95", Value::from(h.p95()));
                    m.insert("p99", Value::from(h.p99()));
                    Value::Object(m)
                })
                .collect(),
        );
        let mut root = Map::new();
        root.insert("counters", scalars(&self.counters));
        root.insert("gauges", scalars(&self.gauges));
        root.insert("histograms", hists);
        Value::Object(root)
    }

    /// Render a plain-text snapshot (debugging, example output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge   {k} = {v}");
        }
        for (k, h) in &self.hists {
            let _ = writeln!(
                out,
                "hist    {k}: n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_and_render_canonically() {
        let k = MetricKey::new("fabric_link_wire_bytes")
            .with("dir", "fwd")
            .with("link", "Gcd(0)->Gcd(1)");
        let k2 = MetricKey::new("fabric_link_wire_bytes")
            .with("link", "Gcd(0)->Gcd(1)")
            .with("dir", "fwd");
        assert_eq!(k, k2);
        assert_eq!(
            k.to_string(),
            "fabric_link_wire_bytes{dir=\"fwd\",link=\"Gcd(0)->Gcd(1)\"}"
        );
        // Replacing an existing label keeps one entry.
        let k3 = k.with("dir", "bwd");
        assert_eq!(k3.labels().len(), 2);
        assert_eq!(k3.labels()[0].1, "bwd");
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        let k = MetricKey::new("ops");
        r.counter_add(k.clone(), 2.0);
        r.counter_add(k.clone(), 3.0);
        assert_eq!(r.counter(&k), 5.0);
        let g = MetricKey::new("active");
        r.gauge_set(g.clone(), 7.0);
        r.gauge_set(g.clone(), 4.0);
        assert_eq!(r.gauge(&g), Some(4.0));
        assert_eq!(r.counter(&MetricKey::new("missing")), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let k = MetricKey::new("bytes");
        a.counter_add(k.clone(), 10.0);
        b.counter_add(k.clone(), 5.0);
        let h = MetricKey::new("lat");
        a.observe(h.clone(), 1.0);
        b.observe(h.clone(), 3.0);
        a.merge(&b);
        assert_eq!(a.counter(&k), 15.0);
        assert_eq!(a.histogram(&h).unwrap().count(), 2);
    }

    #[test]
    fn json_snapshot_has_percentile_fields() {
        let mut r = MetricsRegistry::new();
        r.counter_add(MetricKey::new("n").with("op", "memcpy"), 1.0);
        r.observe(MetricKey::new("lat"), 5.0);
        let v = r.to_json();
        let text = serde_json::to_string(&v);
        let back = serde_json::from_str(&text).unwrap();
        let hist = &back.get("histograms").unwrap().as_array().unwrap()[0];
        for field in ["count", "sum", "min", "max", "mean", "p50", "p95", "p99"] {
            assert!(hist.get(field).is_some(), "missing {field}");
        }
        let counter = &back.get("counters").unwrap().as_array().unwrap()[0];
        assert_eq!(
            counter.get("labels").unwrap().get("op").unwrap().as_str(),
            Some("memcpy")
        );
    }

    #[test]
    fn exemplars_ride_alongside_histograms_and_stay_bounded() {
        let mut r = MetricsRegistry::new();
        let k = MetricKey::new("lat").with("op", "run");
        for i in 0..40 {
            r.observe_with_exemplar(k.clone(), (i + 1) as f64, format!("t-{i:04x}"));
        }
        assert_eq!(r.histogram(&k).unwrap().count(), 40);
        let ex = r.exemplars(&k);
        assert_eq!(ex.len(), EXEMPLARS_PER_KEY, "ring stays bounded");
        assert_eq!(ex.last().unwrap().trace_id, "t-0027", "latest kept");
        assert!(r.exemplars(&MetricKey::new("missing")).is_empty());
        // Merge folds exemplar rings, newest retained.
        let mut other = MetricsRegistry::new();
        other.observe_with_exemplar(k.clone(), 99.0, "t-merged");
        r.merge(&other);
        assert_eq!(r.exemplars(&k).last().unwrap().trace_id, "t-merged");
        assert!(r.exemplars(&k).len() <= EXEMPLARS_PER_KEY);
    }

    #[test]
    fn text_rendering_lists_every_kind() {
        let mut r = MetricsRegistry::new();
        r.counter_add(MetricKey::new("c"), 1.0);
        r.gauge_set(MetricKey::new("g"), 2.0);
        r.observe(MetricKey::new("h"), 3.0);
        let text = r.render_text();
        assert!(text.contains("counter c"));
        assert!(text.contains("gauge   g"));
        assert!(text.contains("hist    h"));
        assert!(!r.is_empty());
        assert!(MetricsRegistry::new().is_empty());
    }
}
