//! Allocation kinds and attribute flags, mirroring the paper's Table I.

use std::fmt;

/// Flags accepted by the simulated `hipHostMalloc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct HostAllocFlags {
    /// `hipHostMallocCoherent` / default: GPU accesses bypass GPU caches and
    /// are immediately visible to the CPU. `hipHostMallocNonCoherent`
    /// disables this, permitting GPU-side caching but requiring explicit
    /// synchronization. In HIP, host-pinned memory is coherent by default
    /// (paper §II-C); the flag mirrors that.
    pub non_coherent: bool,
    /// `hipHostMallocNumaUser`: honour the caller's NUMA placement instead
    /// of allocating on the domain closest to the active GPU (paper §IV-B).
    pub numa_user: bool,
}

impl HostAllocFlags {
    /// The default (coherent, GPU-affine placement) flag set.
    pub fn coherent() -> Self {
        HostAllocFlags::default()
    }

    /// `hipHostMallocNonCoherent`.
    pub fn non_coherent() -> Self {
        HostAllocFlags {
            non_coherent: true,
            ..Default::default()
        }
    }

    /// Add `hipHostMallocNumaUser`.
    pub fn with_numa_user(mut self) -> Self {
        self.numa_user = true;
        self
    }
}

/// What an allocation *is*, which determines who can touch it and how data
/// moves (paper Table I).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// `hipMalloc`: device HBM. GPU-local; peers need
    /// `hipDeviceEnablePeerAccess`; host moves data with `hipMemcpy`.
    Device,
    /// `hipHostMalloc`: page-locked host memory, GPU-mapped. Zero-copy
    /// GPU access allowed; coherence per the flags.
    HostPinned(HostAllocFlags),
    /// `malloc`: pageable host memory. GPUs cannot map it; `hipMemcpy`
    /// stages through a pinned bounce buffer. Accessing it from a kernel
    /// without XNACK is a fault.
    HostPageable,
    /// `hipMallocManaged`: unified memory. One virtual address valid
    /// everywhere; per-page residency. With XNACK enabled, GPU accesses to
    /// non-resident pages fault-and-migrate; with XNACK disabled, GPU
    /// accesses go zero-copy over the fabric.
    Managed,
}

impl MemKind {
    /// Whether GPU-side caching is disabled for this memory (coherent
    /// host-visible memory on MI250X; paper §II-C).
    pub fn gpu_uncached(self) -> bool {
        match self {
            MemKind::Device => false,
            MemKind::HostPinned(f) => !f.non_coherent,
            MemKind::HostPageable => false,
            MemKind::Managed => true,
        }
    }

    /// Whether the allocation is host-resident at creation.
    pub fn host_resident(self) -> bool {
        matches!(
            self,
            MemKind::HostPinned(_) | MemKind::HostPageable | MemKind::Managed
        )
    }

    /// Whether the allocation is mapped into GPU address spaces without
    /// explicit action (zero-copy capable).
    pub fn gpu_mapped(self) -> bool {
        matches!(
            self,
            MemKind::Device | MemKind::HostPinned(_) | MemKind::Managed
        )
    }
}

impl fmt::Debug for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Device => write!(f, "device"),
            MemKind::HostPinned(fl) if fl.non_coherent => write!(f, "pinned(non-coherent)"),
            MemKind::HostPinned(_) => write!(f, "pinned(coherent)"),
            MemKind::HostPageable => write!(f, "pageable"),
            MemKind::Managed => write!(f, "managed"),
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_is_coherent_by_default() {
        // Paper §II-C: "In HIP, by default, host-pinned memory is marked as
        // coherent" — and coherent memory disables GPU caching.
        assert!(MemKind::HostPinned(HostAllocFlags::coherent()).gpu_uncached());
        assert!(!MemKind::HostPinned(HostAllocFlags::non_coherent()).gpu_uncached());
    }

    #[test]
    fn managed_memory_is_coherent() {
        assert!(MemKind::Managed.gpu_uncached());
    }

    #[test]
    fn device_memory_is_cached() {
        assert!(!MemKind::Device.gpu_uncached());
    }

    #[test]
    fn residency_and_mapping_follow_table1() {
        assert!(!MemKind::Device.host_resident());
        assert!(MemKind::Device.gpu_mapped());
        assert!(MemKind::HostPageable.host_resident());
        assert!(!MemKind::HostPageable.gpu_mapped());
        assert!(MemKind::Managed.host_resident());
        assert!(MemKind::Managed.gpu_mapped());
        assert!(MemKind::HostPinned(HostAllocFlags::coherent()).gpu_mapped());
    }

    #[test]
    fn numa_user_flag_composes() {
        let f = HostAllocFlags::non_coherent().with_numa_user();
        assert!(f.non_coherent && f.numa_user);
    }

    #[test]
    fn debug_formatting_distinguishes_kinds() {
        assert_eq!(format!("{}", MemKind::Device), "device");
        assert_eq!(
            format!("{}", MemKind::HostPinned(HostAllocFlags::non_coherent())),
            "pinned(non-coherent)"
        );
        assert_eq!(format!("{}", MemKind::Managed), "managed");
    }
}
