//! Per-page residency tracking for managed (unified) memory.
//!
//! `hipMallocManaged` memory has one virtual address range whose pages can
//! live in any physical space. With XNACK enabled, a GPU touching a
//! non-resident page faults and the driver migrates the whole page —
//! "independent of the size of the data being accessed" (paper §II-C).

use crate::space::MemSpace;

/// Residency of each page of a managed allocation.
#[derive(Clone, Debug)]
pub struct PageTable {
    page_size: u64,
    bytes: u64,
    residency: Vec<MemSpace>,
}

impl PageTable {
    /// A table for `bytes` of memory in pages of `page_size`, initially all
    /// resident in `home`.
    pub fn new(bytes: u64, page_size: u64, home: MemSpace) -> Self {
        assert!(page_size > 0, "zero page size");
        assert!(bytes > 0, "zero-length page table");
        let n_pages = bytes.div_ceil(page_size) as usize;
        PageTable {
            page_size,
            bytes,
            residency: vec![home; n_pages],
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.residency.len()
    }

    /// The page index covering byte `offset`.
    pub fn page_of(&self, offset: u64) -> usize {
        assert!(offset < self.bytes, "offset {offset} beyond {}", self.bytes);
        (offset / self.page_size) as usize
    }

    /// Page indices covering `[offset, offset + len)`.
    pub fn pages_in(&self, offset: u64, len: u64) -> std::ops::Range<usize> {
        assert!(len > 0, "empty range");
        assert!(
            offset + len <= self.bytes,
            "range {offset}+{len} beyond {}",
            self.bytes
        );
        let first = (offset / self.page_size) as usize;
        let last = ((offset + len - 1) / self.page_size) as usize;
        first..last + 1
    }

    /// Where a page currently lives.
    pub fn residency(&self, page: usize) -> MemSpace {
        self.residency[page]
    }

    /// Pages in the range *not* resident in `space` (the ones XNACK would
    /// fault on and migrate).
    pub fn non_resident_pages(&self, offset: u64, len: u64, space: MemSpace) -> usize {
        self.pages_in(offset, len)
            .filter(|&p| self.residency[p] != space)
            .count()
    }

    /// Migrate every page of the range to `space`; returns how many pages
    /// actually moved.
    pub fn migrate_range(&mut self, offset: u64, len: u64, space: MemSpace) -> usize {
        let mut moved = 0;
        for p in self.pages_in(offset, len) {
            if self.residency[p] != space {
                self.residency[p] = space;
                moved += 1;
            }
        }
        moved
    }

    /// Bytes resident in `space` across the whole allocation.
    pub fn resident_bytes(&self, space: MemSpace) -> u64 {
        let mut total = 0;
        for (p, r) in self.residency.iter().enumerate() {
            if *r == space {
                let start = p as u64 * self.page_size;
                let end = (start + self.page_size).min(self.bytes);
                total += end - start;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifsim_topology::{GcdId, NumaId};

    fn ddr() -> MemSpace {
        MemSpace::Ddr(NumaId(0))
    }
    fn hbm() -> MemSpace {
        MemSpace::Hbm(GcdId(0))
    }

    #[test]
    fn page_count_rounds_up() {
        let t = PageTable::new(10_000, 4096, ddr());
        assert_eq!(t.n_pages(), 3);
        assert_eq!(t.page_size(), 4096);
    }

    #[test]
    fn all_pages_start_at_home() {
        let t = PageTable::new(16 * 4096, 4096, ddr());
        for p in 0..t.n_pages() {
            assert_eq!(t.residency(p), ddr());
        }
        assert_eq!(t.resident_bytes(ddr()), 16 * 4096);
        assert_eq!(t.resident_bytes(hbm()), 0);
    }

    #[test]
    fn range_queries_cover_partial_pages() {
        let t = PageTable::new(4 * 4096, 4096, ddr());
        assert_eq!(t.pages_in(0, 1), 0..1);
        assert_eq!(t.pages_in(4095, 2), 0..2);
        assert_eq!(t.pages_in(4096, 4096), 1..2);
        assert_eq!(t.pages_in(0, 4 * 4096), 0..4);
        assert_eq!(t.page_of(8192), 2);
    }

    #[test]
    fn migration_moves_whole_pages_once() {
        let mut t = PageTable::new(4 * 4096, 4096, ddr());
        // Touch 100 bytes straddling pages 0-1: both pages migrate.
        assert_eq!(t.non_resident_pages(4090, 100, hbm()), 2);
        assert_eq!(t.migrate_range(4090, 100, hbm()), 2);
        assert_eq!(t.residency(0), hbm());
        assert_eq!(t.residency(1), hbm());
        assert_eq!(t.residency(2), ddr());
        // Second touch is free.
        assert_eq!(t.migrate_range(4090, 100, hbm()), 0);
        assert_eq!(t.non_resident_pages(4090, 100, hbm()), 0);
    }

    #[test]
    fn resident_bytes_accounts_for_tail_page() {
        let mut t = PageTable::new(4096 + 100, 4096, ddr());
        assert_eq!(t.migrate_range(4096, 50, hbm()), 1);
        assert_eq!(t.resident_bytes(hbm()), 100); // the 100-byte tail page
        assert_eq!(t.resident_bytes(ddr()), 4096);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn out_of_range_rejected() {
        let t = PageTable::new(4096, 4096, ddr());
        let _ = t.pages_in(4000, 200);
    }
}
