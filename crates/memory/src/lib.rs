#![warn(missing_docs)]

//! # ifsim-memory — the simulated memory subsystem
//!
//! Models the node's physical memory (eight 64 GiB HBM2e stacks, four DDR4
//! NUMA domains) and the allocation semantics HIP exposes over it
//! (paper Table I):
//!
//! | memory | allocation | movement | coherent |
//! |---|---|---|---|
//! | device | `hipMalloc` | explicit / zero-copy peer | no |
//! | pinned | `hipHostMalloc` (non-coherent flag) | explicit | no |
//! | pinned | `hipHostMalloc` (default) | zero-copy | yes |
//! | pageable | `malloc` | explicit (staged) | no |
//! | managed | `hipMallocManaged`, XNACK=0 | zero-copy | yes |
//! | managed | `hipMallocManaged`, XNACK=1 | page migration | yes |
//!
//! The subsystem is **functional**: every allocation can carry a real byte
//! buffer, so the runtime's copies and kernels actually move data and tests
//! can assert end-to-end correctness. Multi-gigabyte sweep allocations
//! switch to *phantom* backing (timing only) above a configurable threshold.

pub mod alloc;
pub mod attrs;
pub mod backing;
pub mod page;
pub mod space;

pub use alloc::{AllocError, Allocation, BufferId, MemorySystem};
pub use attrs::{HostAllocFlags, MemKind};
pub use backing::Backing;
pub use page::PageTable;
pub use space::MemSpace;
