//! The allocation table: every live buffer of the simulated node.

use crate::attrs::MemKind;
use crate::backing::Backing;
use crate::page::PageTable;
use crate::space::MemSpace;
use std::collections::BTreeMap;
use std::fmt;

/// Handle to a live allocation (the simulator's analogue of a raw pointer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u64);

impl fmt::Debug for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// Allocation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The target pool cannot fit the request.
    OutOfMemory {
        /// Pool that overflowed.
        space: MemSpace,
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        available: u64,
    },
    /// The buffer id is stale or was never issued.
    InvalidBuffer(BufferId),
    /// Zero-byte allocations are rejected (as `hipMalloc(&p, 0)` yields no
    /// usable buffer).
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                space,
                requested,
                available,
            } => write!(
                f,
                "out of memory in {space}: requested {requested} B, {available} B free"
            ),
            AllocError::InvalidBuffer(id) => write!(f, "invalid buffer {id:?}"),
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// One live allocation.
#[derive(Debug)]
pub struct Allocation {
    /// Handle.
    pub id: BufferId,
    /// Kind (Table I row).
    pub kind: MemKind,
    /// Physical home: where the bytes live (for managed memory, where pages
    /// *start* — see [`Allocation::pages`]).
    pub home: MemSpace,
    /// Size in bytes.
    pub bytes: u64,
    /// The data (real or phantom).
    pub backing: Backing,
    /// Per-page residency, for managed allocations only.
    pub pages: Option<PageTable>,
    /// `hipMemAdviseSetReadMostly`: the driver duplicates read-only pages
    /// into each reader's local memory, so managed reads run at HBM speed
    /// until the next write collapses the duplicates.
    pub read_mostly: bool,
}

impl Allocation {
    /// Current residency of the byte range, as the set of distinct spaces.
    /// Non-managed memory is wholly in `home`.
    pub fn is_fully_resident_in(&self, space: MemSpace, offset: u64, len: u64) -> bool {
        match &self.pages {
            None => self.home == space,
            Some(pt) => pt.non_resident_pages(offset, len, space) == 0,
        }
    }
}

/// Default size above which allocations become phantom (timing-only):
/// 256 MiB keeps functional tests real while the paper's multi-GiB sweeps
/// stay cheap.
pub const DEFAULT_PHANTOM_THRESHOLD: u64 = 256 * 1024 * 1024;

/// XNACK page-migration granularity used for managed allocations.
pub const MANAGED_PAGE_SIZE: u64 = 4096;

/// The node's allocation table and capacity accounting.
pub struct MemorySystem {
    allocs: Vec<Option<Allocation>>,
    used: BTreeMap<MemSpace, u64>,
    phantom_threshold: u64,
    managed_page_size: u64,
}

impl MemorySystem {
    /// An empty memory system with default thresholds.
    pub fn new() -> Self {
        MemorySystem {
            allocs: Vec::new(),
            used: BTreeMap::new(),
            phantom_threshold: DEFAULT_PHANTOM_THRESHOLD,
            managed_page_size: MANAGED_PAGE_SIZE,
        }
    }

    /// Override the real-vs-phantom threshold (tests force both ways).
    pub fn set_phantom_threshold(&mut self, bytes: u64) {
        self.phantom_threshold = bytes;
    }

    /// Override the managed page size (the 2 MiB-page ablation uses this).
    pub fn set_managed_page_size(&mut self, bytes: u64) {
        assert!(bytes > 0);
        self.managed_page_size = bytes;
    }

    /// The managed page size in effect.
    pub fn managed_page_size(&self) -> u64 {
        self.managed_page_size
    }

    /// Allocate `bytes` of `kind` memory homed in `space`.
    pub fn allocate(
        &mut self,
        kind: MemKind,
        space: MemSpace,
        bytes: u64,
    ) -> Result<BufferId, AllocError> {
        if bytes == 0 {
            return Err(AllocError::ZeroSize);
        }
        let used = self.used.entry(space).or_insert(0);
        let available = space.capacity().saturating_sub(*used);
        if bytes > available {
            return Err(AllocError::OutOfMemory {
                space,
                requested: bytes,
                available,
            });
        }
        *used += bytes;
        let id = BufferId(self.allocs.len() as u64);
        let backing = if bytes > self.phantom_threshold {
            Backing::phantom(bytes)
        } else {
            Backing::real(bytes)
        };
        let pages = match kind {
            MemKind::Managed => Some(PageTable::new(bytes, self.managed_page_size, space)),
            _ => None,
        };
        self.allocs.push(Some(Allocation {
            id,
            kind,
            home: space,
            bytes,
            backing,
            pages,
            read_mostly: false,
        }));
        Ok(id)
    }

    /// Free an allocation.
    pub fn free(&mut self, id: BufferId) -> Result<(), AllocError> {
        let slot = self
            .allocs
            .get_mut(id.0 as usize)
            .ok_or(AllocError::InvalidBuffer(id))?;
        let alloc = slot.take().ok_or(AllocError::InvalidBuffer(id))?;
        *self.used.get_mut(&alloc.home).expect("space was charged") -= alloc.bytes;
        Ok(())
    }

    /// Look up a live allocation.
    pub fn get(&self, id: BufferId) -> Result<&Allocation, AllocError> {
        self.allocs
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(AllocError::InvalidBuffer(id))
    }

    /// Look up a live allocation mutably.
    pub fn get_mut(&mut self, id: BufferId) -> Result<&mut Allocation, AllocError> {
        self.allocs
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(AllocError::InvalidBuffer(id))
    }

    /// Bytes currently allocated in a space.
    pub fn used(&self, space: MemSpace) -> u64 {
        self.used.get(&space).copied().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocs.iter().filter(|s| s.is_some()).count()
    }

    /// Copy bytes between two (distinct or identical) buffers. Returns
    /// whether real bytes moved (`false` when a phantom endpoint made it a
    /// timing-only copy). Bounds are always checked.
    pub fn copy(
        &mut self,
        src: BufferId,
        src_off: u64,
        dst: BufferId,
        dst_off: u64,
        len: u64,
    ) -> Result<bool, AllocError> {
        if len == 0 {
            // Still validate the handles.
            self.get(src)?;
            self.get(dst)?;
            return Ok(true);
        }
        if src == dst {
            let a = self.get_mut(src)?;
            assert!(src_off + len <= a.bytes && dst_off + len <= a.bytes);
            let moved = match a.backing.bytes_mut() {
                Some(b) => {
                    b.copy_within(src_off as usize..(src_off + len) as usize, dst_off as usize);
                    true
                }
                None => false,
            };
            return Ok(moved);
        }
        // Split-borrow two distinct slots.
        let (si, di) = (src.0 as usize, dst.0 as usize);
        if si.max(di) >= self.allocs.len() {
            return Err(AllocError::InvalidBuffer(if si >= self.allocs.len() {
                src
            } else {
                dst
            }));
        }
        let (lo, hi) = self.allocs.split_at_mut(si.max(di));
        let (first, second) = (&mut lo[si.min(di)], &mut hi[0]);
        let (s_ref, d_ref) = if si < di {
            (first, second)
        } else {
            (second, first)
        };
        let s = s_ref.as_ref().ok_or(AllocError::InvalidBuffer(src))?;
        let d = d_ref.as_mut().ok_or(AllocError::InvalidBuffer(dst))?;
        Ok(Backing::copy(
            &s.backing,
            src_off,
            &mut d.backing,
            dst_off,
            len,
        ))
    }

    /// Write raw bytes into a buffer (host-side initialization). Phantom
    /// buffers accept and discard the write, returning `false`.
    pub fn write_bytes(
        &mut self,
        id: BufferId,
        offset: u64,
        data: &[u8],
    ) -> Result<bool, AllocError> {
        let a = self.get_mut(id)?;
        assert!(
            offset + data.len() as u64 <= a.bytes,
            "write beyond buffer end"
        );
        match a.backing.bytes_mut() {
            Some(b) => {
                b[offset as usize..offset as usize + data.len()].copy_from_slice(data);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Read raw bytes from a buffer; `None` if the backing is phantom.
    pub fn read_bytes(
        &self,
        id: BufferId,
        offset: u64,
        len: u64,
    ) -> Result<Option<Vec<u8>>, AllocError> {
        let a = self.get(id)?;
        assert!(offset + len <= a.bytes, "read beyond buffer end");
        Ok(a.backing
            .bytes()
            .map(|b| b[offset as usize..(offset + len) as usize].to_vec()))
    }

    /// Write a slice of `f32`s (little-endian) — the element type of the
    /// STREAM kernels and collectives.
    pub fn write_f32s(
        &mut self,
        id: BufferId,
        offset: u64,
        data: &[f32],
    ) -> Result<bool, AllocError> {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(id, offset, &bytes)
    }

    /// Read a slice of `f32`s; `None` for phantom backing.
    pub fn read_f32s(
        &self,
        id: BufferId,
        offset: u64,
        count: usize,
    ) -> Result<Option<Vec<f32>>, AllocError> {
        Ok(self.read_bytes(id, offset, count as u64 * 4)?.map(|b| {
            b.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        }))
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::HostAllocFlags;
    use ifsim_topology::{GcdId, NumaId};

    fn hbm(g: u8) -> MemSpace {
        MemSpace::Hbm(GcdId(g))
    }
    fn ddr(n: u8) -> MemSpace {
        MemSpace::Ddr(NumaId(n))
    }

    #[test]
    fn allocate_and_free_tracks_usage() {
        let mut m = MemorySystem::new();
        let id = m.allocate(MemKind::Device, hbm(0), 1024).unwrap();
        assert_eq!(m.used(hbm(0)), 1024);
        assert_eq!(m.live_allocations(), 1);
        m.free(id).unwrap();
        assert_eq!(m.used(hbm(0)), 0);
        assert_eq!(m.live_allocations(), 0);
        assert_eq!(m.get(id).unwrap_err(), AllocError::InvalidBuffer(id));
    }

    #[test]
    fn oom_when_pool_exhausted() {
        let mut m = MemorySystem::new();
        m.set_phantom_threshold(0); // keep the big allocation phantom
        let cap = hbm(0).capacity();
        let _ = m.allocate(MemKind::Device, hbm(0), cap).unwrap();
        let err = m.allocate(MemKind::Device, hbm(0), 1).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { available: 0, .. }));
        // Other pools unaffected.
        assert!(m.allocate(MemKind::Device, hbm(1), 1024).is_ok());
    }

    #[test]
    fn zero_size_rejected() {
        let mut m = MemorySystem::new();
        assert_eq!(
            m.allocate(MemKind::Device, hbm(0), 0).unwrap_err(),
            AllocError::ZeroSize
        );
    }

    #[test]
    fn double_free_rejected() {
        let mut m = MemorySystem::new();
        let id = m.allocate(MemKind::Device, hbm(0), 64).unwrap();
        m.free(id).unwrap();
        assert_eq!(m.free(id).unwrap_err(), AllocError::InvalidBuffer(id));
    }

    #[test]
    fn large_allocations_become_phantom() {
        let mut m = MemorySystem::new();
        m.set_phantom_threshold(1024);
        let small = m.allocate(MemKind::Device, hbm(0), 1024).unwrap();
        let big = m.allocate(MemKind::Device, hbm(0), 1025).unwrap();
        assert!(m.get(small).unwrap().backing.is_real());
        assert!(!m.get(big).unwrap().backing.is_real());
    }

    #[test]
    fn managed_allocations_get_page_tables() {
        let mut m = MemorySystem::new();
        let id = m.allocate(MemKind::Managed, ddr(0), 10_000).unwrap();
        let a = m.get(id).unwrap();
        let pt = a.pages.as_ref().expect("managed has pages");
        assert_eq!(pt.n_pages(), 3);
        assert!(a.is_fully_resident_in(ddr(0), 0, 10_000));
        assert!(!a.is_fully_resident_in(hbm(0), 0, 10_000));
        // Non-managed: residency is just the home.
        let dev = m.allocate(MemKind::Device, hbm(0), 64).unwrap();
        assert!(m.get(dev).unwrap().pages.is_none());
        assert!(m.get(dev).unwrap().is_fully_resident_in(hbm(0), 0, 64));
    }

    #[test]
    fn copy_between_buffers_moves_data() {
        let mut m = MemorySystem::new();
        let a = m
            .allocate(MemKind::HostPinned(HostAllocFlags::coherent()), ddr(0), 16)
            .unwrap();
        let b = m.allocate(MemKind::Device, hbm(0), 16).unwrap();
        m.write_bytes(a, 0, &[9u8; 16]).unwrap();
        assert!(m.copy(a, 4, b, 8, 8).unwrap());
        let out = m.read_bytes(b, 0, 16).unwrap().unwrap();
        assert_eq!(&out[..8], &[0u8; 8]);
        assert_eq!(&out[8..], &[9u8; 8]);
    }

    #[test]
    fn copy_same_buffer_uses_copy_within() {
        let mut m = MemorySystem::new();
        let a = m.allocate(MemKind::Device, hbm(0), 8).unwrap();
        m.write_bytes(a, 0, &[1, 2, 3, 4, 0, 0, 0, 0]).unwrap();
        assert!(m.copy(a, 0, a, 4, 4).unwrap());
        assert_eq!(
            m.read_bytes(a, 0, 8).unwrap().unwrap(),
            vec![1, 2, 3, 4, 1, 2, 3, 4]
        );
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = MemorySystem::new();
        let a = m.allocate(MemKind::Device, hbm(0), 16).unwrap();
        m.write_f32s(a, 0, &[1.0, -2.5, 3.25, 0.0]).unwrap();
        assert_eq!(
            m.read_f32s(a, 0, 4).unwrap().unwrap(),
            vec![1.0, -2.5, 3.25, 0.0]
        );
    }

    #[test]
    fn phantom_copy_reports_no_data_motion() {
        let mut m = MemorySystem::new();
        m.set_phantom_threshold(8);
        let a = m.allocate(MemKind::Device, hbm(0), 64).unwrap();
        let b = m.allocate(MemKind::Device, hbm(1), 64).unwrap();
        assert!(!m.copy(a, 0, b, 0, 64).unwrap());
        assert_eq!(m.read_bytes(b, 0, 4).unwrap(), None);
    }

    #[test]
    fn zero_length_copy_validates_handles() {
        let mut m = MemorySystem::new();
        let a = m.allocate(MemKind::Device, hbm(0), 8).unwrap();
        assert!(m.copy(a, 0, a, 0, 0).unwrap());
        assert!(matches!(
            m.copy(a, 0, BufferId(99), 0, 0),
            Err(AllocError::InvalidBuffer(_))
        ));
    }
}
