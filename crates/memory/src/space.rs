//! Physical memory spaces and their capacities.

use ifsim_des::units::GIB;
use ifsim_topology::{GcdId, NumaId, PortId};
use std::fmt;

/// A physical memory pool of the node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// One GCD's HBM2e stack (64 GiB, 1.6 TB/s class).
    Hbm(GcdId),
    /// One CPU NUMA domain's DDR4 (128 GiB of the node's 512 GiB).
    Ddr(NumaId),
}

/// HBM capacity per GCD (paper §II: 64 GB per GCD).
pub const HBM_CAPACITY: u64 = 64 * GIB;

/// DDR capacity per NUMA domain (512 GB across four domains).
pub const DDR_CAPACITY_PER_NUMA: u64 = 128 * GIB;

impl MemSpace {
    /// Pool capacity in bytes.
    pub fn capacity(self) -> u64 {
        match self {
            MemSpace::Hbm(_) => HBM_CAPACITY,
            MemSpace::Ddr(_) => DDR_CAPACITY_PER_NUMA,
        }
    }

    /// The fabric port this memory hangs off.
    pub fn port(self) -> PortId {
        match self {
            MemSpace::Hbm(g) => PortId::Gcd(g),
            MemSpace::Ddr(n) => PortId::Numa(n),
        }
    }

    /// Whether this is GPU-local memory.
    pub fn is_hbm(self) -> bool {
        matches!(self, MemSpace::Hbm(_))
    }

    /// Whether this is CPU memory.
    pub fn is_ddr(self) -> bool {
        matches!(self, MemSpace::Ddr(_))
    }

    /// The owning GCD, for HBM.
    pub fn gcd(self) -> Option<GcdId> {
        match self {
            MemSpace::Hbm(g) => Some(g),
            MemSpace::Ddr(_) => None,
        }
    }

    /// The owning NUMA domain, for DDR.
    pub fn numa(self) -> Option<NumaId> {
        match self {
            MemSpace::Ddr(n) => Some(n),
            MemSpace::Hbm(_) => None,
        }
    }
}

impl fmt::Debug for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Hbm(g) => write!(f, "HBM[{g}]"),
            MemSpace::Ddr(n) => write!(f, "DDR[{n}]"),
        }
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_the_node_spec() {
        assert_eq!(MemSpace::Hbm(GcdId(0)).capacity(), 64 * GIB);
        assert_eq!(MemSpace::Ddr(NumaId(0)).capacity(), 128 * GIB);
        // Node totals: 8 × 64 GiB HBM, 4 × 128 GiB = 512 GiB DDR.
        assert_eq!(4 * DDR_CAPACITY_PER_NUMA, 512 * GIB);
    }

    #[test]
    fn ports_match_spaces() {
        assert_eq!(MemSpace::Hbm(GcdId(3)).port(), PortId::Gcd(GcdId(3)));
        assert_eq!(MemSpace::Ddr(NumaId(1)).port(), PortId::Numa(NumaId(1)));
    }

    #[test]
    fn kind_predicates() {
        let h = MemSpace::Hbm(GcdId(2));
        let d = MemSpace::Ddr(NumaId(2));
        assert!(h.is_hbm() && !h.is_ddr());
        assert!(d.is_ddr() && !d.is_hbm());
        assert_eq!(h.gcd(), Some(GcdId(2)));
        assert_eq!(h.numa(), None);
        assert_eq!(d.numa(), Some(NumaId(2)));
        assert_eq!(d.gcd(), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(format!("{}", MemSpace::Hbm(GcdId(4))), "HBM[GCD4]");
        assert_eq!(format!("{}", MemSpace::Ddr(NumaId(0))), "DDR[NUMA0]");
    }
}
