//! Byte backing for allocations.
//!
//! `Real` backing holds actual bytes so the simulator is functional — copies
//! copy, kernels compute, collectives reduce, and tests can verify results.
//! `Phantom` backing tracks only the size, letting timing sweeps allocate
//! the paper's 8 GiB arrays without consuming host RAM.

/// The bytes (or absence thereof) behind an allocation.
pub enum Backing {
    /// Actual data.
    Real(Box<[u8]>),
    /// Size-only: reads/writes are rejected, timing still works.
    Phantom(u64),
}

impl Backing {
    /// Allocate a zero-filled real backing.
    pub fn real(bytes: u64) -> Backing {
        Backing::Real(vec![0u8; bytes as usize].into_boxed_slice())
    }

    /// A phantom backing of the given size.
    pub fn phantom(bytes: u64) -> Backing {
        Backing::Phantom(bytes)
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Backing::Real(b) => b.len() as u64,
            Backing::Phantom(n) => *n,
        }
    }

    /// Whether the backing is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether real bytes are present.
    pub fn is_real(&self) -> bool {
        matches!(self, Backing::Real(_))
    }

    /// Immutable view of the bytes, if real.
    pub fn bytes(&self) -> Option<&[u8]> {
        match self {
            Backing::Real(b) => Some(b),
            Backing::Phantom(_) => None,
        }
    }

    /// Mutable view of the bytes, if real.
    pub fn bytes_mut(&mut self) -> Option<&mut [u8]> {
        match self {
            Backing::Real(b) => Some(b),
            Backing::Phantom(_) => None,
        }
    }

    /// Copy `len` bytes between two backings. Phantom endpoints make the
    /// copy a timing-only no-op (returns `false`); bounds are checked either
    /// way so harness bugs surface even in phantom sweeps.
    pub fn copy(src: &Backing, src_off: u64, dst: &mut Backing, dst_off: u64, len: u64) -> bool {
        assert!(
            src_off + len <= src.len(),
            "source range {src_off}+{len} exceeds {}",
            src.len()
        );
        assert!(
            dst_off + len <= dst.len(),
            "destination range {dst_off}+{len} exceeds {}",
            dst.len()
        );
        match (src.bytes(), dst.bytes_mut()) {
            (Some(s), Some(d)) => {
                d[dst_off as usize..(dst_off + len) as usize]
                    .copy_from_slice(&s[src_off as usize..(src_off + len) as usize]);
                true
            }
            _ => false,
        }
    }
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Real(b) => write!(f, "Real({} B)", b.len()),
            Backing::Phantom(n) => write!(f, "Phantom({n} B)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_backing_starts_zeroed() {
        let b = Backing::real(16);
        assert_eq!(b.len(), 16);
        assert!(b.is_real());
        assert!(b.bytes().unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    fn phantom_backing_has_size_but_no_bytes() {
        let b = Backing::phantom(1 << 33); // 8 GiB, no RAM consumed
        assert_eq!(b.len(), 1 << 33);
        assert!(!b.is_real());
        assert!(b.bytes().is_none());
    }

    #[test]
    fn copy_moves_bytes_between_real_backings() {
        let mut src = Backing::real(8);
        src.bytes_mut()
            .unwrap()
            .copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut dst = Backing::real(8);
        assert!(Backing::copy(&src, 2, &mut dst, 4, 3));
        assert_eq!(dst.bytes().unwrap(), &[0, 0, 0, 0, 3, 4, 5, 0]);
    }

    #[test]
    fn copy_with_phantom_endpoint_is_a_checked_noop() {
        let src = Backing::real(8);
        let mut dst = Backing::phantom(8);
        assert!(!Backing::copy(&src, 0, &mut dst, 0, 8));
    }

    #[test]
    #[should_panic(expected = "destination range")]
    fn copy_bounds_checked_even_for_phantom() {
        let src = Backing::phantom(8);
        let mut dst = Backing::phantom(8);
        Backing::copy(&src, 0, &mut dst, 4, 8);
    }

    #[test]
    fn empty_detection() {
        assert!(Backing::phantom(0).is_empty());
        assert!(!Backing::real(1).is_empty());
    }
}
