//! Property tests for the memory subsystem: accounting, data integrity,
//! and page-table invariants under randomized operation sequences.

use ifsim_memory::{BufferId, MemKind, MemSpace, MemorySystem};
use ifsim_topology::{GcdId, NumaId};
use proptest::prelude::*;

fn arb_space() -> impl Strategy<Value = MemSpace> {
    prop_oneof![
        (0u8..8).prop_map(|g| MemSpace::Hbm(GcdId(g))),
        (0u8..4).prop_map(|n| MemSpace::Ddr(NumaId(n))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Usage accounting balances to zero after any alloc/free sequence, and
    /// never exceeds capacity.
    #[test]
    fn accounting_balances(ops in proptest::collection::vec((any::<bool>(), arb_space(), 1u64..1_000_000), 1..60)) {
        let mut m = MemorySystem::new();
        m.set_phantom_threshold(4096);
        let mut live: Vec<(BufferId, MemSpace, u64)> = Vec::new();
        let mut expected: std::collections::BTreeMap<MemSpace, u64> = Default::default();
        for (is_alloc, space, bytes) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(id) = m.allocate(MemKind::Device, space, bytes) {
                    live.push((id, space, bytes));
                    *expected.entry(space).or_default() += bytes;
                }
            } else {
                let (id, space, bytes) = live.swap_remove(live.len() / 2);
                m.free(id).unwrap();
                *expected.get_mut(&space).unwrap() -= bytes;
            }
            for (&s, &e) in &expected {
                prop_assert_eq!(m.used(s), e);
                prop_assert!(e <= s.capacity());
            }
        }
        for (id, space, bytes) in live.drain(..) {
            let before = m.used(space);
            m.free(id).unwrap();
            prop_assert_eq!(m.used(space), before - bytes);
        }
        prop_assert_eq!(m.live_allocations(), 0);
    }

    /// Copies between random buffers at random offsets preserve bytes
    /// exactly and never disturb bytes outside the destination range.
    #[test]
    fn copies_are_exact_and_contained(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        dst_size_extra in 0u64..64,
        dst_off in 0u64..32,
    ) {
        let mut m = MemorySystem::new();
        let len = payload.len() as u64;
        let dst_size = dst_off + len + dst_size_extra;
        let src = m.allocate(MemKind::Device, MemSpace::Hbm(GcdId(0)), len).unwrap();
        let dst = m.allocate(MemKind::Device, MemSpace::Hbm(GcdId(1)), dst_size).unwrap();
        m.write_bytes(src, 0, &payload).unwrap();
        m.write_bytes(dst, 0, &vec![0xAB; dst_size as usize]).unwrap();
        m.copy(src, 0, dst, dst_off, len).unwrap();
        let out = m.read_bytes(dst, 0, dst_size).unwrap().unwrap();
        prop_assert!(out[..dst_off as usize].iter().all(|&b| b == 0xAB), "prefix intact");
        prop_assert_eq!(&out[dst_off as usize..(dst_off + len) as usize], payload.as_slice());
        prop_assert!(out[(dst_off + len) as usize..].iter().all(|&b| b == 0xAB), "suffix intact");
    }

    /// Page-table migrations keep per-space resident byte totals equal to
    /// the allocation size, whatever the sequence of range migrations.
    #[test]
    fn residency_totals_are_conserved(
        bytes in 1u64..100_000,
        moves in proptest::collection::vec((0u8..8, 0u64..100_000, 1u64..50_000), 0..20),
    ) {
        let mut m = MemorySystem::new();
        let home = MemSpace::Ddr(NumaId(0));
        let id = m.allocate(MemKind::Managed, home, bytes).unwrap();
        let spaces: Vec<MemSpace> = (0..8).map(|g| MemSpace::Hbm(GcdId(g))).chain([home]).collect();
        for (g, off, len) in moves {
            let a = m.get_mut(id).unwrap();
            let pt = a.pages.as_mut().unwrap();
            let off = off % bytes;
            let len = len.min(bytes - off).max(1);
            pt.migrate_range(off, len, MemSpace::Hbm(GcdId(g)));
            let total: u64 = spaces
                .iter()
                .map(|&s| a.pages.as_ref().unwrap().resident_bytes(s))
                .sum();
            prop_assert_eq!(total, bytes, "residency partition");
        }
    }

    /// f32 round-trips are lossless through any buffer.
    #[test]
    fn f32_roundtrip_is_exact(values in proptest::collection::vec(any::<f32>().prop_filter("finite", |v| v.is_finite()), 1..64)) {
        let mut m = MemorySystem::new();
        let id = m
            .allocate(MemKind::HostPinned(Default::default()), MemSpace::Ddr(NumaId(1)), values.len() as u64 * 4)
            .unwrap();
        m.write_f32s(id, 0, &values).unwrap();
        let out = m.read_f32s(id, 0, values.len()).unwrap().unwrap();
        prop_assert_eq!(out, values);
    }
}
