//! Quickstart: allocate, copy, launch a kernel, and time it all on the
//! simulated Frontier-class node.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ifsim::des::units::{fmt_bw, MIB};
use ifsim::hip::{EnvConfig, HipSim, HostAllocFlags, KernelSpec, MemcpyKind};

fn main() {
    // One simulated process on the eight-GCD node. The default environment
    // matches the paper's: XNACK off, SDMA engines on.
    let mut hip = HipSim::new(EnvConfig::default());
    println!(
        "node: {} visible GPUs (GCDs), device 0 = {:?}",
        hip.device_count(),
        hip.device_props(0).unwrap().name
    );

    // Host-pinned and device buffers; write data through the host pointer.
    let bytes = 8 * MIB;
    let elems = (bytes / 4) as usize;
    hip.set_device(0).unwrap();
    let host = hip.host_malloc(bytes, HostAllocFlags::coherent()).unwrap();
    let dev_in = hip.malloc(bytes).unwrap();
    let dev_out = hip.malloc(bytes).unwrap();
    hip.mem_mut()
        .write_f32s(host, 0, &vec![1.5f32; elems])
        .unwrap();

    // Explicit H2D copy, timed with the virtual host clock.
    let t0 = hip.now();
    hip.memcpy(dev_in, 0, host, 0, bytes, MemcpyKind::HostToDevice)
        .unwrap();
    let h2d = hip.now() - t0;
    println!(
        "H2D memcpy of {} MiB: {} ({})",
        bytes / MIB,
        h2d,
        fmt_bw(bytes as f64 / h2d.as_secs())
    );

    // A STREAM-class kernel on the GPU, timed with events.
    let stream = hip.default_stream(0).unwrap();
    let start = hip.event_create();
    let stop = hip.event_create();
    hip.event_record(start, stream).unwrap();
    hip.launch_kernel(KernelSpec::StreamScale {
        src: dev_in,
        dst: dev_out,
        scalar: 2.0,
        elems,
    })
    .unwrap();
    hip.event_record(stop, stream).unwrap();
    hip.stream_synchronize(stream).unwrap();
    let kernel_ms = hip.event_elapsed_ms(start, stop).unwrap();
    println!(
        "stream_scale kernel: {:.1} us ({})",
        kernel_ms * 1e3,
        fmt_bw(2.0 * bytes as f64 / (kernel_ms / 1e3))
    );

    // Copy back and verify the data really moved and really got scaled.
    let back = hip.host_malloc(bytes, HostAllocFlags::coherent()).unwrap();
    hip.memcpy(back, 0, dev_out, 0, bytes, MemcpyKind::DeviceToHost)
        .unwrap();
    let v = hip.mem().read_f32s(back, 0, 4).unwrap().unwrap();
    assert_eq!(v, vec![3.0; 4]);
    println!("verified: dev_out[0..4] = {v:?} (1.5 x 2.0)");
    println!("total simulated time: {}", hip.now());
}
