//! Collective planner: given a collective, a message size and a GPU count,
//! measure both libraries on the simulated node and recommend one — the
//! paper's §VI comparison packaged as a decision tool.
//!
//! ```text
//! cargo run --example collective_planner                    # survey
//! cargo run --example collective_planner -- allreduce 4 8   # 4 MiB, 8 GPUs
//! ```

use ifsim::coll::Collective;
use ifsim::des::units::MIB;
use ifsim::microbench::{osu, rccl_tests, BenchConfig};

fn parse_collective(s: &str) -> Collective {
    match s.to_ascii_lowercase().as_str() {
        "reduce" => Collective::Reduce,
        "broadcast" | "bcast" => Collective::Broadcast,
        "allreduce" => Collective::AllReduce,
        "reducescatter" | "reduce_scatter" => Collective::ReduceScatter,
        "allgather" => Collective::AllGather,
        other => panic!("unknown collective '{other}'"),
    }
}

fn main() {
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 3 {
        let coll = parse_collective(&args[0]);
        let msg = args[1].parse::<u64>().expect("message size in MiB") * MIB;
        let n = args[2].parse::<usize>().expect("GPU count 2-8");
        recommend(&cfg, coll, n, msg);
        return;
    }

    println!("=== library recommendation per collective (1 MiB, 2-8 GPUs) ===\n");
    println!(
        "{:<15} {:>6} {:>12} {:>12}   use",
        "collective", "GPUs", "MPI (us)", "RCCL (us)"
    );
    for coll in Collective::ALL {
        for n in [2usize, 4, 8] {
            let mpi = osu::mpi_collective_latency(&cfg, coll, n, MIB);
            let rccl = rccl_tests::rccl_collective_latency(&cfg, coll, n, MIB);
            let rec = if rccl <= mpi { "RCCL" } else { "MPI" };
            println!(
                "{:<15} {:>6} {:>12.1} {:>12.1}   {}",
                coll.name(),
                n,
                mpi,
                rccl,
                rec
            );
        }
    }
    println!(
        "\nRule of thumb from the paper (and reproduced here): prefer RCCL for\n\
         everything except Broadcast at scale; RCCL's serial ring broadcast\n\
         loses to MPI's scatter+allgather as GPU count grows."
    );
}

fn recommend(cfg: &BenchConfig, coll: Collective, n: usize, msg: u64) {
    println!(
        "=== {} over {n} GPUs, {} MiB message ===",
        coll.name(),
        msg / MIB
    );
    let mpi = osu::mpi_collective_latency(cfg, coll, n, msg);
    let rccl = rccl_tests::rccl_collective_latency(cfg, coll, n, msg);
    println!("MPI : {mpi:>10.1} us");
    println!("RCCL: {rccl:>10.1} us");
    let (winner, ratio) = if rccl <= mpi {
        ("RCCL", mpi / rccl)
    } else {
        ("MPI", rccl / mpi)
    };
    println!("recommendation: {winner} ({ratio:.2}x faster)");
}
