//! Halo exchange: the communication pattern of stencil/CFD codes the
//! paper's introduction motivates. A 1-D periodic domain decomposition
//! across all eight GCDs exchanges boundary halos with both neighbours
//! every step, comparing three strategies:
//!
//! 1. **host-staged**: halos bounce through pinned host memory
//!    (non-GPU-aware MPI style) — every byte crosses two 36 GB/s CPU links
//!    and the per-NUMA DDR bottleneck;
//! 2. **direct, naive mapping**: rank i on GCD i, halos move with peer
//!    kernels over whatever routes the fabric offers;
//! 3. **direct, topology-aware mapping**: ranks laid along the node's
//!    hardware ring so every neighbour is one hop away.
//!
//! The punchline matches the paper: going GPU-direct is worth several ×,
//! while — for this simple neighbour pattern — the Infinity Fabric mesh is
//! rich enough that the *mapping* barely matters (contrast with the
//! collectives of Fig. 12 and the CPU-bandwidth placement of Figs. 4–5,
//! where placement is decisive). Measure, don't assume.
//!
//! ```text
//! cargo run --example halo_exchange            # 4 MiB halos
//! cargo run --example halo_exchange -- 16      # halo size in MiB
//! ```

use ifsim::des::units::MIB;
use ifsim::hip::{EnvConfig, HipSim, HostAllocFlags, KernelSpec, MemcpyKind};
use ifsim::topology::{GcdId, NodeTopology, Router};

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    HostStaged,
    DirectKernels,
}

/// One halo phase: every rank ships a halo to each neighbour (periodic).
/// Returns the phase's simulated duration in microseconds.
#[allow(clippy::needless_range_loop)] // rank indices address several tables
fn halo_phase_time(mapping: &[usize], halo_bytes: u64, strategy: Strategy) -> f64 {
    let mut hip = HipSim::new(EnvConfig::default());
    hip.enable_all_peer_access().unwrap();
    hip.mem_mut().set_phantom_threshold(0);
    let n = mapping.len();

    let mut halo_out = Vec::new();
    let mut halo_in = Vec::new();
    let mut bounce = Vec::new();
    for &dev in mapping {
        hip.set_device(dev).unwrap();
        halo_out.push([
            hip.malloc(halo_bytes).unwrap(),
            hip.malloc(halo_bytes).unwrap(),
        ]);
        halo_in.push([
            hip.malloc(halo_bytes).unwrap(),
            hip.malloc(halo_bytes).unwrap(),
        ]);
        bounce.push([
            hip.host_malloc(halo_bytes, HostAllocFlags::coherent())
                .unwrap(),
            hip.host_malloc(halo_bytes, HostAllocFlags::coherent())
                .unwrap(),
        ]);
    }

    let t0 = hip.now();
    match strategy {
        Strategy::DirectKernels => {
            // Receiver-side pull kernels, all concurrent.
            for r in 0..n {
                let right = (r + 1) % n;
                let left = (r + n - 1) % n;
                hip.set_device(mapping[right]).unwrap();
                hip.launch_kernel(KernelSpec::StreamCopy {
                    src: halo_out[r][1],
                    dst: halo_in[right][0],
                    elems: (halo_bytes / 4) as usize,
                })
                .unwrap();
                hip.set_device(mapping[left]).unwrap();
                hip.launch_kernel(KernelSpec::StreamCopy {
                    src: halo_out[r][0],
                    dst: halo_in[left][1],
                    elems: (halo_bytes / 4) as usize,
                })
                .unwrap();
            }
            hip.synchronize_all().unwrap();
        }
        Strategy::HostStaged => {
            // D2H all halos, then H2D into the neighbours.
            for r in 0..n {
                let stream = hip.default_stream(mapping[r]).unwrap();
                for side in 0..2 {
                    hip.memcpy_async(
                        bounce[r][side],
                        0,
                        halo_out[r][side],
                        0,
                        halo_bytes,
                        MemcpyKind::DeviceToHost,
                        stream,
                    )
                    .unwrap();
                }
            }
            hip.synchronize_all().unwrap();
            for r in 0..n {
                let right = (r + 1) % n;
                let left = (r + n - 1) % n;
                for (nbr, side) in [(right, 0), (left, 1)] {
                    let stream = hip.default_stream(mapping[nbr]).unwrap();
                    hip.memcpy_async(
                        halo_in[nbr][side],
                        0,
                        bounce[r][1 - side],
                        0,
                        halo_bytes,
                        MemcpyKind::HostToDevice,
                        stream,
                    )
                    .unwrap();
                }
            }
            hip.synchronize_all().unwrap();
        }
    }
    (hip.now() - t0).as_us()
}

/// Lay ranks along a Hamiltonian cycle of direct links (the RCCL-style
/// hardware ring), so every neighbour pair is one hop.
fn topology_aware_mapping() -> Vec<usize> {
    let topo = NodeTopology::frontier();
    let router = Router::new(&topo);
    let gcds: Vec<GcdId> = topo.gcds().collect();
    let ring = ifsim::coll::ring::build_ring(&topo, &router, &gcds);
    ring.order.iter().map(|g| g.0 as usize).collect()
}

fn main() {
    let halo_mib: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("halo size in MiB"))
        .unwrap_or(4);
    let halo_bytes = halo_mib * MIB;

    let naive: Vec<usize> = (0..8).collect();
    let aware = topology_aware_mapping();
    println!("=== periodic halo exchange across 8 GCDs ({halo_mib} MiB halos) ===\n");
    println!("naive mapping:          {naive:?}");
    println!("topology-aware mapping: {aware:?}\n");

    let staged = halo_phase_time(&naive, halo_bytes, Strategy::HostStaged);
    let direct_naive = halo_phase_time(&naive, halo_bytes, Strategy::DirectKernels);
    let direct_aware = halo_phase_time(&aware, halo_bytes, Strategy::DirectKernels);

    println!("host-staged (bounce through pinned memory): {staged:>9.1} us");
    println!("direct peer kernels, naive mapping:         {direct_naive:>9.1} us");
    println!("direct peer kernels, topology-aware:        {direct_aware:>9.1} us\n");

    println!(
        "going GPU-direct is worth {:.1}x over host staging.",
        staged / direct_naive.max(direct_aware)
    );
    let ratio = direct_naive / direct_aware;
    if (0.9..1.1).contains(&ratio) {
        println!(
            "mapping effect: {ratio:.2}x — for this neighbour pattern the Infinity\n\
             Fabric mesh absorbs either placement; the bandwidth-maximizing routes\n\
             of multi-hop edges spread load across otherwise idle links. Placement\n\
             is decisive elsewhere (CPU-GPU streaming, collectives) — measure it."
        );
    } else {
        println!("mapping effect: {ratio:.2}x in favour of the topology-aware layout.");
    }
}
