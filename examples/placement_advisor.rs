//! Placement advisor: for a host↔device streaming workload, compare the
//! memory interfaces and GCD placements of the paper's §IV and report what
//! to use — the study's practical advice, executable.
//!
//! ```text
//! cargo run --example placement_advisor            # 64 MiB default
//! cargo run --example placement_advisor -- 512     # working set in MiB
//! ```

use ifsim::des::units::MIB;
use ifsim::microbench::comm_scope::{h2d_bandwidth, H2dInterface};
use ifsim::microbench::stream::multi_gpu_host_stream;
use ifsim::microbench::BenchConfig;

fn main() {
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;
    let mib: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("working set in MiB"))
        .unwrap_or(64);
    let bytes = mib * MIB;

    println!("=== host-to-device interface choice ({mib} MiB working set) ===\n");
    let mut results: Vec<(&str, f64)> = H2dInterface::ALL
        .iter()
        .map(|&i| (i.label(), h2d_bandwidth(&cfg, i, bytes)))
        .collect();
    results.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (rank, (label, bw)) in results.iter().enumerate() {
        println!("  {}. {label:<26} {bw:>7.1} GB/s", rank + 1);
    }
    let best = results[0].0;
    println!("\nuse: {best}");
    if mib <= 32 {
        println!(
            "note: at or below 32 MiB, managed zero-copy tracks pinned performance\n\
             while being far simpler to program (single pointer, no explicit copies)."
        );
    }

    println!("\n=== multi-GCD placement for CPU-GPU streaming ===\n");
    let one = multi_gpu_host_stream(&cfg, &[0], bytes);
    let same = multi_gpu_host_stream(&cfg, &[0, 1], bytes);
    let spread = multi_gpu_host_stream(&cfg, &[0, 2], bytes);
    let four = multi_gpu_host_stream(&cfg, &[0, 2, 4, 6], bytes);
    let eight = multi_gpu_host_stream(&cfg, &(0..8).collect::<Vec<_>>(), bytes);
    println!("  1 GCD:                     {one:>7.1} GB/s");
    println!("  2 GCDs, same package:      {same:>7.1} GB/s   <- does not scale");
    println!("  2 GCDs, spread packages:   {spread:>7.1} GB/s");
    println!("  4 GCDs, one per package:   {four:>7.1} GB/s");
    println!("  8 GCDs (all):              {eight:>7.1} GB/s   <- no gain over 4");
    println!(
        "\nadvice: bind one GCD per MI250X package (e.g. HIP_VISIBLE_DEVICES=0,2,4,6)\n\
         for host-bandwidth-bound phases; each NUMA domain feeds only one GCD's\n\
         worth of CPU-GPU traffic."
    );
}
