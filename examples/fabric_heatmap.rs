//! Fabric heatmap: run a workload, then print per-link utilization and the
//! op timeline — the simulator's observability tools in one place.
//!
//! ```text
//! cargo run --example fabric_heatmap
//! ```

use ifsim::coll::schedule::RankBuffers;
use ifsim::coll::{Collective, RcclComm};
use ifsim::des::units::MIB;
use ifsim::hip::{EnvConfig, HipSim};
use ifsim::topology::LinkKind;

fn main() {
    let mut hip = HipSim::new(EnvConfig::default());
    hip.mem_mut().set_phantom_threshold(0);
    hip.trace_enable();

    // Workload: an 8-rank AllReduce of 64 MiB.
    let n = 8;
    let elems = (64 * MIB / 4) as usize;
    let comm = RcclComm::new(&mut hip, (0..n).collect()).unwrap();
    let mut send = Vec::new();
    let mut recv = Vec::new();
    for r in 0..n {
        hip.set_device(r).unwrap();
        send.push(hip.malloc(elems as u64 * 4).unwrap());
        recv.push(hip.malloc(elems as u64 * 4).unwrap());
    }
    let bufs = RankBuffers { send, recv };
    let d = comm
        .collective(&mut hip, Collective::AllReduce, &bufs, elems, 0)
        .unwrap();
    println!("AllReduce of 64 MiB across 8 GCDs: {d}\n");

    // Per-link utilization heatmap.
    println!("xGMI link utilization (mean over the run, by direction):");
    let topo = hip.topo().clone();
    let net = hip.fabric();
    let segmap = net.segmap();
    for (i, link) in topo.links().iter().enumerate() {
        if !matches!(link.kind, LinkKind::Xgmi(_)) {
            continue;
        }
        let lid = ifsim::topology::LinkId(i as u32);
        let fwd = net.seg_utilization(segmap.dir_seg(lid, ifsim::fabric::Dir::Forward));
        let bwd = net.seg_utilization(segmap.dir_seg(lid, ifsim::fabric::Dir::Backward));
        let bar = |u: f64| "#".repeat((u * 30.0).round() as usize);
        println!(
            "  {:>5} -> {:<5} {:>5.1}% |{:<30}|",
            format!("{:?}", link.a),
            format!("{:?}", link.b),
            fwd * 100.0,
            bar(fwd)
        );
        println!(
            "  {:>5} -> {:<5} {:>5.1}% |{:<30}|",
            format!("{:?}", link.b),
            format!("{:?}", link.a),
            bwd * 100.0,
            bar(bwd)
        );
    }

    // The op timeline (one glyph class per op kind).
    println!("\nop timeline (c = coll transfers):");
    print!("{}", hip.trace().render_gantt(72));
    println!(
        "\nring order used: {:?}",
        comm.ring().order.iter().map(|g| g.0).collect::<Vec<_>>()
    );
}
