//! Fabric heatmap: run a workload under a telemetry collector, then print
//! per-link utilization, the op timeline, and the metrics snapshot — the
//! simulator's observability tools in one place.
//!
//! ```text
//! cargo run --example fabric_heatmap [-- trace.json]
//! ```
//!
//! With a path argument the merged Chrome trace-event timeline is written
//! there, ready to open in Perfetto (see docs/OBSERVABILITY.md).

use ifsim::coll::schedule::RankBuffers;
use ifsim::coll::{Collective, RcclComm};
use ifsim::des::units::MIB;
use ifsim::hip::{EnvConfig, HipSim};
use ifsim::telemetry::{render_heatmap, Collector, UtilRow};

fn main() {
    let collector = Collector::install();
    {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.mem_mut().set_phantom_threshold(0);

        // Workload: an 8-rank AllReduce of 64 MiB.
        let n = 8;
        let elems = (64 * MIB / 4) as usize;
        let comm = RcclComm::new(&mut hip, (0..n).collect()).unwrap();
        let mut send = Vec::new();
        let mut recv = Vec::new();
        for r in 0..n {
            hip.set_device(r).unwrap();
            send.push(hip.malloc(elems as u64 * 4).unwrap());
            recv.push(hip.malloc(elems as u64 * 4).unwrap());
        }
        let bufs = RankBuffers { send, recv };
        let d = comm
            .collective(&mut hip, Collective::AllReduce, &bufs, elems, 0)
            .unwrap();
        println!("AllReduce of 64 MiB across 8 GCDs: {d}\n");

        // Per-link utilization heatmap from the fabric's own counters:
        // xGMI links only, both directions, busiest first.
        let mut rows: Vec<UtilRow> = hip
            .fabric()
            .link_loads()
            .into_iter()
            .filter(|l| l.xgmi && l.wire_bytes > 0.0)
            .map(|l| UtilRow {
                label: l.label,
                utilization: l.utilization,
                wire_bytes: l.wire_bytes,
            })
            .collect();
        rows.sort_by(|a, b| b.utilization.total_cmp(&a.utilization));
        print!(
            "{}",
            render_heatmap(
                "xGMI link utilization (mean over the run, by direction):",
                &rows,
                30
            )
        );

        // The op timeline (one glyph class per op kind).
        println!("\nop timeline (c = coll transfers):");
        print!("{}", hip.trace().render_gantt(72));
        println!(
            "\nring order used: {:?}",
            comm.ring().order.iter().map(|g| g.0).collect::<Vec<_>>()
        );
        // `hip` dropped here: its snapshot flushes to the collector.
    }

    let telemetry = collector.take();
    println!(
        "\ncollected telemetry: {} events from {} simulator(s)",
        telemetry.events().len(),
        telemetry.sims()
    );
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, telemetry.chrome_trace_string()).expect("write trace");
        println!("chrome trace written to {path} (load it in ui.perfetto.dev)");
    } else {
        println!("pass a path to write the Chrome trace: cargo run --example fabric_heatmap -- trace.json");
    }
}
