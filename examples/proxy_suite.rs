//! Proxy-application suite: run the three application proxies and print a
//! per-phase report — the paper's guidance evaluated in application
//! context rather than microbenchmarks.
//!
//! ```text
//! cargo run --release --example proxy_suite
//! ```

use ifsim::apps::{cg, stencil, train};
use ifsim::hip::{EnvConfig, HipSim};

fn runtime() -> HipSim {
    let mut hip = HipSim::new(EnvConfig::default());
    hip.mem_mut().set_phantom_threshold(1 << 20);
    hip
}

fn main() {
    println!("=== ifsim proxy-application suite (8 GCDs) ===\n");

    // 1. Stencil: direct vs host-staged halos.
    println!("--- stencil2d: 4096 x 8192 cells, 4 iterations ---");
    for (label, exchange) in [
        ("direct peer halos", stencil::ExchangeStrategy::DirectPeer),
        ("host-staged halos", stencil::ExchangeStrategy::HostStaged),
    ] {
        let mut hip = runtime();
        let r = stencil::run(
            &mut hip,
            &stencil::StencilConfig {
                exchange,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "  {label:<20} total {:>10}  compute {:>10}  exchange {:>10} ({:.0}%)",
            r.total,
            r.compute,
            r.exchange,
            r.exchange_fraction() * 100.0
        );
    }

    // 2. CG: RCCL vs MPI scalar reductions.
    println!("\n--- cg-solve: 1M rows/rank, 5 iterations, 2 dots/iter ---");
    for (label, lib) in [
        ("RCCL reductions", cg::ReductionLib::Rccl),
        ("MPI reductions ", cg::ReductionLib::Mpi),
    ] {
        let mut hip = runtime();
        let r = cg::run(
            &mut hip,
            &cg::CgConfig {
                lib,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "  {label:<20} total {:>10}  local {:>10}  reductions {:>10} ({:.0}%)",
            r.total,
            r.local,
            r.reductions,
            r.reduction_fraction() * 100.0
        );
    }

    // 3. Training step: synchronous vs overlapped ingestion.
    println!("\n--- train-step: 64 MiB gradients, 32 MiB batches, 3 steps ---");
    for (label, overlap) in [("synchronous input", false), ("overlapped input ", true)] {
        let mut hip = runtime();
        let r = train::run(
            &mut hip,
            &train::TrainConfig {
                overlap_ingestion: overlap,
                compute_passes: 8,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "  {label:<20} per-step {:>10}  allreduce share {:.0}%",
            r.per_step,
            100.0 * r.allreduce.as_secs() / r.total.as_secs()
        );
    }
    println!("\nTakeaways (matching the paper): GPU-direct halos, RCCL for small");
    println!("reductions, and SDMA-engine copy/compute overlap all pay off at");
    println!("application scale.");
}
