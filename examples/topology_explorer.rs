//! Topology explorer: print the node's Infinity Fabric mesh, the routes
//! the runtime would take between any two GCDs, and the latency/bandwidth
//! each choice implies — the paper's Fig. 1 + Fig. 6 reasoning as a tool.
//!
//! ```text
//! cargo run --example topology_explorer            # full survey
//! cargo run --example topology_explorer -- 1 7     # one pair in detail
//! ```

use ifsim::des::units::to_gbps;
use ifsim::fabric::latency::measured_peer_latency;
use ifsim::fabric::Calibration;
use ifsim::topology::{numa, GcdId, NodeTopology, RoutePolicy, Router};

fn main() {
    let topo = NodeTopology::frontier();
    let router = Router::new(&topo);
    let calib = Calibration::default();

    let args: Vec<u8> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("GCD index 0-7"))
        .collect();
    if let [a, b] = args[..] {
        explain_pair(&topo, &router, &calib, GcdId(a), GcdId(b));
        return;
    }

    println!("=== Infinity Fabric mesh (Frontier/LUMI-class node) ===\n");
    println!("GCD adjacency (xGMI lanes, '.' = not direct):");
    print!("      ");
    for j in 0..8 {
        print!("GCD{j} ");
    }
    println!();
    for i in 0..8u8 {
        print!("GCD{i}  ");
        for j in 0..8u8 {
            match topo.xgmi_width(GcdId(i), GcdId(j)) {
                Some(w) => print!("{:>4} ", format!("{}x", w.lanes())),
                None if i == j => print!("{:>4} ", "-"),
                None => print!("{:>4} ", "."),
            }
        }
        println!();
    }

    println!("\nNUMA affinity:");
    for (g, n) in numa::affinity_table(&topo) {
        print!("  {g}->{n}");
    }
    println!("\n\nRoute survey (bandwidth-maximizing policy, as hipMemcpyPeer uses):");
    for a in 0..8u8 {
        for b in 0..8u8 {
            if a >= b {
                continue;
            }
            let p = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::MaxBandwidth);
            let lat = measured_peer_latency(&topo, p, &calib);
            println!(
                "  GCD{a} -> GCD{b}: {} hops via {:?}, bottleneck {:>5.0} GB/s/dir, engine latency {:.1} us",
                p.hops(),
                p.ports.iter().map(|q| format!("{q}")).collect::<Vec<_>>(),
                to_gbps(p.bottleneck_per_dir(&topo)),
                lat.as_us(),
            );
        }
    }
    println!("\nPairs where routing for bandwidth costs latency (the paper's outliers):");
    for a in 0..8u8 {
        for b in 0..8u8 {
            if a >= b {
                continue;
            }
            let bw = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::MaxBandwidth);
            let sh = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::ShortestHop);
            if bw.hops() > sh.hops() {
                println!(
                    "  GCD{a}-GCD{b}: {} hops at {:.0} GB/s instead of {} hops at {:.0} GB/s",
                    bw.hops(),
                    to_gbps(bw.bottleneck_per_dir(&topo)),
                    sh.hops(),
                    to_gbps(sh.bottleneck_per_dir(&topo)),
                );
            }
        }
    }
}

fn explain_pair(topo: &NodeTopology, router: &Router, calib: &Calibration, a: GcdId, b: GcdId) {
    println!("=== {a} <-> {b} ===");
    for (name, policy) in [
        (
            "bandwidth-maximizing (hipMemcpyPeer)",
            RoutePolicy::MaxBandwidth,
        ),
        ("shortest-hop", RoutePolicy::ShortestHop),
    ] {
        let p = router.gcd_route(a, b, policy);
        println!(
            "{name}:\n  route {:?}\n  {} hops, bottleneck {:.0} GB/s per direction, \
             measured-style latency {:.1} us",
            p.ports.iter().map(|q| format!("{q}")).collect::<Vec<_>>(),
            p.hops(),
            to_gbps(p.bottleneck_per_dir(topo)),
            measured_peer_latency(topo, p, calib).as_us(),
        );
    }
    println!(
        "expected hipMemcpyPeer bandwidth (SDMA): {:.1} GB/s",
        to_gbps(
            (calib.eff_sdma_xgmi
                * router
                    .gcd_route(a, b, RoutePolicy::MaxBandwidth)
                    .bottleneck_per_dir(topo))
            .min(calib.sdma_payload_cap)
        )
    );
    println!(
        "expected direct kernel bandwidth (unidirectional): {:.1} GB/s",
        to_gbps(
            calib.eff_kernel_xgmi
                * router
                    .gcd_route(a, b, RoutePolicy::MaxBandwidth)
                    .bottleneck_per_dir(topo)
        )
    );
}
