//! Fabric doctor: probe every direct xGMI link and flag degraded ones —
//! the paper's methodology packaged as an operational health check.
//!
//! ```text
//! cargo run --release --example fabric_doctor            # healthy node
//! cargo run --release --example fabric_doctor -- 2 4 0.5 # inject a fault
//! ```

use ifsim::hip::{EnvConfig, GcdId};
use ifsim::microbench::doctor;
use ifsim::microbench::BenchConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::quick();
    let mut hip = cfg.runtime(EnvConfig::default());

    if let [a, b, f] = &args[..] {
        let a: u8 = a.parse().expect("GCD index");
        let b: u8 = b.parse().expect("GCD index");
        let f: f64 = f.parse().expect("derate factor (0, 1]");
        println!(
            "injecting fault: link GCD{a}-GCD{b} derated to {:.0} %\n",
            f * 100.0
        );
        hip.derate_xgmi_link(GcdId(a), GcdId(b), f)
            .expect("GCDs must be directly linked");
    }

    println!("=== fabric doctor: probing all 12 direct xGMI links ===\n");
    let health = doctor::probe_links(&mut hip, 64 << 20);
    print!("{}", doctor::render_report(&health, 0.1));

    let degraded: Vec<_> = health.iter().filter(|h| !h.healthy(0.1)).collect();
    if degraded.is_empty() {
        println!("\nall links within 10 % of expected bandwidth.");
    } else {
        println!(
            "\n{} link(s) degraded — check xGMI training state:",
            degraded.len()
        );
        for h in degraded {
            println!(
                "  {}-{}: {:.1} of {:.1} GB/s expected ({:.0} %)",
                h.a,
                h.b,
                h.measured,
                h.expected,
                h.ratio * 100.0
            );
        }
    }
}
