//! Fault storm: run peer traffic through a seeded storm of fabric faults
//! (lane losses, link outages with repairs, bit-error taxes, SDMA drops)
//! and watch the runtime ride it out — retries, reroutes, and the
//! per-link error ledger.
//!
//! ```text
//! cargo run --example fault_storm
//! ```
//!
//! The storm is deterministic: same seed, same schedule, same trace.

use ifsim::des::units::MIB;
use ifsim::des::Dur;
use ifsim::hip::{EnvConfig, FaultPlan, GcdId, HipSim, RetryPolicy};
use ifsim::topology::{LinkKind, PortId};

fn main() {
    let mut hip = HipSim::new(EnvConfig::default());
    hip.enable_all_peer_access().expect("peer access");
    hip.mem_mut().set_phantom_threshold(0);
    hip.trace_enable();
    hip.set_retry_policy(RetryPolicy::default());

    // Storm every xGMI link: 12 seeded fault events over 30 ms.
    let topo = hip.topo().clone();
    let xgmi: Vec<(GcdId, GcdId)> = topo
        .links()
        .iter()
        .filter(|l| matches!(l.kind, LinkKind::Xgmi(_)))
        .filter_map(|l| match (l.a, l.b) {
            (PortId::Gcd(a), PortId::Gcd(b)) => Some((a, b)),
            _ => None,
        })
        .collect();
    let plan = FaultPlan::storm(&xgmi, 0xBAD_CAB1E, 12, Dur::from_ms(30.0));
    println!("seeded storm ({} events):", plan.events().len());
    for ev in plan.events() {
        println!("  {:>9.3} ms  {}", ev.at.as_ns() / 1e6, ev.kind);
    }
    hip.set_fault_plan(plan).expect("plan accepted");

    // Traffic: rounds of four *concurrent* 256 MiB peer copies while the
    // storm lands. The pairs deliberately ride the stormed links — (2,4)
    // sits on a dual that goes down mid-flight, (1,7) and (3,5) are the
    // multi-hop outlier routes. Aborted copies retry with backoff over
    // whatever fabric survives; only an exhausted retry budget surfaces
    // as an error here.
    let pairs = [(0usize, 2usize), (2, 4), (1, 7), (3, 5)];
    let bytes = 256 * MIB;
    let mut bufs = Vec::new();
    for &(a, b) in &pairs {
        hip.set_device(a).expect("dev");
        let src = hip.malloc(bytes).expect("src");
        hip.set_device(b).expect("dev");
        let dst = hip.malloc(bytes).expect("dst");
        bufs.push((src, dst));
    }
    let (mut ok, mut failed) = (0u32, 0u32);
    for round in 0..6 {
        let mut streams = Vec::new();
        for (&(a, b), &(src, dst)) in pairs.iter().zip(&bufs) {
            hip.set_device(a).expect("dev");
            let stream = hip.default_stream(a).expect("stream");
            hip.memcpy_peer_async(dst, b, src, a, bytes, stream)
                .expect("enqueue");
            streams.push((a, b, stream));
        }
        for (a, b, stream) in streams {
            match hip.stream_synchronize(stream) {
                Ok(()) => ok += 1,
                Err(e) => {
                    failed += 1;
                    println!("round {round}: copy {a}->{b} failed: {e}");
                }
            }
        }
    }
    println!("\n{ok} copies completed, {failed} gave up (after retries)");

    // The ledger: what the storm did and what it cost.
    let stats = hip.fault_stats().clone();
    println!("\nfault ledger:");
    println!("  faults applied : {}", stats.faults_applied);
    println!("  flows aborted  : {}", stats.aborted_flows);
    println!("  retries issued : {}", stats.retries);
    println!("  ops failed     : {}", stats.failed_ops);
    println!("  per-link aborts:");
    for (link, n) in &stats.link_errors {
        let spec = &topo.links()[link.0 as usize];
        println!("    {:?} <-> {:?} : {n}", spec.a, spec.b);
    }

    println!("\ntimeline ({} trace events):", hip.trace().events().len());
    print!("{}", hip.trace().render_gantt(72));
}
