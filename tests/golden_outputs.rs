//! Golden-output regression tests.
//!
//! The simulator is deterministic for a fixed seed, so the CSV artifacts of
//! key figures are pinned byte-for-byte under `golden/`. A model change
//! that shifts any number fails here *by name*, forcing an explicit
//! regeneration:
//!
//! ```text
//! cargo run --release -p ifsim-bench --bin repro -- \
//!     --quick --reps 1 --csv golden fig6a fig6b fig6c fig7
//! ```
//!
//! (The pinned configuration is `BenchConfig::quick()` with `reps = 1` and
//! the default seed — exactly what the command above produces.)

use ifsim::registry;
use ifsim::BenchConfig;

fn pinned_cfg() -> BenchConfig {
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;
    cfg
}

fn check_golden(id: &str) {
    let exp = registry::by_id(id).expect("registered experiment");
    let result = exp.run(&pinned_cfg());
    for (name, contents) in &result.csv {
        let path = format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
        assert_eq!(
            contents, &golden,
            "{id}: {name} drifted from the pinned output; if the change is \
             intentional, regenerate golden/ (see this file's header)"
        );
    }
}

#[test]
fn fig6a_hop_matrix_is_pinned() {
    check_golden("fig6a");
}

#[test]
fn fig6b_latency_matrix_is_pinned() {
    check_golden("fig6b");
}

#[test]
fn fig6c_bandwidth_matrix_is_pinned() {
    check_golden("fig6c");
}

#[test]
fn fig7_peer_sweep_is_pinned() {
    check_golden("fig7");
}
