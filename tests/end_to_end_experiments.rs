//! The master reproduction test: every registered experiment runs at smoke
//! settings and every paper-shape check passes. This is the executable
//! equivalent of EXPERIMENTS.md.

use ifsim::registry;
use ifsim::BenchConfig;

fn smoke_cfg() -> BenchConfig {
    let mut cfg = BenchConfig::quick();
    cfg.reps = 1;
    cfg
}

#[test]
fn every_experiment_reproduces_the_paper_shape() {
    let cfg = smoke_cfg();
    let mut failures = Vec::new();
    for exp in registry::all() {
        let result = exp.run(&cfg);
        for check in &result.checks {
            if !check.passed {
                failures.push(format!("{}: {} — {}", exp.id, check.name, check.detail));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "paper-shape checks failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn experiments_emit_csv_artifacts_where_expected() {
    let cfg = smoke_cfg();
    for id in ["fig3", "fig6b", "fig6c", "fig10", "fig11", "fig12"] {
        let r = registry::by_id(id).unwrap().run(&cfg);
        assert!(!r.csv.is_empty(), "{id} should emit CSV");
        for (name, body) in &r.csv {
            assert!(name.ends_with(".csv"), "{id}: artifact {name}");
            assert!(body.lines().count() > 1, "{id}: {name} has data rows");
        }
    }
}

#[test]
fn experiment_reports_are_self_describing() {
    let cfg = smoke_cfg();
    let r = registry::by_id("fig7").unwrap().run(&cfg);
    let report = r.report();
    assert!(report.contains("fig7"));
    assert!(report.contains("checks vs. paper"));
    assert!(report.contains("PASS"));
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    // Byte-identical reports for the same seed; different seed changes the
    // jittered measurements (but not the conclusions).
    let cfg = smoke_cfg();
    let a = registry::by_id("fig6b").unwrap().run(&cfg);
    let b = registry::by_id("fig6b").unwrap().run(&cfg);
    assert_eq!(a.rendered, b.rendered);

    let mut cfg2 = smoke_cfg();
    cfg2.seed = 0xDEADBEEF;
    let c = registry::by_id("fig6b").unwrap().run(&cfg2);
    assert_ne!(a.rendered, c.rendered, "seed must matter");
    assert!(c.all_passed(), "conclusions hold under another seed");
}
