//! Integration scenarios spanning the whole stack: runtime + memory +
//! fabric + collectives driven together, the way an application would.

use ifsim::coll::schedule::RankBuffers;
use ifsim::coll::{Collective, MpiComm, RcclComm};
use ifsim::des::units::MIB;
use ifsim::hip::{EnvConfig, HipSim, HostAllocFlags, KernelSpec, MemcpyKind};

/// A miniature "application": host produces data, spreads it across four
/// GCDs, each GPU computes, results are all-reduced with RCCL, and the
/// host reads the answer back. Every byte is verified.
#[test]
fn produce_compute_allreduce_consume_pipeline() {
    let mut hip = HipSim::new(EnvConfig::default());
    let n = 4;
    let elems = 1024usize;
    let bytes = elems as u64 * 4;

    // Host produces per-GPU inputs.
    hip.set_device(0).unwrap();
    let host_in = hip.host_malloc(bytes, HostAllocFlags::coherent()).unwrap();
    hip.mem_mut()
        .write_f32s(host_in, 0, &vec![0.5f32; elems])
        .unwrap();

    // Scatter to the GPUs (explicit copies) and square on-device via scale.
    let mut dev_in = Vec::new();
    let mut dev_out = Vec::new();
    for d in 0..n {
        hip.set_device(d).unwrap();
        let b_in = hip.malloc(bytes).unwrap();
        let b_out = hip.malloc(bytes).unwrap();
        hip.memcpy(b_in, 0, host_in, 0, bytes, MemcpyKind::HostToDevice)
            .unwrap();
        hip.launch_kernel(KernelSpec::StreamScale {
            src: b_in,
            dst: b_out,
            scalar: (d + 1) as f32,
            elems,
        })
        .unwrap();
        hip.device_synchronize().unwrap();
        dev_in.push(b_in);
        dev_out.push(b_out);
    }

    // AllReduce the per-GPU results.
    let comm = RcclComm::new(&mut hip, (0..n).collect()).unwrap();
    let mut recv = Vec::new();
    for d in 0..n {
        hip.set_device(d).unwrap();
        recv.push(hip.malloc(bytes).unwrap());
    }
    let bufs = RankBuffers {
        send: dev_out.clone(),
        recv: recv.clone(),
    };
    let t0 = hip.now();
    comm.collective(&mut hip, Collective::AllReduce, &bufs, elems, 0)
        .unwrap();
    assert!(hip.now() > t0, "the collective consumed simulated time");

    // Host consumes: sum over d of 0.5*(d+1) = 0.5 * 10 = 5.0.
    hip.set_device(2).unwrap();
    let host_out = hip.host_malloc(bytes, HostAllocFlags::coherent()).unwrap();
    hip.memcpy(host_out, 0, recv[2], 0, bytes, MemcpyKind::DeviceToHost)
        .unwrap();
    let v = hip.mem().read_f32s(host_out, 0, elems).unwrap().unwrap();
    assert_eq!(v, vec![5.0f32; elems]);
}

/// MPI and RCCL running in the same process agree on the numerics even
/// though their timing differs.
#[test]
fn mpi_and_rccl_agree_on_allreduce_results() {
    let elems = 512usize;
    let bytes = elems as u64 * 4;

    let run = |use_mpi: bool| -> (Vec<f32>, f64) {
        let mut hip = HipSim::new(EnvConfig::default());
        let n = 8;
        let mut send = Vec::new();
        let mut recv = Vec::new();
        for r in 0..n {
            hip.set_device(r).unwrap();
            let s = hip.malloc(bytes).unwrap();
            let d = hip.malloc(bytes).unwrap();
            hip.mem_mut()
                .write_f32s(
                    s,
                    0,
                    &(0..elems).map(|i| (i + r) as f32).collect::<Vec<_>>(),
                )
                .unwrap();
            send.push(s);
            recv.push(d);
        }
        let bufs = RankBuffers { send, recv };
        let dur = if use_mpi {
            let comm = MpiComm::new(&mut hip, (0..n).collect()).unwrap();
            comm.collective(&mut hip, Collective::AllReduce, &bufs, elems, 0)
                .unwrap()
        } else {
            let comm = RcclComm::new(&mut hip, (0..n).collect()).unwrap();
            comm.collective(&mut hip, Collective::AllReduce, &bufs, elems, 0)
                .unwrap()
        };
        (
            hip.mem()
                .read_f32s(bufs.recv[0], 0, elems)
                .unwrap()
                .unwrap(),
            dur.as_us(),
        )
    };

    let (mpi_result, mpi_us) = run(true);
    let (rccl_result, rccl_us) = run(false);
    assert_eq!(mpi_result, rccl_result, "same reduction result");
    // Expected: sum over r of (i + r) = 8i + 28.
    for (i, v) in mpi_result.iter().enumerate() {
        assert_eq!(*v, 8.0 * i as f32 + 28.0, "element {i}");
    }
    assert!(
        rccl_us < mpi_us,
        "RCCL AllReduce should be faster ({rccl_us} vs {mpi_us})"
    );
}

/// Environment toggles flow through every layer: the same program under
/// three environments yields the paper's qualitative outcomes.
#[test]
fn environment_matrix_changes_behaviour_end_to_end() {
    let bytes = 32 * MIB;
    let elems = (bytes / 4) as usize;

    let peer_copy_time = |env: EnvConfig| {
        let mut hip = HipSim::new(env);
        hip.mem_mut().set_phantom_threshold(0);
        hip.enable_all_peer_access().unwrap();
        hip.set_device(0).unwrap();
        let src = hip.malloc(bytes).unwrap();
        hip.set_device(1).unwrap();
        let dst = hip.malloc(bytes).unwrap();
        let t0 = hip.now();
        hip.memcpy_peer(dst, 1, src, 0, bytes).unwrap();
        (hip.now() - t0).as_us()
    };
    let sdma_on = peer_copy_time(EnvConfig::default());
    let sdma_off = peer_copy_time(EnvConfig::without_sdma());
    assert!(
        sdma_off < sdma_on / 2.0,
        "blit beats SDMA on the quad link: {sdma_off} vs {sdma_on}"
    );

    // XNACK gates pageable-access kernels.
    let mut hip = HipSim::new(EnvConfig::default());
    let pageable = hip.malloc_pageable(bytes).unwrap();
    let dev = hip.malloc(bytes).unwrap();
    assert!(hip
        .launch_kernel(KernelSpec::StreamCopy {
            src: pageable,
            dst: dev,
            elems,
        })
        .is_err());
    let mut hip = HipSim::new(EnvConfig::with_xnack());
    let pageable = hip.malloc_pageable(bytes).unwrap();
    let dev = hip.malloc(bytes).unwrap();
    hip.launch_kernel(KernelSpec::StreamCopy {
        src: pageable,
        dst: dev,
        elems,
    })
    .unwrap();
    hip.device_synchronize().unwrap();

    // Visibility restriction is honoured by the whole stack.
    let env = EnvConfig::default().with_visible_devices(vec![0, 2, 4, 6]);
    let mut hip = HipSim::new(env);
    assert_eq!(hip.device_count(), 4);
    let comm = RcclComm::new(&mut hip, (0..4).collect()).unwrap();
    assert_eq!(comm.n_ranks(), 4);
}

/// Managed memory migrates under XNACK and the whole pipeline sees the
/// relocation: second-touch bandwidth jumps by orders of magnitude.
#[test]
fn xnack_migration_is_visible_across_the_stack() {
    let mut hip = HipSim::new(EnvConfig::with_xnack());
    hip.mem_mut().set_phantom_threshold(0);
    let bytes = 16 * MIB;
    let elems = (bytes / 4) as usize;
    let managed = hip.malloc_managed(bytes).unwrap();
    let dev = hip.malloc(bytes).unwrap();

    let touch = |hip: &mut HipSim| {
        let t0 = hip.now();
        hip.launch_kernel(KernelSpec::StreamCopy {
            src: managed,
            dst: dev,
            elems,
        })
        .unwrap();
        hip.device_synchronize().unwrap();
        (hip.now() - t0).as_us()
    };
    let first = touch(&mut hip);
    let second = touch(&mut hip);
    assert!(
        first > 20.0 * second,
        "migration dominates the first touch: {first} vs {second}"
    );
}
