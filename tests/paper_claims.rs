//! The paper's findings, sentence by sentence, as executable tests.
//!
//! Each test quotes the claim (with its section) and asserts that the
//! simulator reproduces it through the public API. This file is the
//! living-documentation counterpart of EXPERIMENTS.md: if a recalibration
//! or model change breaks a finding, the failing test names the sentence.

use ifsim::coll::Collective;
use ifsim::des::units::{GIB, MIB};
use ifsim::microbench::comm_scope::{h2d_bandwidth, numa_to_gpu_matrix, H2dInterface};
use ifsim::microbench::p2p_matrix::{bandwidth_matrix, latency_matrix};
use ifsim::microbench::stream::{
    direct_p2p_unidirectional, local_stream, multi_gpu_host_stream, peer_stream_peaks,
};
use ifsim::microbench::{osu, rccl_tests, BenchConfig};

fn cfg() -> BenchConfig {
    let mut c = BenchConfig::quick();
    c.reps = 1;
    c
}

// ---------------------------------------------------------------- §IV-A --

#[test]
fn claim_4a_we_achieve_a_maximum_bandwidth_of_28_3_gbs_with_pinned_memory() {
    // "We achieve a maximum bandwidth of 28.3 GB/s, with explicit data
    //  transfer from pinned memory."
    let bw = h2d_bandwidth(&cfg(), H2dInterface::MemcpyPinned, GIB);
    assert!((bw - 28.3).abs() < 0.4, "{bw} GB/s");
}

#[test]
fn claim_4a_managed_memory_with_page_migration_only_achieved_2_8_gbs() {
    // "managed memory with page migration only achieved 2.8 GB/s"
    let bw = h2d_bandwidth(&cfg(), H2dInterface::ManagedMigration, 256 * MIB);
    assert!((bw - 2.8).abs() < 0.3, "{bw} GB/s");
}

#[test]
fn claim_4a_managed_zero_copy_achieves_a_highest_bandwidth_of_25_5_gbs() {
    // "managed memory with zero-copy access achieves a highest bandwidth
    //  of 25.5 GB/s"
    let c = cfg();
    let peak = [32 * MIB, 256 * MIB, GIB]
        .iter()
        .map(|&s| h2d_bandwidth(&c, H2dInterface::ManagedZeroCopy, s))
        .fold(f64::MIN, f64::max);
    assert!((peak - 25.5).abs() < 0.4, "{peak} GB/s");
}

#[test]
fn claim_4a_zero_copy_approximates_pinned_up_to_32_mb_then_pinned_reaches_higher() {
    // "zero-copy managed memory approximate the behavior of pinned memory,
    //  up to 32 MB transfer size, after which pinned memory bandwidth is
    //  able to reach higher value than managed memory."
    let c = cfg();
    let below = h2d_bandwidth(&c, H2dInterface::ManagedZeroCopy, 16 * MIB)
        / h2d_bandwidth(&c, H2dInterface::MemcpyPinned, 16 * MIB);
    let above = h2d_bandwidth(&c, H2dInterface::ManagedZeroCopy, 512 * MIB)
        / h2d_bandwidth(&c, H2dInterface::MemcpyPinned, 512 * MIB);
    assert!(below > 0.95, "tracks below 32 MiB: ratio {below}");
    assert!(above < 0.93, "pinned ahead above 32 MiB: ratio {above}");
}

// ---------------------------------------------------------------- §IV-B --

#[test]
fn claim_4b_no_bandwidth_degradation_for_non_optimal_numa_gcd_combinations() {
    // "we were not able to identify any bandwidth degradation when
    //  performing a copy operation within a non-optimal combination of
    //  NUMA node/GCD."
    let m = numa_to_gpu_matrix(&cfg(), 256 * MIB);
    assert!(m.max_off_diagonal() / m.min_off_diagonal() < 1.05);
}

// ---------------------------------------------------------------- §IV-C --

#[test]
fn claim_4c_only_the_spread_strategy_scales_correctly() {
    // "We observe that only the spread strategy scales correctly, as the
    //  bandwidth double from one to two GCDs in the spread placement
    //  strategy."
    let c = cfg();
    let one = multi_gpu_host_stream(&c, &[0], 64 * MIB);
    let same = multi_gpu_host_stream(&c, &[0, 1], 64 * MIB);
    let spread = multi_gpu_host_stream(&c, &[0, 2], 64 * MIB);
    assert!(
        (spread / one - 2.0).abs() < 0.15,
        "spread doubles: {}",
        spread / one
    );
    assert!(same / one < 1.1, "same GPU does not: {}", same / one);
}

#[test]
fn claim_4c_using_eight_gcds_does_not_improve_over_four() {
    // "using eight GCDs does not improve the aggregated bandwidth,
    //  compared to four GCDs."
    let c = cfg();
    let four = multi_gpu_host_stream(&c, &[0, 2, 4, 6], 64 * MIB);
    let eight = multi_gpu_host_stream(&c, &(0..8).collect::<Vec<_>>(), 64 * MIB);
    assert!(eight / four < 1.05, "{four} -> {eight}");
}

// ---------------------------------------------------------------- §V-A1 --

#[test]
fn claim_5a1_the_measured_latency_varies_within_8_7_to_18_2_us() {
    // "The measured latency varies within 8.7-18.2 µs."
    let m = latency_matrix(&cfg());
    assert!(
        (m.min_off_diagonal() - 8.7).abs() < 0.4,
        "{}",
        m.min_off_diagonal()
    );
    assert!(
        (m.max_off_diagonal() - 18.2).abs() < 0.6,
        "{}",
        m.max_off_diagonal()
    );
}

#[test]
fn claim_5a1_same_gpu_latency_is_not_consistently_lower_than_other_pairs() {
    // "The latency measured between GCDs located on the same physical GPU
    //  is between 10.5-10.8 µs, which is not consistently lower that
    //  latency measured for other pairs of GCDs."
    let m = latency_matrix(&cfg());
    let same_gpu = m.get(0, 1).unwrap();
    assert!((10.3..11.0).contains(&same_gpu), "{same_gpu}");
    // Single-link pair 0-2 is *faster* than same-package 0-1.
    assert!(m.get(0, 2).unwrap() < same_gpu);
}

#[test]
fn claim_5a1_the_latency_outliers_are_the_pairs_whose_best_route_is_three_hops() {
    // "we observe four outliers, with latency values within 17.8-18.2 µs,
    //  corresponding to the GCD pairs 1-7 and 5-3 ... the only ones for
    //  which the bandwidth-maximizing path is not the shortest path."
    let m = latency_matrix(&cfg());
    for (a, b) in [(1, 7), (7, 1), (3, 5), (5, 3)] {
        let v = m.get(a, b).unwrap();
        assert!((17.4..18.6).contains(&v), "{a}-{b}: {v}");
    }
    let m_sorted: Vec<f64> = {
        let mut v: Vec<f64> = (0..8)
            .flat_map(|i| (0..8).filter_map(move |j| if i != j { Some((i, j)) } else { None }))
            .map(|(i, j)| m.get(i, j).unwrap())
            .collect();
        v.sort_by(f64::total_cmp);
        v
    };
    // Exactly four outlier entries at the top.
    assert!(m_sorted[m_sorted.len() - 4] > 17.0);
    assert!(m_sorted[m_sorted.len() - 5] < 15.0);
}

// ---------------------------------------------------------------- §V-A2 --

#[test]
fn claim_5a2_results_divide_into_two_bandwidth_values_50_and_37_38() {
    // "We can divide the results into two values of bandwidth: 50 GB/s
    //  and 37-38 GB/s."
    let m = bandwidth_matrix(&cfg(), 256 * MIB);
    for i in 0..8 {
        for j in 0..8 {
            if i == j {
                continue;
            }
            let v = m.get(i, j).unwrap();
            assert!(
                (36.8..38.2).contains(&v) || (49.2..50.5).contains(&v),
                "{i}->{j}: {v}"
            );
        }
    }
}

#[test]
fn claim_5a2_same_gpu_pairs_are_on_the_order_of_50_not_the_expected_200() {
    // "the bandwidth measured for GCD pairs located on the same GPU ...
    //  is on the order of 50 GB/s, which is significantly below the
    //  expected 200 GB/s bandwidth."
    let m = bandwidth_matrix(&cfg(), 256 * MIB);
    for (a, b) in [(0, 1), (2, 3), (4, 5), (6, 7)] {
        let v = m.get(a, b).unwrap();
        assert!((49.0..51.0).contains(&v), "{a}-{b}: {v}");
    }
}

#[test]
fn claim_5a2_utilization_is_75_50_25_percent_for_single_dual_quad_links() {
    // "The bandwidth utilization for single, double, and quad Infinity
    //  Fabric links is 75%, 50% and 25%, respectively."
    let series = ifsim::microbench::comm_scope::p2p_sweep(&cfg(), &[1, 2, 6], &[GIB]);
    assert!((series[1].peak() / 50.0 - 0.75).abs() < 0.02); // single
    assert!((series[2].peak() / 100.0 - 0.50).abs() < 0.02); // dual
    assert!((series[0].peak() / 200.0 - 0.25).abs() < 0.02); // quad
}

// ----------------------------------------------------------------- §V-B --

#[test]
fn claim_5b_local_stream_reaches_1400_gbs_87_percent_of_peak() {
    // "we observe a bandwidth of 1400 GB/s - that is, 87% of the
    //  theoretical 1.6 TB/s memory bandwidth."
    let bw = local_stream(&cfg(), 256 * MIB);
    assert!((bw - 1400.0).abs() < 30.0, "{bw}");
}

#[test]
fn claim_5b_direct_access_achieves_43_44_percent_on_all_three_tiers() {
    // "For all placements, we observe that the achieved ratio of
    //  theoretical peak is 43-44%."
    for (_, _, ratio) in peer_stream_peaks(&cfg(), &[1, 2, 6], 512 * MIB) {
        assert!((0.42..0.45).contains(&ratio), "{ratio}");
    }
}

#[test]
fn claim_5b_kernel_access_does_not_hit_the_sdma_bottleneck() {
    // "We do not observe the same bottleneck as identified when using
    //  hipMemcpy APIs, where using a quad Infinity Fabric link does not
    //  provide any improvement over using a dual link."
    let peaks = peer_stream_peaks(&cfg(), &[1, 6], 512 * MIB);
    let quad = peaks[0].1;
    let dual = peaks[1].1;
    assert!(quad > 1.8 * dual, "quad {quad} vs dual {dual}");
}

// ----------------------------------------------------------------- §V-C --

#[test]
fn claim_5c_sdma_enabled_mpi_only_reaches_50_gbs_on_wide_links() {
    // "the SDMA-enabled MPI transfer only reaches 50 GB/s - below 50% for
    //  a dual Infinity Fabric link, and 25% for a quad link."
    let c = cfg();
    let quad = osu::osu_p2p_bw(&c, 1, GIB, true);
    let dual = osu::osu_p2p_bw(&c, 6, GIB, true);
    assert!((quad - 50.0).abs() < 1.0, "{quad}");
    assert!((dual - 50.0).abs() < 1.0, "{dual}");
}

#[test]
fn claim_5c_sdma_disabled_mpi_is_10_to_15_percent_below_the_direct_kernel() {
    // "the SDMA-disabled MPI transfer exhibits a 10-15% lower bandwidth
    //  than the direct peer-to-peer copy kernel."
    let c = cfg();
    for dst in [1usize, 2, 6] {
        let mpi = osu::osu_p2p_bw(&c, dst, GIB, false);
        let direct = direct_p2p_unidirectional(&c, dst, GIB);
        let deficit = 1.0 - mpi / direct;
        assert!((0.09..0.16).contains(&deficit), "GCD{dst}: {deficit}");
    }
}

#[test]
fn claim_5c_non_neighbor_gcds_show_no_significant_difference() {
    // "transferring data from GCD0 to a non-neighbor GCD, namely
    //  GCD3,4,5,7, does not exhibit significant difference in measured
    //  bandwidth compared to neighbor GCDs."
    let c = cfg();
    let neighbor = osu::osu_p2p_bw(&c, 2, GIB, true);
    for dst in [3usize, 4, 5] {
        let bw = osu::osu_p2p_bw(&c, dst, GIB, true);
        assert!((bw - neighbor).abs() / neighbor < 0.05, "GCD{dst}: {bw}");
    }
}

// ------------------------------------------------------------------ §VI --

#[test]
fn claim_6_two_thread_all_to_all_latency_is_close_to_the_17_4_us_bound() {
    // "For two threads, the lowest measured latency for all-to-all
    //  collectives is close to the lowest bound of 17.4 µs."
    let c = cfg();
    let lowest = [
        Collective::AllReduce,
        Collective::ReduceScatter,
        Collective::AllGather,
    ]
    .iter()
    .map(|&coll| rccl_tests::rccl_collective_latency(&c, coll, 2, MIB))
    .fold(f64::MAX, f64::min);
    assert!((10.0..22.0).contains(&lowest), "{lowest} µs vs 17.4 bound");
}

#[test]
fn claim_6_latency_drops_from_7_to_8_threads_for_rooted_and_allreduce() {
    // "for Reduce, Broadcast, and AllReduce collectives, the latency drops
    //  when increasing from 7 to 8 threads"
    let c = cfg();
    for coll in [
        Collective::Reduce,
        Collective::Broadcast,
        Collective::AllReduce,
    ] {
        let at7 = rccl_tests::rccl_collective_latency(&c, coll, 7, MIB);
        let at8 = rccl_tests::rccl_collective_latency(&c, coll, 8, MIB);
        assert!(at8 < at7, "{}: {at7} -> {at8}", coll.name());
    }
}

#[test]
fn claim_6_rccl_is_more_efficient_than_mpi_except_for_broadcast() {
    // "Our evaluation results show that RCCL is more efficient than MPI
    //  collectives for all tested collectives, except for broadcast."
    let c = cfg();
    for coll in Collective::ALL {
        let rccl = rccl_tests::rccl_collective_latency(&c, coll, 8, MIB);
        let mpi = osu::mpi_collective_latency(&c, coll, 8, MIB);
        if coll == Collective::Broadcast {
            assert!(mpi < rccl, "Broadcast: MPI {mpi} vs RCCL {rccl}");
        } else {
            assert!(rccl < mpi, "{}: RCCL {rccl} vs MPI {mpi}", coll.name());
        }
    }
}
