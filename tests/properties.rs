//! Property-based tests over the whole stack (proptest).
//!
//! These complement the per-crate unit suites with randomized invariants:
//! fair-share feasibility on the real topology, routing validity, memcpy
//! data integrity for arbitrary ranges, collective correctness for random
//! data and rank sets, and virtual-clock monotonicity under random op
//! sequences.

use ifsim::coll::schedule::{chunk_bounds, RankBuffers};
use ifsim::coll::{Collective, RcclComm};
use ifsim::des::Time;
use ifsim::fabric::{FlowNet, FlowSpec, SegmentMap};
use ifsim::hip::{EnvConfig, HipSim, HostAllocFlags, KernelSpec, MemcpyKind};
use ifsim::topology::{GcdId, NodeTopology, RoutePolicy, Router};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-min fair shares never violate any segment capacity and give
    /// every flow a positive rate, for arbitrary concurrent peer flows on
    /// the Frontier fabric.
    #[test]
    fn fairshare_is_feasible_for_random_flow_sets(
        pairs in proptest::collection::vec((0u8..8, 0u8..8), 1..12),
        duplex in any::<bool>(),
    ) {
        let topo = NodeTopology::frontier();
        let router = Router::new(&topo);
        let mut net = FlowNet::new(SegmentMap::new(&topo));
        let mut ids = Vec::new();
        for (a, b) in pairs {
            if a == b {
                continue;
            }
            let p = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::MaxBandwidth);
            let segs = net.segmap().path_segments(&topo, p, duplex);
            ids.push(net.add_flow(Time::ZERO, FlowSpec::new(segs, 1e6, 0.87)));
        }
        // Every active flow makes progress.
        for id in &ids {
            let rate = net.rate_of(*id).unwrap();
            prop_assert!(rate > 0.0, "{id:?} starved");
            prop_assert!(rate <= 0.87 * 200e9 + 1.0, "{id:?} over quad capacity");
        }
        // And the network drains completely, in nondecreasing time order.
        let mut last = Time::ZERO;
        while let Some((t, _)) = net.complete_next() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert_eq!(net.active(), 0);
    }

    /// Both routing policies always produce structurally valid paths whose
    /// cost relations hold: shortest-hop never has more hops, and
    /// max-bandwidth never has a smaller bottleneck.
    #[test]
    fn routing_policies_satisfy_their_contracts(a in 0u8..8, b in 0u8..8) {
        prop_assume!(a != b);
        let topo = NodeTopology::frontier();
        let router = Router::new(&topo);
        let sh = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::ShortestHop);
        let bw = router.gcd_route(GcdId(a), GcdId(b), RoutePolicy::MaxBandwidth);
        sh.validate(&topo);
        bw.validate(&topo);
        prop_assert!(sh.hops() <= bw.hops());
        prop_assert!(bw.bottleneck_per_dir(&topo) >= sh.bottleneck_per_dir(&topo));
    }

    /// memcpy preserves arbitrary byte ranges exactly, through any
    /// host/device location combination.
    #[test]
    fn memcpy_is_exact_for_random_ranges(
        seed_bytes in proptest::collection::vec(any::<u8>(), 16..256),
        dst_dev in 0usize..8,
        offset in 0u64..64,
    ) {
        let mut hip = HipSim::new(EnvConfig::default());
        let len = seed_bytes.len() as u64;
        let total = len + offset + 64;
        hip.set_device(dst_dev).unwrap();
        let host = hip.host_malloc(total, HostAllocFlags::coherent()).unwrap();
        let dev = hip.malloc(total).unwrap();
        let back = hip.host_malloc(total, HostAllocFlags::coherent()).unwrap();
        hip.mem_mut().write_bytes(host, 0, &seed_bytes).unwrap();
        hip.memcpy(dev, offset, host, 0, len, MemcpyKind::HostToDevice).unwrap();
        hip.memcpy(back, 0, dev, offset, len, MemcpyKind::DeviceToHost).unwrap();
        let out = hip.mem().read_bytes(back, 0, len).unwrap().unwrap();
        prop_assert_eq!(out, seed_bytes);
    }

    /// RCCL AllReduce computes the exact element-wise sum for arbitrary
    /// data, rank counts, and (4-byte aligned) vector lengths.
    #[test]
    fn allreduce_sums_exactly(
        n in 2usize..=8,
        elems in 1usize..200,
        base in -100i32..100,
    ) {
        let mut hip = HipSim::new(EnvConfig::default());
        let comm = RcclComm::new(&mut hip, (0..n).collect()).unwrap();
        let bytes = elems as u64 * 4;
        let mut send = Vec::new();
        let mut recv = Vec::new();
        for r in 0..n {
            hip.set_device(r).unwrap();
            let s = hip.malloc(bytes).unwrap();
            let d = hip.malloc(bytes).unwrap();
            let data: Vec<f32> = (0..elems).map(|i| (base + r as i32 + i as i32) as f32).collect();
            hip.mem_mut().write_f32s(s, 0, &data).unwrap();
            send.push(s);
            recv.push(d);
        }
        let bufs = RankBuffers { send, recv };
        comm.collective(&mut hip, Collective::AllReduce, &bufs, elems, 0).unwrap();
        for r in 0..n {
            let v = hip.mem().read_f32s(bufs.recv[r], 0, elems).unwrap().unwrap();
            for (i, x) in v.iter().enumerate() {
                let expect: f32 = (0..n)
                    .map(|rr| (base + rr as i32 + i as i32) as f32)
                    .sum();
                prop_assert_eq!(*x, expect, "rank {} element {}", r, i);
            }
        }
    }

    /// Broadcast delivers the root's exact data to every rank for any root.
    #[test]
    fn broadcast_replicates_root_exactly(
        n in 2usize..=8,
        root in 0usize..8,
        elems in 1usize..300,
    ) {
        let root = root % n;
        let mut hip = HipSim::new(EnvConfig::default());
        let comm = RcclComm::new(&mut hip, (0..n).collect()).unwrap();
        let bytes = elems as u64 * 4;
        let mut send = Vec::new();
        let mut recv = Vec::new();
        for r in 0..n {
            hip.set_device(r).unwrap();
            let s = hip.malloc(bytes).unwrap();
            let d = hip.malloc(bytes).unwrap();
            hip.mem_mut()
                .write_f32s(s, 0, &vec![(r * 7 + 3) as f32; elems])
                .unwrap();
            send.push(s);
            recv.push(d);
        }
        let bufs = RankBuffers { send, recv };
        comm.collective(&mut hip, Collective::Broadcast, &bufs, elems, root).unwrap();
        let expect = vec![(root * 7 + 3) as f32; elems];
        for r in 0..n {
            let v = hip.mem().read_f32s(bufs.recv[r], 0, elems).unwrap().unwrap();
            prop_assert_eq!(&v, &expect, "rank {}", r);
        }
    }

    /// Chunk bounds partition any vector for any rank count.
    #[test]
    fn chunk_bounds_always_partition(elems in 0usize..10_000, n in 1usize..16) {
        let mut cursor = 0;
        for c in 0..n {
            let (off, len) = chunk_bounds(elems, n, c);
            prop_assert_eq!(off, cursor);
            cursor += len;
        }
        prop_assert_eq!(cursor, elems);
    }

    /// The virtual clock is monotone under random op sequences mixing
    /// copies, kernels, and synchronization across devices.
    #[test]
    fn clock_is_monotone_under_random_op_sequences(
        ops in proptest::collection::vec((0u8..4, 0usize..8), 1..24),
    ) {
        let mut hip = HipSim::new(EnvConfig::default());
        hip.enable_all_peer_access().unwrap();
        let bytes = 4096u64;
        let mut dev_bufs = Vec::new();
        for d in 0..8 {
            hip.set_device(d).unwrap();
            dev_bufs.push(hip.malloc(bytes).unwrap());
        }
        hip.set_device(0).unwrap();
        let host = hip.host_malloc(bytes, HostAllocFlags::coherent()).unwrap();
        let mut last = hip.now();
        for (op, dev) in ops {
            hip.set_device(dev).unwrap();
            match op {
                0 => {
                    hip.memcpy(dev_bufs[dev], 0, host, 0, bytes, MemcpyKind::HostToDevice)
                        .unwrap();
                }
                1 => {
                    let peer = (dev + 1) % 8;
                    hip.memcpy_peer(dev_bufs[peer], peer, dev_bufs[dev], dev, bytes)
                        .unwrap();
                }
                2 => {
                    hip.launch_kernel(KernelSpec::Init {
                        dst: dev_bufs[dev],
                        value: 1.0,
                        elems: 1024,
                    })
                    .unwrap();
                }
                _ => {
                    hip.device_synchronize().unwrap();
                }
            }
            prop_assert!(hip.now() >= last, "clock went backwards");
            last = hip.now();
        }
        hip.synchronize_all().unwrap();
        prop_assert!(hip.all_idle());
    }
}
